//! The RBAC baseline behaves like the paper describes: `audit2rbac` infers a
//! least-privilege policy that admits the recorded workload and nothing else —
//! but, by construction, it cannot constrain specification fields.

use k8s_apiserver::{ApiRequest, ApiServer, RequestHandler};
use k8s_model::{K8sObject, ResourceKind, Verb};
use k8s_rbac::{audit2rbac, AccessReview, Audit2RbacOptions};
use kf_workloads::{DeploymentDriver, Operator};

fn learned_policy(operator: Operator) -> k8s_rbac::RbacPolicySet {
    let server = ApiServer::new().with_admin(&operator.user());
    DeploymentDriver::new(operator).deploy(&server);
    audit2rbac(
        server.audit_log().events(),
        &operator.user(),
        &Audit2RbacOptions::default(),
    )
}

#[test]
fn learned_policies_admit_the_recorded_workload() {
    for operator in Operator::ALL {
        let policy = learned_policy(operator);
        let server = ApiServer::new();
        server.set_rbac_policy(Some(policy));
        let outcomes = DeploymentDriver::new(operator).deploy(&server);
        assert!(
            DeploymentDriver::all_succeeded(&outcomes),
            "{operator}: replay under the learned policy failed: {:?}",
            outcomes
                .iter()
                .filter(|o| !o.response.is_success())
                .map(|o| (&o.object_name, &o.response.message))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn learned_policies_deny_unused_kinds_and_foreign_users() {
    let operator = Operator::Nginx;
    let policy = learned_policy(operator);
    // Nginx never touches Secrets or Pods.
    for kind in [ResourceKind::Secret, ResourceKind::Pod] {
        let review = AccessReview::new(
            &operator.user(),
            Verb::Create,
            kind,
            operator.namespace(),
            "",
        );
        assert!(
            !policy.authorize(&review).is_allowed(),
            "{kind} should be denied"
        );
    }
    // Another identity gains nothing from this policy.
    let review = AccessReview::new(
        "operator:mlflow",
        Verb::Create,
        ResourceKind::Deployment,
        operator.namespace(),
        "",
    );
    assert!(!policy.authorize(&review).is_allowed());
}

#[test]
fn rbac_cannot_express_field_level_restrictions() {
    // The same endpoint + verb with a benign and a malicious body: RBAC
    // treats both identically (Figure 11's argument).
    let operator = Operator::Nginx;
    let policy = learned_policy(operator);
    let server = ApiServer::new();
    server.set_rbac_policy(Some(policy));

    let benign = operator
        .workload()
        .default_objects()
        .into_iter()
        .find(|o| o.kind() == ResourceKind::Deployment)
        .unwrap();
    let mut malicious_body = benign.body().clone();
    malicious_body
        .set_path(
            &kf_yaml::Path::parse("spec.template.spec.hostNetwork").unwrap(),
            kf_yaml::Value::Bool(true),
        )
        .unwrap();
    let malicious = K8sObject::from_value(malicious_body).unwrap();

    let mut benign_request = ApiRequest::create(&operator.user(), &benign);
    benign_request.namespace = operator.namespace().to_owned();
    let mut malicious_request = ApiRequest::create(&operator.user(), &malicious);
    malicious_request.namespace = operator.namespace().to_owned();

    assert!(server.handle(&benign_request).is_success());
    let response = server.handle(&malicious_request);
    assert!(
        response.is_success(),
        "RBAC has no mechanism to reject the malicious body"
    );
    // …and the exploit is recorded as having reached vulnerable code.
    assert!(server
        .exploits()
        .iter()
        .any(|e| e.cve_id == "CVE-2020-15257"));
}

#[test]
fn audit_logs_contain_request_bodies_that_rbac_cannot_use() {
    // The information needed for field-level decisions is present in the
    // audit log (the paper's Figure 11 shows it), it is just not expressible
    // in RBAC policies.
    let operator = Operator::Mlflow;
    let server = ApiServer::new().with_admin(&operator.user());
    DeploymentDriver::new(operator).deploy(&server);
    let log = server.audit_log();
    assert!(log
        .events()
        .iter()
        .filter(|e| e.verb == Verb::Create)
        .all(|e| e.request_body.is_some()));
}
