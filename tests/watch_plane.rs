//! The revision-indexed watch plane, pinned end to end: exactly-once
//! in-order delivery under concurrent writers, zero-copy sharing between
//! the store and delivered events, and the compaction contract (stale
//! cursor ⇒ `Gone` ⇒ re-list resumes cleanly) — at the store level through
//! [`WatchSubscription`] and at the server level through the informer.

use std::collections::BTreeMap;
use std::sync::Arc;

use k8s_apiserver::{
    namespace_shard, ApiRequest, ApiServer, ObjectStore, PushWatch, RequestHandler, WatchError,
    WatchEventKind, WatchHub, WatchSubscription, DEFAULT_JOURNAL_SHARDS,
};
use k8s_model::{K8sObject, ResourceKind};
use kf_workloads::{Informer, PushInformer, RelistGate};

fn pod(name: &str) -> K8sObject {
    pod_in(name, "default")
}

fn pod_in(name: &str, namespace: &str) -> K8sObject {
    K8sObject::from_yaml(&format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: {namespace}\nspec:\n  containers:\n    - name: c\n      image: nginx\n"
    ))
    .unwrap()
}

/// Concurrent writers create, update and delete while a concurrent watcher
/// streams the journal: every write's revision must be delivered **exactly
/// once, in strictly increasing order**, and events for live objects must
/// share the stored tree by pointer.
#[test]
fn concurrent_writers_deliver_every_revision_exactly_once_in_order() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 80;

    let store = ObjectStore::new();
    // Writers return the revision of every write they performed.
    let (written, delivered) = std::thread::scope(|scope| {
        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|writer| {
                let store = &store;
                scope.spawn(move || {
                    let mut versions = Vec::new();
                    for round in 0..ROUNDS {
                        let name = format!("obj-{writer}-{round}");
                        let object = pod(&name);
                        versions.push(store.create(object).expect("unique names"));
                        if round % 3 == 0 {
                            versions.push(store.update(pod(&name)).expect("just created"));
                        }
                        if round % 5 == 0 {
                            store.delete(ResourceKind::Pod, "default", &name).unwrap();
                            // Deletes bump the revision too; recover it from
                            // the store counter is racy, so re-read it from
                            // the delivered stream instead (see below).
                        }
                    }
                    versions
                })
            })
            .collect();
        // One concurrent watcher streams from revision 0 while writers run.
        let watcher = {
            let store = &store;
            scope.spawn(move || {
                let mut subscription = WatchSubscription::at(ResourceKind::Pod, "default", 0);
                let mut events = Vec::new();
                // Poll until the writers' final revision is reached; the
                // expected total is writes + updates + deletes.
                let expected_deletes = WRITERS * ROUNDS.div_ceil(5);
                let expected_updates = WRITERS * ROUNDS.div_ceil(3);
                let expected = WRITERS * ROUNDS + expected_updates + expected_deletes;
                while events.len() < expected {
                    events.extend(subscription.poll(store).expect("journal must not compact"));
                }
                events
            })
        };
        let written: Vec<u64> = writer_handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer panicked"))
            .collect();
        (written, watcher.join().expect("watcher panicked"))
    });

    // In order, no duplicates: strictly increasing revisions.
    assert!(
        delivered.windows(2).all(|w| w[0].revision < w[1].revision),
        "delivered revisions must be strictly increasing"
    );
    // Exactly once: every create/update revision the writers observed is
    // delivered (deletes are in the stream as well; their revisions are the
    // remaining strictly-increasing gaps).
    let delivered_revisions: Vec<u64> = delivered.iter().map(|e| e.revision).collect();
    for version in &written {
        assert!(
            delivered_revisions.binary_search(version).is_ok(),
            "revision {version} was written but never delivered"
        );
    }
    // Everything the store did is in the stream: one event per revision.
    assert_eq!(delivered.len() as u64, store.revision());

    // Zero-copy: for every object still live, the event at its current
    // resource version shares the stored tree by pointer.
    let by_revision: BTreeMap<u64, &k8s_apiserver::WatchEvent> =
        delivered.iter().map(|e| (e.revision, e)).collect();
    let mut live_checked = 0;
    for stored in store.list(ResourceKind::Pod, "default") {
        let event = by_revision[&stored.resource_version];
        assert!(
            Arc::ptr_eq(
                event.object.as_ref().expect("write events carry objects"),
                stored.object.shared_body()
            ),
            "the delivered event must share the stored tree"
        );
        live_checked += 1;
    }
    assert!(live_checked > 0, "some objects must survive the churn");
}

/// The sharded-journal stress: concurrent writers churn across several
/// namespaces (spread over multiple journal sub-shards) while one global
/// subscriber reads through the k-way merge cursor and one subscriber per
/// namespace reads its own sub-shard. Every revision must be delivered
/// exactly once in strictly increasing order on the global stream, each
/// namespace stream must be exactly its namespace's slice of it, and live
/// objects must share the stored tree by pointer through **both** cursor
/// kinds.
#[test]
fn sharded_journals_deliver_exactly_once_globally_and_per_namespace() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 40;
    const NAMESPACES: usize = 6;

    let namespaces: Vec<String> = (0..NAMESPACES).map(|i| format!("ns-{i}")).collect();
    // The namespaces must actually span sub-shards, or the merge cursor
    // would be exercised on one shard only.
    let distinct: std::collections::BTreeSet<usize> = namespaces
        .iter()
        .map(|ns| namespace_shard(ns, DEFAULT_JOURNAL_SHARDS))
        .collect();
    assert!(distinct.len() > 1, "test namespaces must span sub-shards");

    let store = ObjectStore::new();
    // Per (writer, round, namespace): one create, an update every 3rd
    // round, a delete every 4th.
    let per_pair = ROUNDS + ROUNDS.div_ceil(3) + ROUNDS.div_ceil(4);
    let expected_total = WRITERS * NAMESPACES * per_pair;
    let expected_per_ns = WRITERS * per_pair;

    let (global, per_ns) = std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let store = &store;
            let namespaces = &namespaces;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for ns in namespaces {
                        let name = format!("obj-{writer}-{round}");
                        store.create(pod_in(&name, ns)).expect("unique names");
                        if round % 3 == 0 {
                            store.update(pod_in(&name, ns)).expect("just created");
                        }
                        if round % 4 == 0 {
                            store.delete(ResourceKind::Pod, ns, &name).unwrap();
                        }
                    }
                }
            });
        }
        let global = {
            let store = &store;
            scope.spawn(move || {
                let mut subscription = WatchSubscription::at(ResourceKind::Pod, "", 0);
                let mut events = Vec::new();
                while events.len() < expected_total {
                    events.extend(subscription.poll(store).expect("journals must not compact"));
                }
                events
            })
        };
        let ns_watchers: Vec<_> = namespaces
            .iter()
            .map(|ns| {
                let store = &store;
                scope.spawn(move || {
                    let mut subscription = WatchSubscription::at(ResourceKind::Pod, ns, 0);
                    let mut events = Vec::new();
                    while events.len() < expected_per_ns {
                        events.extend(subscription.poll(store).expect("journals must not compact"));
                    }
                    events
                })
            })
            .collect();
        (
            global.join().expect("global watcher panicked"),
            ns_watchers
                .into_iter()
                .map(|h| h.join().expect("namespace watcher panicked"))
                .collect::<Vec<_>>(),
        )
    });

    // Global: exactly once, in order, one event per revision.
    assert_eq!(global.len() as u64, store.revision());
    assert!(
        global.windows(2).all(|w| w[0].revision < w[1].revision),
        "the merge cursor must deliver the total revision order"
    );
    assert_eq!(global[0].revision, 1);
    assert_eq!(global.last().unwrap().revision, store.revision());

    // Each namespace stream is exactly its slice of the global stream.
    for (ns, events) in namespaces.iter().zip(&per_ns) {
        assert_eq!(events.len(), expected_per_ns);
        assert!(events.windows(2).all(|w| w[0].revision < w[1].revision));
        assert!(events.iter().all(|e| &e.namespace == ns));
        let global_slice: Vec<u64> = global
            .iter()
            .filter(|e| &e.namespace == ns)
            .map(|e| e.revision)
            .collect();
        let ns_revisions: Vec<u64> = events.iter().map(|e| e.revision).collect();
        assert_eq!(ns_revisions, global_slice);
    }
    // Nothing was lost or duplicated across the namespace streams either.
    assert_eq!(
        per_ns.iter().map(Vec::len).sum::<usize>(),
        expected_total,
        "namespace streams must partition the global stream"
    );

    // Zero-copy through both cursor kinds: every live object's
    // current-version event shares the stored tree.
    let global_by_revision: BTreeMap<u64, &k8s_apiserver::WatchEvent> =
        global.iter().map(|e| (e.revision, e)).collect();
    let mut live_checked = 0;
    for stored in store.list(ResourceKind::Pod, "") {
        let event = global_by_revision[&stored.resource_version];
        assert!(Arc::ptr_eq(
            event.object.as_ref().expect("write events carry objects"),
            stored.object.shared_body()
        ));
        let ns_index = namespaces
            .iter()
            .position(|ns| ns == stored.object.namespace())
            .expect("live objects live in test namespaces");
        let ns_event = per_ns[ns_index]
            .iter()
            .find(|e| e.revision == stored.resource_version)
            .expect("the namespace stream delivered the live revision");
        assert!(Arc::ptr_eq(
            ns_event.object.as_ref().unwrap(),
            stored.object.shared_body()
        ));
        live_checked += 1;
    }
    assert!(live_checked > 0, "some objects must survive the churn");
}

/// Compaction semantics under sharding: a cursor gets `Gone` **iff a
/// sub-shard it needs** compacted past it — so a namespace-scoped watcher
/// survives foreign-namespace churn that compacts other sub-shards (no
/// spurious re-list), a global cursor reports the worst needed horizon, and
/// re-list recovery resumes gaplessly afterwards.
#[test]
fn sharded_compaction_gones_exactly_the_cursors_that_need_compacted_shards() {
    const SHARD_COUNT: usize = 4;
    let store = ObjectStore::with_journal_config(2, SHARD_COUNT);

    // A quiet namespace and a busy one, guaranteed to land in different
    // journal sub-shards.
    let quiet = "quiet".to_owned();
    let busy = (0..64)
        .map(|i| format!("busy-{i}"))
        .find(|ns| namespace_shard(ns, SHARD_COUNT) != namespace_shard(&quiet, SHARD_COUNT))
        .expect("some namespace hashes to another sub-shard");

    store.create(pod_in("q", &quiet)).unwrap();
    let mut quiet_watcher = WatchSubscription::at(ResourceKind::Pod, &quiet, 0);
    assert_eq!(quiet_watcher.poll(&store).unwrap().len(), 1);

    // Churn the busy namespace far past the per-sub-shard capacity while
    // the quiet watcher keeps polling: its sub-shard never compacted, so it
    // must never see Gone — the old single-journal plane forced a re-list
    // here.
    for round in 0..8 {
        store.create(pod_in(&format!("b-{round}"), &busy)).unwrap();
        assert_eq!(
            quiet_watcher.poll(&store).expect("no spurious Gone"),
            vec![],
            "foreign churn must not leak into the quiet namespace"
        );
    }
    assert_eq!(quiet_watcher.revision(), store.revision());

    // A stale cursor scoped to the busy namespace needs the compacted
    // sub-shard: Gone, with the horizon to recover from.
    let gone = store.events_since(ResourceKind::Pod, &busy, 0).unwrap_err();
    let WatchError::Gone { compacted_through } = gone;
    assert!(compacted_through > 0);
    // The global cursor needs *every* sub-shard, the compacted one
    // included: Gone as well.
    assert!(matches!(
        store.events_since(ResourceKind::Pod, "", 0),
        Err(WatchError::Gone { .. })
    ));
    // But a global cursor at the horizon is servable again.
    assert!(store
        .events_since(ResourceKind::Pod, "", compacted_through)
        .is_ok());

    // Re-list recovery is gapless: take the standard recovery cursor, then
    // confirm the listing holds everything and new writes in both
    // namespaces stream exactly once from that cursor.
    let cursor = store.watch_revision(ResourceKind::Pod);
    assert_eq!(store.list(ResourceKind::Pod, "").len(), store.len());
    store.create(pod_in("q2", &quiet)).unwrap();
    store.create(pod_in("b-after", &busy)).unwrap();
    let delta = store.events_since(ResourceKind::Pod, "", cursor).unwrap();
    assert_eq!(delta.events.len(), 2, "exactly the post-recovery writes");
    assert!(delta
        .events
        .windows(2)
        .all(|w| w[0].revision < w[1].revision));
    assert_eq!(delta.resume, store.revision());
}

/// The compaction contract through the full server: a watcher whose cursor
/// fell behind a tiny journal gets `410 Gone`, re-lists through an initial
/// watch, and streams deltas again — with a cache that matches the store
/// exactly at every step.
#[test]
fn compaction_forces_relist_and_resumes_cleanly() {
    let server = ApiServer::with_store(ObjectStore::with_journal_capacity(4));
    let mut informer = Informer::new("admin", ResourceKind::Pod, "default");

    // Seed two objects and sync: cache matches the store.
    for name in ["a", "b"] {
        assert!(server
            .handle(&ApiRequest::create("admin", &pod(name)))
            .is_success());
    }
    assert_eq!(informer.sync(&server), 1);
    assert_eq!(informer.cache_len(), 2);
    assert_eq!(informer.relists(), 1);

    // Churn far past the journal capacity while the informer sleeps.
    for round in 0..5 {
        for name in ["c", "d", "e"] {
            server.handle(&ApiRequest::create(
                "admin",
                &pod(&format!("{name}{round}")),
            ));
        }
    }
    // Its next sync hits Gone (extra request) and recovers via re-list.
    assert_eq!(informer.sync(&server), 2, "Gone costs one recovery re-list");
    assert_eq!(informer.relists(), 2);
    assert_eq!(informer.cache_len(), server.store().len());

    // And the stream is incremental again afterwards.
    server.handle(&ApiRequest::delete(
        "admin",
        ResourceKind::Pod,
        "default",
        "a",
    ));
    assert_eq!(informer.sync(&server), 1, "a live cursor streams deltas");
    assert_eq!(informer.cache_len(), server.store().len());
    assert!(!informer
        .cache()
        .contains_key(&("default".to_owned(), "a".to_owned())));
}

/// Watch responses are part of the zero-copy plane: the delivered event
/// objects are the stored trees (and thus the very trees the admitted
/// requests carried), for both the initial listing and the delta stream.
#[test]
fn watch_batches_share_storage_with_the_store_and_requests() {
    let server = ApiServer::new();
    let request = ApiRequest::create("admin", &pod("web"));
    let tree = Arc::clone(request.body.tree().unwrap());
    assert!(server.handle(&request).is_success());

    // Initial watch: the synthesized Added event shares the request's tree.
    let initial = server.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        None,
    ));
    let (events, cursor) = initial.body.as_ref().unwrap().watch_events().unwrap();
    assert!(Arc::ptr_eq(events[0].object.as_ref().unwrap(), &tree));

    // Delta stream: a second create's Modified/Added event shares too.
    let second = ApiRequest::create("admin", &pod("web2"));
    let second_tree = Arc::clone(second.body.tree().unwrap());
    assert!(server.handle(&second).is_success());
    let delta = server.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        Some(cursor),
    ));
    let (events, _) = delta.body.as_ref().unwrap().watch_events().unwrap();
    let added = events
        .iter()
        .find(|e| e.kind == WatchEventKind::Added)
        .unwrap();
    assert!(Arc::ptr_eq(added.object.as_ref().unwrap(), &second_tree));

    // Two subscribers share the same allocation — no per-subscriber copies.
    let other = server.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        Some(cursor),
    ));
    let (other_events, _) = other.body.as_ref().unwrap().watch_events().unwrap();
    let other_added = other_events
        .iter()
        .find(|e| e.kind == WatchEventKind::Added)
        .unwrap();
    assert!(Arc::ptr_eq(
        added.object.as_ref().unwrap(),
        other_added.object.as_ref().unwrap()
    ));

    // The baseline server answers identically but detaches every tree.
    let baseline = ApiServer::baseline();
    assert!(baseline.handle(&request).is_success());
    let initial = baseline.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        None,
    ));
    let (events, cursor) = initial.body.as_ref().unwrap().watch_events().unwrap();
    assert_eq!(events.len(), 2, "one Added + bookmark");
    assert!(!Arc::ptr_eq(events[0].object.as_ref().unwrap(), &tree));
    assert!(baseline.handle(&second).is_success());
    let delta = baseline.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        Some(cursor),
    ));
    let (events, _) = delta.body.as_ref().unwrap().watch_events().unwrap();
    let added = events
        .iter()
        .find(|e| e.kind == WatchEventKind::Added)
        .unwrap();
    assert!(!Arc::ptr_eq(added.object.as_ref().unwrap(), &second_tree));
    assert!(added.object.as_ref().unwrap().loosely_equals(&second_tree));
}

/// Watch traffic traverses the hardened surface: learned RBAC authorizes
/// the watch verb for users that watched during learning and denies it to
/// everyone else, and every watch lands in the audit trail.
#[test]
fn watch_requests_traverse_rbac_and_audit() {
    use k8s_rbac::{audit2rbac, Audit2RbacOptions};

    // Learning phase: the operator lists and watches its pods.
    let learning = ApiServer::new().with_admin("operator-w");
    learning.handle(&ApiRequest::create("operator-w", &pod("a")));
    learning.handle(&ApiRequest::watch(
        "operator-w",
        ResourceKind::Pod,
        "default",
        None,
    ));
    let policy = audit2rbac(
        learning.audit_log().events(),
        "operator-w",
        &Audit2RbacOptions::default(),
    );

    // Enforcement phase: same user may watch; a stranger may not.
    let enforced = ApiServer::new();
    enforced.set_rbac_policy(Some(policy));
    let allowed = enforced.handle(&ApiRequest::watch(
        "operator-w",
        ResourceKind::Pod,
        "default",
        None,
    ));
    assert!(allowed.is_success());
    let denied = enforced.handle(&ApiRequest::watch(
        "mallory",
        ResourceKind::Pod,
        "default",
        None,
    ));
    assert!(denied.is_denied());
    // Both decisions are audited, verb and all.
    let log = enforced.audit_log();
    let watches: Vec<_> = log
        .events()
        .iter()
        .filter(|e| e.verb == k8s_model::Verb::Watch)
        .collect();
    assert_eq!(watches.len(), 2);
    assert!(watches.iter().any(|e| e.allowed));
    assert!(watches.iter().any(|e| !e.allowed));
}

/// A request handler wrapper that counts how many list-shaped requests are
/// in flight at once — the observable a re-list stampede would spike.
struct ConcurrencyProbe<'a, H> {
    inner: &'a H,
    in_flight: std::sync::atomic::AtomicUsize,
    peak: std::sync::atomic::AtomicUsize,
}

impl<'a, H> ConcurrencyProbe<'a, H> {
    fn new(inner: &'a H) -> Self {
        ConcurrencyProbe {
            inner,
            in_flight: std::sync::atomic::AtomicUsize::new(0),
            peak: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn peak(&self) -> usize {
        self.peak.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<H: RequestHandler> RequestHandler for ConcurrencyProbe<'_, H> {
    fn handle(&self, request: &ApiRequest) -> k8s_apiserver::ApiResponse {
        let now = self
            .in_flight
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            + 1;
        self.peak
            .fetch_max(now, std::sync::atomic::Ordering::SeqCst);
        let response = self.inner.handle(request);
        self.in_flight
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        response
    }
}

impl<H: WatchHub> WatchHub for ConcurrencyProbe<'_, H> {
    fn subscribe_push(
        &self,
        request: &ApiRequest,
    ) -> Result<PushWatch, k8s_apiserver::ApiResponse> {
        let now = self
            .in_flight
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            + 1;
        self.peak
            .fetch_max(now, std::sync::atomic::Ordering::SeqCst);
        let result = self.inner.subscribe_push(request);
        self.in_flight
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        result
    }
}

/// The compaction-storm acceptance test: a herd of push informers is evicted
/// in one burst, and every recovery re-list must pass through a shared
/// [`RelistGate`] — so the number of concurrent full re-lists observed at
/// the server stays at the gate's bound, far below the herd size.
#[test]
fn a_gated_herd_recovers_without_a_relist_stampede() {
    const HERD: usize = 48;
    const GATE: usize = 4;

    // Tiny per-subscriber queues: a three-object burst evicts everyone.
    let server = ApiServer::new().with_watch_queue_capacity(2);
    for i in 0..4 {
        server.handle(&ApiRequest::create("admin", &pod(&format!("seed-{i}"))));
    }
    let probe = ConcurrencyProbe::new(&server);
    let gate = std::sync::Arc::new(RelistGate::new(GATE));
    let mut herd: Vec<PushInformer> = (0..HERD)
        .map(|i| {
            PushInformer::new("admin", ResourceKind::Pod, "default")
                .with_gate(std::sync::Arc::clone(&gate), i as u64)
        })
        .collect();
    // Attach serially (the storm under test is the recovery, not the
    // bootstrap), then verify every informer is live and in sync.
    for informer in &mut herd {
        informer.attach(&probe);
        assert_eq!(informer.cache_len(), 4);
    }

    // The storm: distinct-object churn wider than every queue bound evicts
    // the whole herd at once.
    for i in 0..3 {
        server.handle(&ApiRequest::create("admin", &pod(&format!("storm-{i}"))));
    }
    assert!(herd
        .iter()
        .all(|informer| informer.subscription().unwrap().is_evicted()));

    // Every informer pumps concurrently; recovery re-lists must serialize
    // through the gate.
    std::thread::scope(|scope| {
        for informer in &mut herd {
            let probe = &probe;
            scope.spawn(move || {
                informer.pump_now(probe);
            });
        }
    });
    for informer in &herd {
        assert_eq!(informer.evictions(), 1);
        assert_eq!(informer.cache_len(), 7, "recovered to the full store");
        assert!(informer.is_attached());
    }
    assert_eq!(gate.admissions(), HERD as u64 + HERD as u64);
    assert!(
        gate.peak_admitted() <= GATE,
        "gate admitted {} concurrent re-lists, bound is {GATE}",
        gate.peak_admitted()
    );
    assert!(
        probe.peak() <= GATE,
        "server saw {} concurrent re-lists from a herd of {HERD}; the gate must bound this below the herd size",
        probe.peak()
    );

    // And the recovered subscriptions stream again.
    server.handle(&ApiRequest::delete(
        "admin",
        ResourceKind::Pod,
        "default",
        "storm-0",
    ));
    for informer in &mut herd {
        informer.pump_now(&probe);
        assert_eq!(informer.cache_len(), 6);
    }
}

/// Server-level eviction recovery is gapless: after `Gone`, one re-list
/// brings the cache to the exact store state even when the missed events
/// included deletes (which a naive "replay what I missed" could not).
#[test]
fn evicted_push_watchers_relist_to_the_exact_store_state() {
    let server = ApiServer::new().with_watch_queue_capacity(2);
    server.handle(&ApiRequest::create("admin", &pod("keep")));
    let mut informer = PushInformer::new("admin", ResourceKind::Pod, "default");
    informer.attach(&server);

    // The burst both creates and deletes while the informer is not
    // draining; the queue bound trips mid-burst.
    for i in 0..3 {
        server.handle(&ApiRequest::create("admin", &pod(&format!("burst-{i}"))));
    }
    server.handle(&ApiRequest::delete(
        "admin",
        ResourceKind::Pod,
        "default",
        "burst-1",
    ));
    assert!(informer.subscription().unwrap().is_evicted());
    informer.pump_now(&server);
    assert_eq!(informer.evictions(), 1);

    // The recovered cache equals the store exactly — no ghost of the
    // deleted object, nothing missed.
    let stored: Vec<String> = server
        .store()
        .list(ResourceKind::Pod, "default")
        .iter()
        .map(|s| s.object.name().to_owned())
        .collect();
    let cached: Vec<String> = informer
        .cache()
        .keys()
        .map(|(_, name)| name.clone())
        .collect();
    assert_eq!(cached, stored);
    assert_eq!(stored, ["burst-0", "burst-2", "keep"]);
}

/// Coalesced bursts at the server level: a hot object rewritten many times
/// between drains delivers once, with the newest body, sharing the stored
/// tree by pointer.
#[test]
fn coalesced_bursts_preserve_last_write_wins_and_zero_copy_sharing() {
    let server = ApiServer::new();
    let push = server
        .subscribe_push(&ApiRequest::watch(
            "admin",
            ResourceKind::Pod,
            "default",
            None,
        ))
        .expect("fresh watch attaches");
    // Forty rewrites of one hot object plus one write of another, all
    // before the consumer drains.
    for _ in 0..40 {
        server.handle(&ApiRequest::create("admin", &pod("hot")));
    }
    server.handle(&ApiRequest::create("admin", &pod("cold")));
    let events = push
        .subscriber
        .try_recv()
        .expect("not evicted: coalescing bounds the queue");
    // Last write wins: one event per object, the hot one at its final
    // revision, delivery order still by revision.
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].name, "hot");
    assert_eq!(events[1].name, "cold");
    assert!(events[0].revision < events[1].revision);
    assert_eq!(push.subscriber.coalesced(), 39);
    let stored = server
        .store()
        .get(ResourceKind::Pod, "default", "hot")
        .unwrap();
    assert_eq!(events[0].revision, stored.resource_version);
    assert!(
        Arc::ptr_eq(
            events[0].object.as_ref().unwrap(),
            stored.object.shared_body()
        ),
        "the coalesced survivor shares the stored tree"
    );
    // The queue never held more than the two live entries, so the default
    // bound was never at risk from the burst.
    assert!(!push.subscriber.is_evicted());
}

/// Push subscriptions traverse the same RBAC and audit pipeline as pull
/// watches: denials never attach, and both outcomes are audited.
#[test]
fn push_subscriptions_traverse_rbac_and_audit() {
    let server = ApiServer::new();
    server.set_rbac_policy(Some(k8s_rbac::RbacPolicySet::new()));
    let denied = server.subscribe_push(&ApiRequest::watch(
        "mallory",
        ResourceKind::Pod,
        "default",
        None,
    ));
    assert!(denied.is_err());
    let allowed = server.subscribe_push(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        None,
    ));
    assert!(allowed.is_ok());
    let log = server.audit_log();
    let watches: Vec<_> = log
        .events()
        .iter()
        .filter(|e| e.verb == k8s_model::Verb::Watch)
        .collect();
    assert_eq!(watches.len(), 2);
    assert!(watches.iter().any(|e| !e.allowed));
    assert!(watches.iter().any(|e| e.allowed));
}

/// The blocking pull path: `recv_timeout` parks on the journal's wake
/// signal and is woken by a concurrent server-side write — no poll loop.
#[test]
fn blocking_subscriptions_wake_on_server_writes() {
    let server = ApiServer::new();
    let store = server.store();
    let mut subscription = WatchSubscription::at(ResourceKind::Pod, "default", 0);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(25));
            server.handle(&ApiRequest::create("admin", &pod("late")));
        });
        let started = std::time::Instant::now();
        let events = subscription
            .recv_timeout(store, std::time::Duration::from_secs(5))
            .expect("no compaction");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "late");
        assert!(started.elapsed() < std::time::Duration::from_secs(4));
    });
}
