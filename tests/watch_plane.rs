//! The revision-indexed watch plane, pinned end to end: exactly-once
//! in-order delivery under concurrent writers, zero-copy sharing between
//! the store and delivered events, and the compaction contract (stale
//! cursor ⇒ `Gone` ⇒ re-list resumes cleanly) — at the store level through
//! [`WatchSubscription`] and at the server level through the informer.

use std::collections::BTreeMap;
use std::sync::Arc;

use k8s_apiserver::{
    ApiRequest, ApiServer, ObjectStore, RequestHandler, WatchEventKind, WatchSubscription,
};
use k8s_model::{K8sObject, ResourceKind};
use kf_workloads::Informer;

fn pod(name: &str) -> K8sObject {
    K8sObject::from_yaml(&format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: default\nspec:\n  containers:\n    - name: c\n      image: nginx\n"
    ))
    .unwrap()
}

/// Concurrent writers create, update and delete while a concurrent watcher
/// streams the journal: every write's revision must be delivered **exactly
/// once, in strictly increasing order**, and events for live objects must
/// share the stored tree by pointer.
#[test]
fn concurrent_writers_deliver_every_revision_exactly_once_in_order() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 80;

    let store = ObjectStore::new();
    // Writers return the revision of every write they performed.
    let (written, delivered) = std::thread::scope(|scope| {
        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|writer| {
                let store = &store;
                scope.spawn(move || {
                    let mut versions = Vec::new();
                    for round in 0..ROUNDS {
                        let name = format!("obj-{writer}-{round}");
                        let object = pod(&name);
                        versions.push(store.create(object).expect("unique names"));
                        if round % 3 == 0 {
                            versions.push(store.update(pod(&name)).expect("just created"));
                        }
                        if round % 5 == 0 {
                            store.delete(ResourceKind::Pod, "default", &name).unwrap();
                            // Deletes bump the revision too; recover it from
                            // the store counter is racy, so re-read it from
                            // the delivered stream instead (see below).
                        }
                    }
                    versions
                })
            })
            .collect();
        // One concurrent watcher streams from revision 0 while writers run.
        let watcher = {
            let store = &store;
            scope.spawn(move || {
                let mut subscription = WatchSubscription::at(ResourceKind::Pod, "default", 0);
                let mut events = Vec::new();
                // Poll until the writers' final revision is reached; the
                // expected total is writes + updates + deletes.
                let expected_deletes = WRITERS * ROUNDS.div_ceil(5);
                let expected_updates = WRITERS * ROUNDS.div_ceil(3);
                let expected = WRITERS * ROUNDS + expected_updates + expected_deletes;
                while events.len() < expected {
                    events.extend(subscription.poll(store).expect("journal must not compact"));
                }
                events
            })
        };
        let written: Vec<u64> = writer_handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer panicked"))
            .collect();
        (written, watcher.join().expect("watcher panicked"))
    });

    // In order, no duplicates: strictly increasing revisions.
    assert!(
        delivered.windows(2).all(|w| w[0].revision < w[1].revision),
        "delivered revisions must be strictly increasing"
    );
    // Exactly once: every create/update revision the writers observed is
    // delivered (deletes are in the stream as well; their revisions are the
    // remaining strictly-increasing gaps).
    let delivered_revisions: Vec<u64> = delivered.iter().map(|e| e.revision).collect();
    for version in &written {
        assert!(
            delivered_revisions.binary_search(version).is_ok(),
            "revision {version} was written but never delivered"
        );
    }
    // Everything the store did is in the stream: one event per revision.
    assert_eq!(delivered.len() as u64, store.revision());

    // Zero-copy: for every object still live, the event at its current
    // resource version shares the stored tree by pointer.
    let by_revision: BTreeMap<u64, &k8s_apiserver::WatchEvent> =
        delivered.iter().map(|e| (e.revision, e)).collect();
    let mut live_checked = 0;
    for stored in store.list(ResourceKind::Pod, "default") {
        let event = by_revision[&stored.resource_version];
        assert!(
            Arc::ptr_eq(
                event.object.as_ref().expect("write events carry objects"),
                stored.object.shared_body()
            ),
            "the delivered event must share the stored tree"
        );
        live_checked += 1;
    }
    assert!(live_checked > 0, "some objects must survive the churn");
}

/// The compaction contract through the full server: a watcher whose cursor
/// fell behind a tiny journal gets `410 Gone`, re-lists through an initial
/// watch, and streams deltas again — with a cache that matches the store
/// exactly at every step.
#[test]
fn compaction_forces_relist_and_resumes_cleanly() {
    let server = ApiServer::with_store(ObjectStore::with_journal_capacity(4));
    let mut informer = Informer::new("admin", ResourceKind::Pod, "default");

    // Seed two objects and sync: cache matches the store.
    for name in ["a", "b"] {
        assert!(server
            .handle(&ApiRequest::create("admin", &pod(name)))
            .is_success());
    }
    assert_eq!(informer.sync(&server), 1);
    assert_eq!(informer.cache_len(), 2);
    assert_eq!(informer.relists(), 1);

    // Churn far past the journal capacity while the informer sleeps.
    for round in 0..5 {
        for name in ["c", "d", "e"] {
            server.handle(&ApiRequest::create(
                "admin",
                &pod(&format!("{name}{round}")),
            ));
        }
    }
    // Its next sync hits Gone (extra request) and recovers via re-list.
    assert_eq!(informer.sync(&server), 2, "Gone costs one recovery re-list");
    assert_eq!(informer.relists(), 2);
    assert_eq!(informer.cache_len(), server.store().len());

    // And the stream is incremental again afterwards.
    server.handle(&ApiRequest::delete(
        "admin",
        ResourceKind::Pod,
        "default",
        "a",
    ));
    assert_eq!(informer.sync(&server), 1, "a live cursor streams deltas");
    assert_eq!(informer.cache_len(), server.store().len());
    assert!(!informer
        .cache()
        .contains_key(&("default".to_owned(), "a".to_owned())));
}

/// Watch responses are part of the zero-copy plane: the delivered event
/// objects are the stored trees (and thus the very trees the admitted
/// requests carried), for both the initial listing and the delta stream.
#[test]
fn watch_batches_share_storage_with_the_store_and_requests() {
    let server = ApiServer::new();
    let request = ApiRequest::create("admin", &pod("web"));
    let tree = Arc::clone(request.body.tree().unwrap());
    assert!(server.handle(&request).is_success());

    // Initial watch: the synthesized Added event shares the request's tree.
    let initial = server.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        None,
    ));
    let (events, cursor) = initial.body.as_ref().unwrap().watch_events().unwrap();
    assert!(Arc::ptr_eq(events[0].object.as_ref().unwrap(), &tree));

    // Delta stream: a second create's Modified/Added event shares too.
    let second = ApiRequest::create("admin", &pod("web2"));
    let second_tree = Arc::clone(second.body.tree().unwrap());
    assert!(server.handle(&second).is_success());
    let delta = server.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        Some(cursor),
    ));
    let (events, _) = delta.body.as_ref().unwrap().watch_events().unwrap();
    let added = events
        .iter()
        .find(|e| e.kind == WatchEventKind::Added)
        .unwrap();
    assert!(Arc::ptr_eq(added.object.as_ref().unwrap(), &second_tree));

    // Two subscribers share the same allocation — no per-subscriber copies.
    let other = server.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        Some(cursor),
    ));
    let (other_events, _) = other.body.as_ref().unwrap().watch_events().unwrap();
    let other_added = other_events
        .iter()
        .find(|e| e.kind == WatchEventKind::Added)
        .unwrap();
    assert!(Arc::ptr_eq(
        added.object.as_ref().unwrap(),
        other_added.object.as_ref().unwrap()
    ));

    // The baseline server answers identically but detaches every tree.
    let baseline = ApiServer::baseline();
    assert!(baseline.handle(&request).is_success());
    let initial = baseline.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        None,
    ));
    let (events, cursor) = initial.body.as_ref().unwrap().watch_events().unwrap();
    assert_eq!(events.len(), 2, "one Added + bookmark");
    assert!(!Arc::ptr_eq(events[0].object.as_ref().unwrap(), &tree));
    assert!(baseline.handle(&second).is_success());
    let delta = baseline.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "default",
        Some(cursor),
    ));
    let (events, _) = delta.body.as_ref().unwrap().watch_events().unwrap();
    let added = events
        .iter()
        .find(|e| e.kind == WatchEventKind::Added)
        .unwrap();
    assert!(!Arc::ptr_eq(added.object.as_ref().unwrap(), &second_tree));
    assert!(added.object.as_ref().unwrap().loosely_equals(&second_tree));
}

/// Watch traffic traverses the hardened surface: learned RBAC authorizes
/// the watch verb for users that watched during learning and denies it to
/// everyone else, and every watch lands in the audit trail.
#[test]
fn watch_requests_traverse_rbac_and_audit() {
    use k8s_rbac::{audit2rbac, Audit2RbacOptions};

    // Learning phase: the operator lists and watches its pods.
    let learning = ApiServer::new().with_admin("operator-w");
    learning.handle(&ApiRequest::create("operator-w", &pod("a")));
    learning.handle(&ApiRequest::watch(
        "operator-w",
        ResourceKind::Pod,
        "default",
        None,
    ));
    let policy = audit2rbac(
        learning.audit_log().events(),
        "operator-w",
        &Audit2RbacOptions::default(),
    );

    // Enforcement phase: same user may watch; a stranger may not.
    let enforced = ApiServer::new();
    enforced.set_rbac_policy(Some(policy));
    let allowed = enforced.handle(&ApiRequest::watch(
        "operator-w",
        ResourceKind::Pod,
        "default",
        None,
    ));
    assert!(allowed.is_success());
    let denied = enforced.handle(&ApiRequest::watch(
        "mallory",
        ResourceKind::Pod,
        "default",
        None,
    ));
    assert!(denied.is_denied());
    // Both decisions are audited, verb and all.
    let log = enforced.audit_log();
    let watches: Vec<_> = log
        .events()
        .iter()
        .filter(|e| e.verb == k8s_model::Verb::Watch)
        .collect();
    assert_eq!(watches.len(), 2);
    assert!(watches.iter().any(|e| e.allowed));
    assert!(watches.iter().any(|e| !e.allowed));
}
