//! The durable persistence plane, pinned end to end: a restarted store
//! serves byte-identical objects and resumes watch cursors at the
//! recovered revision (the PR's acceptance invariant), torn and corrupt
//! WAL tails are truncated — never panicked on — with recovery landing
//! exactly on the longest intact frame prefix, revisions stay gapless
//! across the crash, and checkpointing compacts the WAL while sealing the
//! watch horizon (stale cursor ⇒ `Gone` ⇒ re-list).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use k8s_apiserver::persist::{self, FsyncPolicy, PersistConfig, Persistence, WAL_FILE};
use k8s_apiserver::{
    ApiRequest, ApiServer, ObjectStore, RequestHandler, StoreBackend, WatchError, WatchSubscription,
};
use k8s_model::{K8sObject, ResourceKind};
use kf_workloads::{Operator, RecoveryDriver};

fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "kf-persistence-plane-{label}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn pod(name: &str, image: &str) -> K8sObject {
    K8sObject::from_yaml(&format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: default\nspec:\n  \
         containers:\n    - name: c\n      image: {image}\n"
    ))
    .unwrap()
}

fn open(dir: &PathBuf) -> (ObjectStore, Persistence, persist::RecoveryReport) {
    Persistence::open(PersistConfig::new(dir)).expect("persistence opens")
}

/// **The acceptance invariant.** A store that crashed after an acknowledged
/// sync serves byte-identical objects after restart, and a watch cursor
/// taken at the pre-crash revision resumes exactly there: no replayed
/// history, no `Gone`, and the first post-restart write is the first event
/// it sees — at a gapless revision.
#[test]
fn restart_serves_byte_identical_objects_and_resumes_watch_cursors() {
    let dir = temp_dir("acceptance");
    let pre_crash_revision;
    let expected: Vec<(String, u64, String)>;
    {
        let (store, persistence, _) = open(&dir);
        for i in 0..40 {
            store.create(pod(&format!("pin-{i}"), "nginx:1.25"));
        }
        // Mutate: update half through the CoW path, delete a quarter.
        for i in (0..40).step_by(2) {
            store.upsert(pod(&format!("pin-{i}"), "nginx:1.26"));
        }
        for i in (0..40).step_by(4) {
            store.delete(ResourceKind::Pod, "default", &format!("pin-{i}"));
        }
        persistence.wal().sync().expect("tail syncs");
        pre_crash_revision = StoreBackend::revision(&store);
        expected = store
            .snapshot_objects()
            .iter()
            .map(|s| {
                (
                    s.object.name().to_owned(),
                    s.resource_version,
                    s.object.to_yaml(),
                )
            })
            .collect();
        // Crash: drop with no checkpoint.
    }

    let (store, _persistence, report) = open(&dir);
    assert_eq!(report.recovered_revision, pre_crash_revision);
    assert_eq!(report.live_objects, expected.len());
    for (name, resource_version, yaml) in &expected {
        let stored = store
            .get(ResourceKind::Pod, "default", name)
            .unwrap_or_else(|| panic!("{name} lost in replay"));
        assert_eq!(stored.resource_version, *resource_version);
        assert_eq!(
            stored.object.to_yaml(),
            *yaml,
            "{name} must serialize to identical bytes after restart"
        );
    }
    // Revisions continue gaplessly: the next write takes exactly R+1.
    let (next_revision, _) = store.upsert(pod("post-restart", "nginx:1.27"));
    assert_eq!(next_revision, pre_crash_revision + 1);

    // A cursor at the recovered revision resumes seamlessly: the write
    // above is its first and only event.
    let mut at_horizon = WatchSubscription::at(ResourceKind::Pod, "default", pre_crash_revision);
    let events = at_horizon.poll(&store).expect("cursor at horizon streams");
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].revision, pre_crash_revision + 1);
    // The delivered event shares the stored tree by pointer (zero-copy
    // survives recovery: replayed state is ordinary `Arc` state).
    let stored = store
        .get(ResourceKind::Pod, "default", "post-restart")
        .expect("post-restart write is live");
    assert!(events[0]
        .object
        .as_ref()
        .is_some_and(|o| std::sync::Arc::ptr_eq(o, stored.object.shared_body())));

    // A cursor from before the crash cannot be served (the journal did not
    // survive the restart) — it must get `Gone` at the sealed horizon and
    // re-list, never a silently incomplete stream.
    let mut stale = WatchSubscription::at(ResourceKind::Pod, "default", pre_crash_revision - 1);
    match stale.poll(&store) {
        Err(WatchError::Gone { compacted_through }) => {
            assert_eq!(compacted_through, pre_crash_revision);
        }
        other => panic!("stale pre-crash cursor must be Gone, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Walk the intact frame boundaries of a WAL file: each frame is
/// `[len u32][crc u32][payload len]`. Returns the byte offset after each
/// complete frame, computed independently of the recovery code.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut offset = 0usize;
    while offset + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        if offset + 8 + len > bytes.len() {
            break;
        }
        offset += 8 + len;
        ends.push(offset);
    }
    ends
}

/// Property: for **every** cut point inside the last three frames (clean
/// boundaries, mid-header, mid-payload), opening the truncated log
/// recovers exactly the records whose frames survived whole, truncates the
/// file to that prefix, and keeps serving — no panic, no partial record.
#[test]
fn torn_wal_tails_recover_the_longest_intact_prefix() {
    let dir = temp_dir("torn-master");
    {
        let (store, persistence, _) = open(&dir);
        for i in 0..12 {
            store.create(pod(&format!("torn-{i}"), "nginx"));
        }
        persistence.wal().sync().expect("tail syncs");
    }
    let master = std::fs::read(dir.join(WAL_FILE)).expect("WAL exists");
    let ends = frame_ends(&master);
    assert_eq!(ends.len(), 12, "one frame per single-object write");

    // Every byte position from the start of frame 10 to EOF is a cut point.
    for cut in ends[9]..master.len() {
        let case = temp_dir("torn-case");
        std::fs::create_dir_all(&case).unwrap();
        std::fs::write(case.join(WAL_FILE), &master[..cut]).unwrap();

        let survivors = ends.iter().filter(|&&end| end <= cut).count();
        let (store, _persistence, report) = open(&case);
        assert_eq!(
            report.replayed, survivors,
            "cut at byte {cut}: exactly the whole frames replay"
        );
        assert_eq!(StoreBackend::len(&store), survivors);
        assert_eq!(StoreBackend::revision(&store), survivors as u64);
        let expect_torn = ends.binary_search(&cut).is_err();
        assert_eq!(report.torn_tail.is_some(), expect_torn);
        // The torn bytes are physically gone: the file now ends on the
        // intact prefix, so a re-read sees no tear.
        let after = std::fs::read(case.join(WAL_FILE)).unwrap();
        assert_eq!(
            after.len(),
            ends.get(survivors.wrapping_sub(1)).copied().unwrap_or(0)
        );
        // And the store keeps writing from the recovered revision.
        let (revision, _) = store.upsert(pod("resume", "nginx"));
        assert_eq!(revision, survivors as u64 + 1);
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt byte (bit flip, not truncation) in the middle of a frame cuts
/// replay at that frame — CRC catches it — and everything after the flip
/// is dropped as unframeable noise rather than resynchronized on garbage.
#[test]
fn corrupt_wal_bytes_cut_replay_at_the_damaged_frame() {
    let dir = temp_dir("corrupt");
    {
        let (store, persistence, _) = open(&dir);
        for i in 0..8 {
            store.create(pod(&format!("flip-{i}"), "nginx"));
        }
        persistence.wal().sync().expect("tail syncs");
    }
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).expect("WAL exists");
    let ends = frame_ends(&bytes);
    // Flip one payload byte inside the 6th frame.
    let target = ends[4] + 12;
    bytes[target] ^= 0x40;
    std::fs::write(&wal_path, &bytes).unwrap();

    let replay = persist::read_wal(&wal_path).expect("reading never errors on corruption");
    assert_eq!(replay.records.len(), 5, "frames before the flip survive");
    let torn = replay.torn.expect("the flip is a detected tear");
    assert_eq!(torn.valid_len, ends[4] as u64);

    let (store, _persistence, report) = open(&dir);
    assert_eq!(report.replayed, 5);
    assert_eq!(StoreBackend::revision(&store), 5);
    assert!(store.get(ResourceKind::Pod, "default", "flip-4").is_some());
    assert!(store.get(ResourceKind::Pod, "default", "flip-5").is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpointing ties compaction to the revision horizon: the WAL keeps
/// only records past the snapshot, recovery combines snapshot + suffix,
/// and a cursor from before the horizon gets `410 Gone` at exactly the
/// horizon — the same contract the in-memory journal compaction gives.
#[test]
fn checkpoint_compacts_the_wal_and_seals_the_gone_horizon() {
    let dir = temp_dir("checkpoint");
    let horizon;
    {
        let (store, persistence, _) = open(&dir);
        for i in 0..30 {
            store.create(pod(&format!("ckpt-{i}"), "nginx"));
        }
        let report = persistence.checkpoint(&store).expect("checkpoint runs");
        horizon = report.revision;
        assert_eq!(horizon, 30);
        assert_eq!(report.wal_retained, 0, "nothing newer than the horizon yet");
        // Ten more writes after the checkpoint land in the WAL suffix.
        for i in 0..10 {
            store.create(pod(&format!("suffix-{i}"), "nginx"));
        }
        persistence.wal().sync().expect("tail syncs");
        let replay = persist::read_wal(&dir.join(WAL_FILE)).expect("suffix reads");
        assert_eq!(replay.records.len(), 10, "compaction dropped the prefix");
        assert!(replay.records.iter().all(|r| r.revision > horizon));
    }

    let (store, _persistence, report) = open(&dir);
    assert_eq!(report.snapshot_objects, 30);
    assert_eq!(report.replayed, 10);
    assert_eq!(StoreBackend::revision(&store), 40);
    assert_eq!(StoreBackend::len(&store), 40);

    let mut stale = WatchSubscription::at(ResourceKind::Pod, "default", horizon);
    match stale.poll(&store) {
        Err(WatchError::Gone { compacted_through }) => assert_eq!(compacted_through, 40),
        other => panic!("pre-restart cursor must be Gone, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The fsync policy bounds loss, it does not change correctness: with
/// `Batch(n)`, everything up to the last durability point survives, the
/// recovered prefix is exact (not approximate), and `durable_revision`
/// never overstates what is on disk.
#[test]
fn batch_fsync_recovers_an_exact_prefix_and_never_overstates_durability() {
    let dir = temp_dir("batch");
    let durable;
    {
        let (store, persistence, _) =
            Persistence::open(PersistConfig::new(&dir).with_fsync(FsyncPolicy::Batch(8)))
                .expect("persistence opens");
        for i in 0..20 {
            store.create(pod(&format!("batch-{i}"), "nginx"));
        }
        durable = persistence.wal().durable_revision();
        // 20 appends at Batch(8) → syncs at 8 and 16.
        assert_eq!(durable, 16);
        assert_eq!(persistence.wal().appended_revision(), 20);
        // Crash without the final sync.
    }
    let (store, _persistence, report) = open(&dir);
    // The page cache may have flushed more than the guarantee, but never
    // less, and whatever replays is a gapless prefix.
    assert!(report.recovered_revision >= durable);
    assert!(report.recovered_revision <= 20);
    assert_eq!(StoreBackend::len(&store) as u64, report.recovered_revision);
    for i in 0..report.recovered_revision {
        assert!(
            store
                .get(ResourceKind::Pod, "default", &format!("batch-{i}"))
                .is_some(),
            "recovered prefix must be gapless at batch-{i}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite property test for the incremental-checkpoint plane: **any**
/// seeded interleaving of {churn, dirty-shard checkpoint, manifest tear,
/// crash, reopen} recovers byte-identical state — exactly what a full
/// snapshot would have preserved. A torn current manifest must never cost
/// correctness: recovery falls back to the previous complete manifest (or
/// probes the self-validating segments directly) and replays the longer
/// WAL suffix.
#[test]
fn random_interleavings_of_checkpoint_churn_and_crash_recover_byte_identically() {
    use k8s_apiserver::persist::MANIFEST_FILE;

    /// Crash (drop both handles), reopen, and require the recovered store
    /// to be byte-identical to the pre-crash one.
    fn crash_and_verify(
        dir: &PathBuf,
        store: ObjectStore,
        persistence: Persistence,
        expect_fallback: bool,
        context: &str,
    ) -> (ObjectStore, Persistence) {
        persistence.wal().sync().expect("pre-crash sync");
        let revision = StoreBackend::revision(&store);
        let expected: Vec<(String, u64, String)> = store
            .snapshot_objects()
            .iter()
            .map(|s| {
                (
                    s.object.name().to_owned(),
                    s.resource_version,
                    s.object.to_yaml(),
                )
            })
            .collect();
        drop(store);
        drop(persistence);

        let (store, persistence, report) = open(dir);
        assert_eq!(
            report.recovered_revision, revision,
            "{context}: the revision floor survives the crash"
        );
        assert_eq!(
            StoreBackend::len(&store),
            expected.len(),
            "{context}: object count survives"
        );
        for (name, resource_version, yaml) in &expected {
            let stored = store
                .get(ResourceKind::Pod, "default", name)
                .unwrap_or_else(|| panic!("{context}: {name} lost in replay"));
            assert_eq!(
                stored.resource_version, *resource_version,
                "{context}: {name}"
            );
            assert_eq!(
                stored.object.to_yaml(),
                *yaml,
                "{context}: {name} must recover byte-identically"
            );
        }
        if expect_fallback {
            assert!(
                report.manifest_fallback,
                "{context}: a torn current manifest with an intact previous one \
                 must be reported as a fallback"
            );
        }
        (store, persistence)
    }

    let mut fallbacks_exercised = 0u32;
    for seed in 1u64..=8 {
        let dir = temp_dir("interleave");
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let (mut store, mut persistence, _) = open(&dir);
        // Shadow model of the manifest chain: `Some(true)` = intact file,
        // `Some(false)` = torn file, `None` = absent/unknown. Every
        // checkpoint rotates current → previous before writing a fresh
        // current, so a torn manifest can end up in either slot; the
        // fallback report is only owed for torn-current + intact-previous.
        let mut current_intact: Option<bool> = None;
        let mut prev_intact: Option<bool> = None;
        for step in 0..60 {
            match rng() % 10 {
                // Churn: upserts and deletes over a small name pool so the
                // same shards keep going dirty and clean.
                0..=5 => {
                    let name = format!("p-{}", rng() % 24);
                    if rng() % 4 == 0 {
                        store.delete(ResourceKind::Pod, "default", &name);
                    } else {
                        store.upsert(pod(&name, &format!("nginx:1.{}", rng() % 32)));
                    }
                }
                // Incremental checkpoint: rewrites only the dirty shards.
                6 | 7 => {
                    let report = persistence.checkpoint(&store).expect("checkpoint runs");
                    assert!(report.dirty_shards <= report.total_shards);
                    if current_intact.is_some() {
                        prev_intact = current_intact;
                    }
                    current_intact = Some(true);
                }
                // Checkpoint, then tear the freshly written manifest in
                // half — the worst moment to lose it.
                8 => {
                    persistence.checkpoint(&store).expect("checkpoint runs");
                    if current_intact.is_some() {
                        prev_intact = current_intact;
                    }
                    let manifest = dir.join(MANIFEST_FILE);
                    let bytes = std::fs::read(&manifest).expect("manifest exists");
                    std::fs::write(&manifest, &bytes[..bytes.len() / 2]).expect("tear it");
                    current_intact = Some(false);
                }
                // Crash mid-sequence and keep going on the recovered store.
                _ => {
                    let expect_fallback =
                        current_intact == Some(false) && prev_intact == Some(true);
                    fallbacks_exercised += u32::from(expect_fallback);
                    (store, persistence) = crash_and_verify(
                        &dir,
                        store,
                        persistence,
                        expect_fallback,
                        &format!("seed {seed} step {step}"),
                    );
                    // Recovery quarantines a torn current manifest; stop
                    // modelling the chain until fresh checkpoints rebuild it.
                    if current_intact == Some(false) {
                        current_intact = None;
                        prev_intact = None;
                    }
                }
            }
        }
        let expect_fallback = current_intact == Some(false) && prev_intact == Some(true);
        fallbacks_exercised += u32::from(expect_fallback);
        crash_and_verify(
            &dir,
            store,
            persistence,
            expect_fallback,
            &format!("seed {seed} final"),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(
        fallbacks_exercised > 0,
        "the seeds must hit the torn-current + intact-previous fallback at least once"
    );
}

/// The crash/replay driver's verdict holds for every operator's chart
/// objects — realistic multi-kind bodies, batched writes, deletes — in
/// both its pure-WAL and snapshot + suffix modes.
#[test]
fn every_operator_survives_crash_replay_byte_identically() {
    for operator in Operator::ALL {
        for checkpoint_mid in [false, true] {
            let dir = temp_dir("operators");
            let driver = RecoveryDriver::new(operator, PersistConfig::new(&dir));
            let verdict = driver.run_cycle(2, checkpoint_mid).expect("cycle runs");
            assert!(
                verdict.byte_identical,
                "{operator:?} (checkpoint_mid={checkpoint_mid}): {:?}",
                verdict.mismatches
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// The server-level recovery path: an [`ApiServer::durable`] instance
/// restarted over the same directory answers requests against the replayed
/// state — the whole stack (request handling → store → WAL → replay) in
/// one loop.
#[test]
fn durable_api_server_serves_replayed_state_after_restart() {
    let dir = temp_dir("server");
    {
        let (server, persistence, _) =
            ApiServer::durable(PersistConfig::new(&dir)).expect("durable server opens");
        let server = server.with_admin("admin");
        for i in 0..10 {
            let response = server.handle(&ApiRequest::create(
                "admin",
                &pod(&format!("api-{i}"), "nginx"),
            ));
            assert!(response.is_success());
        }
        persistence.wal().sync().expect("tail syncs");
    }
    let (server, _persistence, report) =
        ApiServer::durable(PersistConfig::new(&dir)).expect("restart opens");
    let server = server.with_admin("admin");
    assert_eq!(report.live_objects, 10);
    assert_eq!(server.store().len(), 10);
    // The replayed state is live server state: an update goes through the
    // normal request path and lands at the next gapless revision.
    let response = server.handle(&ApiRequest::create("admin", &pod("api-0", "nginx:1.26")));
    assert!(response.is_success());
    assert_eq!(server.store().revision(), report.recovered_revision + 1);
    std::fs::remove_dir_all(&dir).ok();
}
