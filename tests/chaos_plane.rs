//! The robustness plane, pinned end to end: the chaos sweep's recovery
//! invariants across seeded fault schedules × both degradation policies,
//! the fail-closed 503-for-writes / 200-for-reads serving contract, the
//! fail-open durability demotion, concurrent writers racing a latched WAL
//! error, corrupt-snapshot quarantine through the server boot path, and
//! admission-gate load shedding.
//!
//! The sweep test honours `KF_CHAOS_SEED` (CI pins it in the parity job)
//! and prints the invariant summary for the step summary.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use k8s_apiserver::persist::{PersistConfig, Persistence, RetryPolicy};
use k8s_apiserver::storage_io::{FaultSchedule, FaultyIo};
use k8s_apiserver::{
    ApiRequest, ApiServer, DegradePolicy, DurabilityState, FsyncPolicy, RequestHandler,
    ResponseStatus, StorageErrorKind, StoreBackend,
};
use k8s_model::{K8sObject, ResourceKind};
use kf_workloads::ChaosDriver;

fn temp_dir(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "kf-chaos-plane-{label}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn pod(name: &str, image: &str) -> K8sObject {
    K8sObject::from_yaml(&format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: chaos\nspec:\n  containers:\n    - name: app\n      image: {image}\n"
    ))
    .expect("pod parses")
}

/// A degraded durable server over a permanent fsync fault, with immediate
/// (zero-backoff) retries so state transitions are deterministic.
fn degraded_server(
    dir: &PathBuf,
    policy: DegradePolicy,
    fail_stop_after: u32,
) -> (ApiServer, Persistence) {
    let io = Arc::new(FaultyIo::over_real(
        FaultSchedule::parse("fsync@1:permanent").expect("spec parses"),
    ));
    let config = PersistConfig::new(dir).with_retry(RetryPolicy::immediate(fail_stop_after));
    let (store, persistence, _) = Persistence::open_with_io(config, io).expect("boot is clean");
    (
        ApiServer::with_store(store).with_degrade_policy(policy),
        persistence,
    )
}

/// The acceptance sweep: ≥ 8 seeded fault schedules × both degradation
/// policies, every run either recovers byte-identically after reopen or
/// fail-stops with a structured latched error, and `durable_revision`
/// never exceeds what is on stable storage. `KF_CHAOS_SEED` pins the base
/// seed (CI parity job); the summary prints with `--nocapture`.
#[test]
fn chaos_sweep_is_green_across_seeds_and_both_policies() {
    let base_seed: u64 = std::env::var("KF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let driver = ChaosDriver::new(temp_dir("sweep"));
    let report = driver.sweep(base_seed, 8).expect("sweep runs");
    println!("chaos sweep @ seed {base_seed}\n{}", report.summary());
    assert_eq!(report.outcomes.len(), 16, "8 schedules x 2 policies");
    assert!(
        report.outcomes.iter().any(|o| o.injected_faults > 0),
        "the sweep must actually inject faults"
    );
    assert!(
        report.all_green(),
        "invariant violations:\n{}",
        report.summary()
    );
}

#[test]
fn fail_closed_rejects_writes_with_503_while_reads_and_watches_serve() {
    let dir = temp_dir("fail-closed");
    let (server, persistence) = degraded_server(&dir, DegradePolicy::FailClosed, 1_000);

    // The degrading write itself is acknowledged — the store applied it
    // before the fsync failed — and flips the machine to Degraded.
    let first = server.handle(&ApiRequest::create("admin", &pod("a", "nginx")));
    assert!(first.is_success());
    assert_eq!(
        server.store().durability_state(),
        DurabilityState::Degraded,
        "fsync failure degrades"
    );

    // Writes now answer 503 with the structured reason...
    let write = server.handle(&ApiRequest::create("admin", &pod("b", "nginx")));
    assert_eq!(write.status, ResponseStatus::ServiceUnavailable);
    assert_eq!(write.status.code(), 503);
    assert!(
        write.message.contains("fail-closed"),
        "message names the policy: {}",
        write.message
    );
    let delete = server.handle(&ApiRequest::delete(
        "admin",
        ResourceKind::Pod,
        "chaos",
        "a",
    ));
    assert_eq!(delete.status, ResponseStatus::ServiceUnavailable);

    // ...while reads, lists and watches keep serving from memory.
    let get = server.handle(&ApiRequest::get("admin", ResourceKind::Pod, "chaos", "a"));
    assert!(get.is_success(), "get serves while degraded");
    let list = server.handle(&ApiRequest::list("admin", ResourceKind::Pod, "chaos"));
    assert!(list.is_success(), "list serves while degraded");
    let watch = server.handle(&ApiRequest::watch(
        "admin",
        ResourceKind::Pod,
        "chaos",
        None,
    ));
    assert!(watch.is_success(), "watch attaches while degraded");

    // The rejected writes never reached the store, and the health surface
    // accounts for them.
    assert_eq!(StoreBackend::len(server.store()), 1);
    let health = server.health_report();
    assert_eq!(health.rejected_writes, 2);
    assert_eq!(health.policy, DegradePolicy::FailClosed);
    assert_eq!(health.durability.state, DurabilityState::Degraded);
    assert!(health.durability.gap >= 1, "the at-risk window is visible");
    assert!(!health.healthy());
    let latched = health.durability.latched.expect("latched error surfaces");
    assert_eq!(latched.kind, StorageErrorKind::Fsync);
    assert_eq!(persistence.wal().durable_revision(), 0, "nothing proven");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fail_open_keeps_acknowledging_writes_with_durability_demoted() {
    let dir = temp_dir("fail-open");
    let (server, persistence) = degraded_server(&dir, DegradePolicy::FailOpen, 1_000);
    for i in 0..5 {
        let response = server.handle(&ApiRequest::create(
            "admin",
            &pod(&format!("p-{i}"), "nginx"),
        ));
        assert!(response.is_success(), "fail-open acknowledges write {i}");
    }
    assert_eq!(StoreBackend::len(server.store()), 5);
    let health = server.health_report();
    assert_eq!(health.rejected_writes, 0);
    assert_eq!(health.durability.state, DurabilityState::Degraded);
    assert_eq!(
        persistence.wal().durable_revision(),
        0,
        "durability is demoted, not faked"
    );
    assert_eq!(health.durability.gap, 5, "all five writes are at risk");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: concurrent writers racing a latched WAL error. Every write
/// stays applied in memory, `durable_revision` never overstates stable
/// storage, and exactly one `Healthy → Degraded` transition is observed no
/// matter how many threads hit the failing fsync.
#[test]
fn concurrent_writers_racing_a_latched_error_observe_one_transition() {
    let dir = temp_dir("racing");
    let (server, persistence) = degraded_server(&dir, DegradePolicy::FailOpen, u32::MAX);
    const THREADS: usize = 8;
    const WRITES: usize = 10;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let server = &server;
            scope.spawn(move || {
                for w in 0..WRITES {
                    let response = server.handle(&ApiRequest::create(
                        "admin",
                        &pod(&format!("t{t}-w{w}"), "nginx"),
                    ));
                    assert!(response.is_success(), "fail-open write t{t}-w{w}");
                }
            });
        }
    });
    assert_eq!(
        StoreBackend::len(server.store()),
        THREADS * WRITES,
        "every acknowledged write is applied in memory"
    );
    let wal = persistence.wal();
    assert_eq!(
        wal.durable_revision(),
        0,
        "a permanently failing fsync proves nothing, ever"
    );
    assert_eq!(wal.state(), DurabilityState::Degraded);
    assert_eq!(wal.durability_gap(), (THREADS * WRITES) as u64);
    let transitions = wal.transitions();
    assert_eq!(
        transitions
            .iter()
            .filter(|t| t.to == DurabilityState::Degraded)
            .count(),
        1,
        "exactly one Healthy→Degraded transition across {THREADS} racing writers: {transitions:?}"
    );
    let latched = wal.last_error().expect("error latched");
    assert!(
        latched.failures >= 1,
        "the latch counts the episode's failures"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: corrupt checkpoint segments are quarantined at boot (renamed
/// to `.corrupt`) and the server comes up serving the WAL replay instead of
/// refusing to start.
#[test]
fn corrupt_snapshot_quarantines_and_the_server_boots_serving() {
    let dir = temp_dir("quarantine");
    {
        let (server, persistence, _) =
            ApiServer::durable(PersistConfig::new(&dir)).expect("first boot");
        for i in 0..4 {
            let response = server.handle(&ApiRequest::create(
                "admin",
                &pod(&format!("q-{i}"), "nginx"),
            ));
            assert!(response.is_success());
        }
        persistence.wal().sync().expect("writes durable");
        // Checkpoint, then write a suffix: the quarantine trades the
        // checkpointed prefix for a boot that serves, so what must survive
        // is exactly the WAL records past the checkpoint horizon.
        persistence.checkpoint(server.store()).expect("checkpoint");
        let response = server.handle(&ApiRequest::create("admin", &pod("q-late", "nginx")));
        assert!(response.is_success());
        persistence.wal().sync().expect("suffix durable");
    }
    // Flip a byte in every checkpoint segment: the per-shard CRC catches
    // each one and recovery falls back to whatever the WAL still holds.
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("dir lists") {
        let path = entry.expect("entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("store.seg-") && name.ends_with(".kfsnap") {
            let mut bytes = std::fs::read(&path).expect("segment reads");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).expect("corrupt it");
            segments.push(path);
        }
    }
    assert!(!segments.is_empty(), "the checkpoint wrote segments");

    let (server, _persistence, report) =
        ApiServer::durable(PersistConfig::new(&dir)).expect("boot survives corruption");
    let quarantined = report.snapshot_quarantined.expect("quarantine reported");
    assert!(quarantined.exists(), "corrupt file kept for forensics");
    assert!(
        segments.iter().all(|s| !s.exists()),
        "corrupt segments moved aside"
    );
    // The WAL suffix past the checkpoint horizon still serves.
    let get = server.handle(&ApiRequest::get(
        "admin",
        ResourceKind::Pod,
        "chaos",
        "q-late",
    ));
    assert!(
        get.is_success(),
        "post-checkpoint write survives quarantine"
    );
    let write = server.handle(&ApiRequest::create("admin", &pod("q-new", "nginx")));
    assert!(write.is_success(), "the quarantined server accepts writes");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: the shared group-commit fsync fails mid-window while writers
/// are parked on it. Every waiter must observe the degradation and return
/// (no waiter is left parked forever), no waiter's write may be reported
/// durable, and a clean reopen replays only what the WAL actually holds —
/// never more than what was acknowledged.
#[test]
fn failed_group_window_fsync_degrades_every_parked_waiter() {
    let dir = temp_dir("group-window");
    const THREADS: usize = 4;
    const WRITES: usize = 5;
    {
        let io = Arc::new(FaultyIo::over_real(
            FaultSchedule::parse("fsync@1:permanent").expect("spec parses"),
        ));
        // A wide-open window (100ms, 64-record batch) so concurrent writers
        // genuinely park behind one leader whose shared fsync then fails.
        let config = PersistConfig::new(&dir)
            .with_fsync(FsyncPolicy::Group {
                max_wait_us: 100_000,
                max_batch: 64,
            })
            .with_retry(RetryPolicy::immediate(u32::MAX));
        let (store, persistence, _) = Persistence::open_with_io(config, io).expect("boot is clean");
        let server = ApiServer::with_store(store).with_degrade_policy(DegradePolicy::FailOpen);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let server = &server;
                scope.spawn(move || {
                    for w in 0..WRITES {
                        let response = server.handle(&ApiRequest::create(
                            "admin",
                            &pod(&format!("g{t}-w{w}"), "nginx"),
                        ));
                        // Every waiter returns: degradation wakes the
                        // parked followers instead of stranding them.
                        assert!(response.is_success(), "fail-open write g{t}-w{w}");
                    }
                });
            }
        });
        assert_eq!(StoreBackend::len(server.store()), THREADS * WRITES);
        let wal = persistence.wal();
        assert_eq!(
            wal.durable_revision(),
            0,
            "a failed shared fsync proves no waiter's write durable"
        );
        assert_eq!(wal.state(), DurabilityState::Degraded);
        assert_eq!(wal.durability_gap(), (THREADS * WRITES) as u64);
        assert_eq!(
            wal.transitions()
                .iter()
                .filter(|t| t.to == DurabilityState::Degraded)
                .count(),
            1,
            "one shared failure, one transition — not one per parked waiter"
        );
        assert_eq!(
            wal.last_error().expect("error latched").kind,
            StorageErrorKind::Fsync
        );
        let health = server.health_report();
        assert_eq!(
            health.fsync_batches, 0,
            "no group window ever closed successfully"
        );
        assert_eq!(health.avg_group_size, 0.0);
    }
    // Clean reopen: recovery replays the WAL prefix that reached the file.
    // Nothing beyond the acknowledged writes may appear, and the revision
    // floor must cover everything replayed so new writes never collide.
    let (server, persistence, report) =
        ApiServer::durable(PersistConfig::new(&dir)).expect("clean reopen");
    let recovered = StoreBackend::len(server.store());
    assert!(
        recovered <= THREADS * WRITES,
        "recovery must never invent writes: {recovered}"
    );
    assert_eq!(report.replayed, recovered);
    let write = server.handle(&ApiRequest::create("admin", &pod("g-after", "nginx")));
    assert!(write.is_success(), "the reopened server accepts writes");
    persistence
        .wal()
        .sync()
        .expect("healthy fsync after reopen");
    assert!(
        persistence.wal().durable_revision() > 0,
        "durability is restored on clean storage"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Overload protection: a gate bounded to one in-flight request with a
/// zero deadline sheds the overlapping request with `429`, and the health
/// surface accounts for every admission decision.
#[test]
fn admission_gate_sheds_overlapping_requests_with_429() {
    let server = Arc::new(ApiServer::new().with_admission_limit(1, Duration::ZERO));
    const PER_THREAD: usize = 4000;
    let shed_seen = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    let mut shed = 0u64;
                    for _ in 0..PER_THREAD {
                        let response =
                            server.handle(&ApiRequest::list("admin", ResourceKind::Pod, ""));
                        match response.status {
                            ResponseStatus::TooManyRequests => shed += 1,
                            ResponseStatus::Ok => {}
                            other => panic!("unexpected status {other:?}"),
                        }
                    }
                    shed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer thread"))
            .sum::<u64>()
    });
    let health = server.health_report();
    assert_eq!(health.max_in_flight, Some(1));
    assert_eq!(health.shed_total, shed_seen, "health matches observations");
    assert_eq!(
        health.admitted_total + health.shed_total,
        (2 * PER_THREAD) as u64,
        "every request was either admitted or shed"
    );
    assert_eq!(health.in_flight, 0, "permits all released");
    assert!(health.peak_in_flight <= 1, "the bound held");
    assert!(
        shed_seen > 0,
        "two threads x {PER_THREAD} zero-deadline requests through a width-1 gate must overlap"
    );
    assert_eq!(health.shed_total, shed_seen);
}

/// An in-memory server reports a vacuous-but-honest health surface: no
/// durability attached, healthy, nothing at risk.
#[test]
fn in_memory_server_reports_an_honest_health_surface() {
    let server = ApiServer::new();
    let response = server.handle(&ApiRequest::create("admin", &pod("m", "nginx")));
    assert!(response.is_success());
    let health = server.health_report();
    assert!(!health.durability.durable, "no WAL attached");
    assert_eq!(health.durability.state, DurabilityState::Healthy);
    assert_eq!(health.durability.gap, 0);
    assert_eq!(health.max_in_flight, None, "no gate configured");
    assert!(health.healthy());
}
