//! "Legitimate workload actions were unaffected" (Section VI-D): every object
//! of every operator's default deployment must pass its own validator, and a
//! full deployment through the KubeFence proxy must succeed end to end.

use k8s_apiserver::ApiServer;
use kf_workloads::{DeploymentDriver, Operator};
use kubefence::{EnforcementProxy, GeneratorConfig, PolicyGenerator};

#[test]
fn every_default_object_passes_its_own_validator() {
    for operator in Operator::ALL {
        let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
            .generate(&operator.chart())
            .unwrap();
        for object in operator.workload().default_objects() {
            let violations = validator.validate(&object);
            assert!(
                violations.is_empty(),
                "{operator}: legitimate object {}/{} rejected: {}",
                object.kind(),
                object.name(),
                violations
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }
}

#[test]
fn full_deployments_succeed_through_the_proxy() {
    for operator in Operator::ALL {
        let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
            .generate(&operator.chart())
            .unwrap();
        let server = ApiServer::new().with_admin(&operator.user());
        let proxy = EnforcementProxy::new(server, validator);
        let driver = DeploymentDriver::new(operator);
        let outcomes = driver.deploy(&proxy);
        let failures: Vec<_> = outcomes
            .iter()
            .filter(|o| !o.response.is_success())
            .map(|o| format!("{} {}: {}", o.kind, o.object_name, o.response.message))
            .collect();
        assert!(failures.is_empty(), "{operator}: {failures:?}");
        assert_eq!(proxy.stats().denied, 0, "{operator}");
        assert_eq!(
            proxy.upstream().store().len(),
            driver.objects().len(),
            "{operator}: not all objects were persisted"
        );
    }
}

#[test]
fn user_value_overrides_within_the_chart_space_are_still_accepted() {
    // A user changes replica counts and resource sizes (values the chart
    // exposes): the resulting manifests stay inside the validator.
    let operator = Operator::Nginx;
    let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .unwrap();
    let overrides = kf_yaml::parse(
        "replicaCount: 5\nresources:\n  limits:\n    cpu: 2000m\n    memory: 1Gi\n  requests:\n    cpu: 1000m\n    memory: 512Mi\nservice:\n  type: ClusterIP\n",
    )
    .unwrap();
    let manifests =
        helm_lite::render_chart(&operator.chart(), Some(&overrides), operator.release_name())
            .unwrap();
    for manifest in manifests {
        let object = k8s_model::K8sObject::from_value(manifest.document).unwrap();
        let violations = validator.validate(&object);
        assert!(
            violations.is_empty(),
            "override deployment rejected at {}: {:?}",
            object.name(),
            violations
        );
    }
}
