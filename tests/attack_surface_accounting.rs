//! Attack-surface accounting across the five operators (Figure 9 / Table I):
//! KubeFence restricts strictly more of the configurable-field surface than
//! RBAC for every workload, with the gap largest for workloads that touch
//! many endpoints (SonarQube).

use k8s_model::ResourceKind;
use kf_workloads::Operator;
use kubefence::{AttackSurfaceAnalyzer, GeneratorConfig, PolicyGenerator, Validator};

fn validators() -> Vec<(Operator, Validator)> {
    Operator::ALL
        .iter()
        .map(|operator| {
            let validator =
                PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
                    .generate(&operator.chart())
                    .unwrap();
            (*operator, validator)
        })
        .collect()
}

#[test]
fn kubefence_restricts_strictly_more_than_rbac_for_every_workload() {
    let analyzer = AttackSurfaceAnalyzer::new();
    for (operator, validator) in validators() {
        let surface = analyzer.analyze(&validator);
        assert!(
            surface.kubefence_restrictable > surface.rbac_restrictable,
            "{operator}: KubeFence {} vs RBAC {}",
            surface.kubefence_restrictable,
            surface.rbac_restrictable
        );
        assert!(
            surface.kubefence_reduction_percent() > 90.0,
            "{operator}: KubeFence reduction {:.2}%",
            surface.kubefence_reduction_percent()
        );
        assert!(surface.improvement_percent() > 0.0, "{operator}");
    }
}

#[test]
fn sonarqube_has_the_lowest_rbac_reduction() {
    // SonarQube touches the most endpoints, so RBAC can blacklist the least
    // (20.73% in the paper, by far the lowest row of Table I).
    let analyzer = AttackSurfaceAnalyzer::new();
    let mut reductions: Vec<(Operator, f64)> = validators()
        .iter()
        .map(|(operator, validator)| {
            (
                *operator,
                analyzer.analyze(validator).rbac_reduction_percent(),
            )
        })
        .collect();
    reductions.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    assert_eq!(reductions[0].0, Operator::Sonarqube, "{reductions:?}");
    // and the gap to the next workload is substantial.
    assert!(reductions[1].1 - reductions[0].1 > 10.0, "{reductions:?}");
}

#[test]
fn average_improvement_is_in_the_tens_of_percentage_points() {
    let analyzer = AttackSurfaceAnalyzer::new();
    let all: Vec<Validator> = validators().into_iter().map(|(_, v)| v).collect();
    let report = analyzer.analyze_all(&all);
    let improvement = report.average_improvement_percent();
    assert!(
        (10.0..80.0).contains(&improvement),
        "average improvement = {improvement:.2} percentage points"
    );
}

#[test]
fn figure9_usage_structure_holds() {
    let analyzer = AttackSurfaceAnalyzer::new();
    let surfaces: std::collections::BTreeMap<Operator, _> = validators()
        .into_iter()
        .map(|(operator, validator)| (operator, analyzer.analyze(&validator)))
        .collect();

    // Service and ServiceAccount are used by every workload; Pod and Job only
    // by SonarQube; every usage percentage is partial (< 60%).
    for (operator, surface) in &surfaces {
        for kind in [ResourceKind::Service, ResourceKind::ServiceAccount] {
            assert!(
                surface.usage_for(kind).unwrap().used_fields > 0,
                "{operator} must use {kind}"
            );
        }
        for endpoint in &surface.endpoints {
            assert!(
                endpoint.usage_percent() < 60.0,
                "{operator} uses {:.1}% of {}, expected partial usage",
                endpoint.usage_percent(),
                endpoint.kind
            );
        }
    }
    for operator in [
        Operator::Nginx,
        Operator::Mlflow,
        Operator::Postgresql,
        Operator::Rabbitmq,
    ] {
        assert_eq!(
            surfaces[&operator]
                .usage_for(ResourceKind::Pod)
                .unwrap()
                .used_fields,
            0,
            "{operator} should not use the Pod endpoint"
        );
    }
    assert!(
        surfaces[&Operator::Sonarqube]
            .usage_for(ResourceKind::Pod)
            .unwrap()
            .used_fields
            > 0
    );
}

#[test]
fn total_field_catalog_is_in_the_papers_order_of_magnitude() {
    let analyzer = AttackSurfaceAnalyzer::new();
    let total = analyzer.total_fields();
    assert!(
        (3500..6500).contains(&total),
        "total configurable fields = {total}"
    );
}
