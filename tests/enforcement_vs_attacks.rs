//! The paper's effectiveness experiment (Table III): replay the catalog of 15
//! malicious specifications against each operator's cluster, once protected
//! only by a least-privilege RBAC policy and once protected by KubeFence.
//! Expected result: RBAC mitigates none of the attacks, KubeFence mitigates
//! all of them, and in the KubeFence runs no CVE is ever exercised.

use k8s_apiserver::{ApiServer, RequestHandler};
use k8s_rbac::{audit2rbac, Audit2RbacOptions};
use kf_attacks::AttackExecutor;
use kf_workloads::{DeploymentDriver, Operator};
use kubefence::{EnforcementProxy, GeneratorConfig, PolicyGenerator};

/// Learn the per-operator RBAC policy the way the paper does: run the
/// attack-free deployment with audit logging enabled, then feed the audit log
/// to `audit2rbac`.
fn learned_rbac_policy(operator: Operator) -> k8s_rbac::RbacPolicySet {
    let learning_server = ApiServer::new().with_admin(&operator.user());
    DeploymentDriver::new(operator).deploy(&learning_server);
    let log = learning_server.audit_log();
    audit2rbac(
        log.events(),
        &operator.user(),
        &Audit2RbacOptions::default(),
    )
}

fn executor_for(operator: Operator) -> AttackExecutor {
    AttackExecutor::new(
        &operator.user(),
        operator.namespace(),
        operator.workload().default_objects(),
    )
}

#[test]
fn rbac_alone_mitigates_no_catalog_attack() {
    for operator in Operator::ALL {
        let policy = learned_rbac_policy(operator);
        let server = ApiServer::new();
        server.set_rbac_policy(Some(policy));
        let outcomes = executor_for(operator).execute(&server);
        let summary = AttackExecutor::summarize(&outcomes);
        assert_eq!(summary.cve_attempted, 8, "{operator}");
        assert_eq!(summary.misconfig_attempted, 7, "{operator}");
        assert!(
            summary.none_mitigated(),
            "{operator}: RBAC unexpectedly blocked an attack: {:?}",
            outcomes.iter().filter(|o| o.mitigated).collect::<Vec<_>>()
        );
        // The accepted exploits really did reach vulnerable code.
        assert!(
            !server.exploits().is_empty(),
            "{operator}: accepted exploits should exercise vulnerable code"
        );
    }
}

#[test]
fn kubefence_mitigates_every_catalog_attack() {
    for operator in Operator::ALL {
        let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
            .generate(&operator.chart())
            .unwrap();
        let proxy = EnforcementProxy::new(ApiServer::new(), validator);
        let outcomes = executor_for(operator).execute(&proxy);
        let summary = AttackExecutor::summarize(&outcomes);
        assert_eq!(summary.cve_attempted, 8, "{operator}");
        assert_eq!(summary.misconfig_attempted, 7, "{operator}");
        assert!(
            summary.all_mitigated(),
            "{operator}: unmitigated attacks: {:?}",
            outcomes.iter().filter(|o| !o.mitigated).collect::<Vec<_>>()
        );
        // Nothing malicious reached the API server, so no CVE was exercised
        // and nothing was persisted.
        assert!(proxy.upstream().exploits().is_empty(), "{operator}");
        assert_eq!(proxy.upstream().store().len(), 0, "{operator}");
        // Every denial names the offending field for auditing/forensics.
        for denial in proxy.denials() {
            assert!(!denial.violations.is_empty(), "{operator}");
        }
    }
}

#[test]
fn kubefence_denials_identify_the_targeted_fields() {
    let operator = Operator::Nginx;
    let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .unwrap();
    let proxy = EnforcementProxy::new(ApiServer::new(), validator);
    let outcomes = executor_for(operator).execute(&proxy);
    let host_network = outcomes.iter().find(|o| o.spec_id == "E1").unwrap();
    assert!(host_network.mitigated);
    assert!(
        host_network.message.contains("hostNetwork"),
        "denial message should name the offending field: {}",
        host_network.message
    );
    let run_as_root = outcomes.iter().find(|o| o.spec_id == "M4").unwrap();
    assert!(run_as_root.message.contains("runAsNonRoot"));
}

#[test]
fn kubefence_still_serves_the_legitimate_workload_while_under_attack() {
    // Interleave legitimate deployment requests and attacks through the same
    // proxy: the attacks are denied, the deployment completes untouched.
    let operator = Operator::Rabbitmq;
    let validator = PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .unwrap();
    let proxy = EnforcementProxy::new(ApiServer::new().with_admin(&operator.user()), validator);
    let driver = DeploymentDriver::new(operator);
    let legit_requests = driver.requests();
    let attacks = executor_for(operator).malicious_objects();

    let mut denied = 0;
    for (i, request) in legit_requests.iter().enumerate() {
        let response = proxy.handle(request);
        assert!(
            response.is_success(),
            "legitimate request denied: {}",
            response.message
        );
        if let Some((_, malicious)) = attacks.get(i) {
            let attack_request = k8s_apiserver::ApiRequest::create(&operator.user(), malicious);
            if proxy.handle(&attack_request).is_denied() {
                denied += 1;
            }
        }
    }
    assert!(denied > 0);
    assert_eq!(proxy.upstream().store().len(), legit_requests.len());
}
