//! The zero-copy persistence plane, pinned by pointer identity: one
//! `Arc<Value>` travels from the request body through admission, the object
//! store, the audit trail, exploit forensics and every read — and the
//! preserved deep-clone baseline demonstrably does not share it. Plus a
//! concurrent create/update/get/list stress test pinning revision
//! monotonicity under the `Arc`-handle store.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use k8s_apiserver::{ApiRequest, ApiServer, RequestHandler, ResponseBody, StoreBackend};
use k8s_model::{K8sObject, ResourceKind};
use kubefence::{EnforcementProxy, Validator};

/// A pod manifest with an explicit namespace, so admission has nothing to
/// default and the stored body can be the request's tree itself.
fn pod_yaml(name: &str, image: &str) -> String {
    format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  namespace: default\nspec:\n  containers:\n    - name: c\n      image: {image}\n"
    )
}

#[test]
fn one_tree_from_request_to_store_audit_and_reads() {
    let server = ApiServer::new();
    let pod = K8sObject::from_yaml(&pod_yaml("web", "nginx:1.25")).unwrap();
    let request = ApiRequest::create("admin", &pod);
    // Request construction itself shares the object's tree.
    let tree = Arc::clone(request.body.tree().expect("tree body"));
    assert!(Arc::ptr_eq(&tree, pod.shared_body()));

    assert!(server.handle(&request).is_success());

    // Stored body: the request's parsed tree, by pointer.
    let stored = server
        .store()
        .get(ResourceKind::Pod, "default", "web")
        .expect("stored");
    assert!(
        Arc::ptr_eq(stored.object.shared_body(), &tree),
        "store must hold the request's tree, not a copy"
    );

    // Audit event body: the same tree.
    let log = server.audit_log();
    let create_event = log
        .events()
        .iter()
        .find(|e| e.request_body.is_some())
        .expect("create was audited with a body");
    assert!(Arc::ptr_eq(
        create_event.request_body.as_ref().unwrap(),
        &tree
    ));

    // Get response: the same tree.
    let get = server.handle(&ApiRequest::get(
        "admin",
        ResourceKind::Pod,
        "default",
        "web",
    ));
    let Some(ResponseBody::Object(body)) = get.body else {
        panic!("get returns an object body");
    };
    assert!(Arc::ptr_eq(&body, &tree));

    // List response: every item is a stored tree handle.
    let list = server.handle(&ApiRequest::list("admin", ResourceKind::Pod, "default"));
    let Some(ResponseBody::List { items, .. }) = list.body else {
        panic!("list returns a collection body");
    };
    assert_eq!(items.len(), 1);
    assert!(Arc::ptr_eq(&items[0], &tree));
}

#[test]
fn exploit_records_share_the_admitted_spec() {
    let server = ApiServer::new();
    let evil = K8sObject::from_yaml(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: evil\n  namespace: default\nspec:\n  hostNetwork: true\n  containers:\n    - name: c\n      image: nginx\n",
    )
    .unwrap();
    let request = ApiRequest::create("admin", &evil);
    let tree = Arc::clone(request.body.tree().unwrap());
    assert!(server.handle(&request).is_success());
    let exploits = server.exploits();
    assert!(!exploits.is_empty(), "hostNetwork must trigger the oracle");
    for exploit in &exploits {
        assert!(
            Arc::ptr_eq(&exploit.spec, &tree),
            "exploit forensics must share the admitted spec"
        );
    }
}

#[test]
fn the_proxy_preserves_sharing_end_to_end() {
    // Through the full enforcement stack: proxy (tree validation, zero
    // materialization) -> server -> store -> read.
    let manifest = pod_yaml("web", "nginx:string");
    let validator =
        Validator::from_manifests("demo", &[kf_yaml::parse(&manifest).unwrap()]).unwrap();
    let proxy = EnforcementProxy::new(ApiServer::new(), validator);
    let pod = K8sObject::from_yaml(&pod_yaml("web", "nginx:1.25")).unwrap();
    let request = ApiRequest::create("admin", &pod);
    let tree = Arc::clone(request.body.tree().unwrap());
    assert!(proxy.handle(&request).is_success());
    let stored = proxy
        .upstream()
        .store()
        .get(ResourceKind::Pod, "default", "web")
        .unwrap();
    assert!(Arc::ptr_eq(stored.object.shared_body(), &tree));
}

#[test]
fn raw_bodies_parse_once_and_share_from_there() {
    // A wire-bytes request parses exactly once; the store and the audit
    // trail share that single materialization.
    let server = ApiServer::new();
    let pod = K8sObject::from_yaml(&pod_yaml("raw", "nginx:1.25")).unwrap();
    assert!(server
        .handle(&ApiRequest::create_raw("admin", &pod))
        .is_success());
    let stored = server
        .store()
        .get(ResourceKind::Pod, "default", "raw")
        .unwrap();
    let log = server.audit_log();
    let event = log
        .events()
        .iter()
        .find(|e| e.request_body.is_some())
        .unwrap();
    assert!(
        Arc::ptr_eq(
            stored.object.shared_body(),
            event.request_body.as_ref().unwrap()
        ),
        "store and audit must share one materialization of the raw body"
    );
}

#[test]
fn baseline_store_does_not_share() {
    // The measurement baseline preserves the old discipline: same
    // responses, detached trees at every boundary.
    let server = ApiServer::baseline();
    let pod = K8sObject::from_yaml(&pod_yaml("web", "nginx:1.25")).unwrap();
    let request = ApiRequest::create("admin", &pod);
    let tree = Arc::clone(request.body.tree().unwrap());
    assert!(server.handle(&request).is_success());
    let stored = server
        .store()
        .get(ResourceKind::Pod, "default", "web")
        .unwrap();
    assert!(!Arc::ptr_eq(stored.object.shared_body(), &tree));
    assert!(stored.object.body().loosely_equals(&tree));
    let get = server.handle(&ApiRequest::get(
        "admin",
        ResourceKind::Pod,
        "default",
        "web",
    ));
    let Some(ResponseBody::Object(body)) = get.body else {
        panic!("get returns an object body");
    };
    assert!(!Arc::ptr_eq(&body, stored.object.shared_body()));
}

#[test]
fn concurrent_mutations_keep_revisions_monotonic_under_readers() {
    // Writers hammer create/update on a shared set of objects while readers
    // get and list concurrently; every observation of one object's
    // resource_version must be non-decreasing, versions must be globally
    // unique, and the final revision must equal the number of writes.
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const ROUNDS: usize = 120;
    const OBJECTS: usize = 8;

    let server = ApiServer::new();
    let names: Vec<String> = (0..OBJECTS).map(|i| format!("obj-{i}")).collect();
    // Seed every object once so updates always find a target.
    for name in &names {
        let pod = K8sObject::from_yaml(&pod_yaml(name, "nginx:1.25")).unwrap();
        assert!(server
            .handle(&ApiRequest::create("admin", &pod))
            .is_success());
    }
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let server = &server;
            let names = &names;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let name = &names[(writer + round) % names.len()];
                    let pod =
                        K8sObject::from_yaml(&pod_yaml(name, &format!("nginx:1.{round}"))).unwrap();
                    // Alternate create (apply semantics) and update.
                    let request = if round % 2 == 0 {
                        ApiRequest::create("admin", &pod)
                    } else {
                        ApiRequest::update("admin", &pod)
                    };
                    assert!(server.handle(&request).is_success());
                }
            });
        }
        let reader_handles: Vec<_> = (0..READERS)
            .map(|reader| {
                let server = &server;
                let names = &names;
                let stop = &stop;
                scope.spawn(move || {
                    let mut last_seen = vec![0u64; names.len()];
                    let mut observations = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let index = (observations + reader) % names.len();
                        if let Some(stored) =
                            server
                                .store()
                                .get(ResourceKind::Pod, "default", &names[index])
                        {
                            assert!(
                                stored.resource_version >= last_seen[index],
                                "resource_version went backwards: {} < {}",
                                stored.resource_version,
                                last_seen[index]
                            );
                            last_seen[index] = stored.resource_version;
                        }
                        // Lists observe a consistent per-shard snapshot of
                        // handles; every object stays present throughout.
                        let listed = server.store().list(ResourceKind::Pod, "default");
                        assert_eq!(listed.len(), names.len());
                        observations += 1;
                    }
                    observations
                })
            })
            .collect();
        // Writers finish first; then release the readers.
        // (Scope joins writers implicitly when their closures return, but
        // readers poll `stop`, so flip it once the writer handles are done.)
        // The scope API joins everything at block end; to sequence, spawn a
        // watchdog that flips `stop` after the writers' work is observable.
        let server_ref = &server;
        let stop_ref = &stop;
        scope.spawn(move || {
            let expected = (OBJECTS + WRITERS * ROUNDS) as u64;
            // Bounded wait: if a writer dies, release the readers anyway so
            // the writer's panic (not a hang) fails the test.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
            while server_ref.store().revision() < expected && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            stop_ref.store(true, Ordering::Relaxed);
        });
        for handle in reader_handles {
            let observations = handle.join().expect("reader panicked");
            assert!(observations > 0, "readers must observe at least once");
        }
    });

    // Every write bumped the revision exactly once.
    assert_eq!(
        server.store().revision(),
        (OBJECTS + WRITERS * ROUNDS) as u64
    );
    // The store still holds exactly the seeded objects, each at a version
    // no writer exceeded.
    assert_eq!(server.store().len(), OBJECTS);
    for stored in server.store().list(ResourceKind::Pod, "default") {
        assert!(stored.resource_version <= (OBJECTS + WRITERS * ROUNDS) as u64);
    }
}
