//! End-to-end policy generation for all five operators: chart → values schema
//! → variants → rendered manifests → validator.

use k8s_model::ResourceKind;
use kf_workloads::Operator;
use kubefence::{GeneratorConfig, PolicyGenerator};
use std::collections::BTreeSet;

fn generator_for(operator: Operator) -> PolicyGenerator {
    PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
}

#[test]
fn policies_generate_for_every_operator() {
    for operator in Operator::ALL {
        let validator = generator_for(operator)
            .generate(&operator.chart())
            .unwrap_or_else(|e| panic!("{operator}: policy generation failed: {e}"));
        assert_eq!(validator.workload(), operator.chart().metadata().name);
        assert!(
            validator.kinds().len() >= 5,
            "{operator}: validator covers only {} kinds",
            validator.kinds().len()
        );
        let yaml = validator.to_yaml();
        assert!(yaml.contains("kind:"), "{operator}: empty validator YAML");
    }
}

#[test]
fn validator_kinds_cover_the_default_deployment() {
    for operator in Operator::ALL {
        let validator = generator_for(operator).generate(&operator.chart()).unwrap();
        let validator_kinds: BTreeSet<ResourceKind> = validator.kinds().into_iter().collect();
        let deployed_kinds: BTreeSet<ResourceKind> = operator
            .workload()
            .default_objects()
            .iter()
            .map(|o| o.kind())
            .collect();
        assert!(
            deployed_kinds.is_subset(&validator_kinds),
            "{operator}: deployed kinds {deployed_kinds:?} not covered by validator kinds {validator_kinds:?}"
        );
    }
}

#[test]
fn exploration_covers_multiple_variants_per_chart() {
    for operator in Operator::ALL {
        let generator = generator_for(operator);
        let variants = generator.variant_count(&operator.chart());
        assert!(
            variants >= 2,
            "{operator}: expected at least two values variants, got {variants}"
        );
        let manifests = generator.rendered_manifests(&operator.chart()).unwrap();
        assert!(
            manifests.len() > operator.workload().default_objects().len(),
            "{operator}: variant rendering should produce more manifests than a single deployment"
        );
    }
}

#[test]
fn validators_restrict_unused_endpoints_entirely() {
    // No operator chart creates ValidatingWebhookConfigurations except
    // SonarQube; the other validators must reject that kind outright.
    for operator in [
        Operator::Nginx,
        Operator::Mlflow,
        Operator::Postgresql,
        Operator::Rabbitmq,
    ] {
        let validator = generator_for(operator).generate(&operator.chart()).unwrap();
        assert!(
            !validator
                .kinds()
                .contains(&ResourceKind::ValidatingWebhookConfiguration),
            "{operator} should not allow admission webhooks"
        );
        assert!(!validator.kinds().contains(&ResourceKind::Pod));
    }
    let sonar = generator_for(Operator::Sonarqube)
        .generate(&Operator::Sonarqube.chart())
        .unwrap();
    assert!(sonar
        .kinds()
        .contains(&ResourceKind::ValidatingWebhookConfiguration));
    assert!(sonar.kinds().contains(&ResourceKind::Pod));
}

#[test]
fn security_locks_are_embedded_in_generated_policies() {
    let validator = generator_for(Operator::Nginx)
        .generate(&Operator::Nginx.chart())
        .unwrap();
    let yaml = validator.to_yaml();
    assert!(
        yaml.contains("runAsNonRoot: true"),
        "security lock missing from validator:\n{yaml}"
    );
    assert!(yaml.contains("allowPrivilegeEscalation: false"));
}
