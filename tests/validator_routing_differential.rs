//! Differential test for `ValidatorSet` multi-workload routing: the
//! kind-indexed dispatch introduced with the compiled admission plane must
//! admit and deny exactly like the original linear scan over tree-walking
//! validators (`ValidatorSet::validate_tree_scan`).

use k8s_model::{K8sObject, ResourceKind};
use kf_workloads::{Operator, ThroughputDriver};
use kubefence::{GeneratorConfig, PolicyGenerator, Validator, ValidatorSet};

fn validator_for(operator: Operator) -> Validator {
    PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .expect("built-in charts generate valid policies")
}

/// Two hand-built workloads whose validators overlap on `Deployment` but
/// allow different images: routing must try *both* before denying, exactly
/// like the linear scan.
fn overlapping_pair() -> ValidatorSet {
    let manifest = |image: &str| {
        kf_yaml_parse(&format!(
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: app
          image: {image}
"#
        ))
    };
    let a =
        Validator::from_manifests("workload-a", &[manifest("registry.one/app:string")]).unwrap();
    let b =
        Validator::from_manifests("workload-b", &[manifest("registry.two/app:string")]).unwrap();
    let mut set = ValidatorSet::new();
    set.push(a);
    set.push(b);
    set
}

fn kf_yaml_parse(text: &str) -> kf_yaml::Value {
    kf_yaml::parse(text).unwrap()
}

fn deployment(image: &str) -> K8sObject {
    K8sObject::from_yaml(&format!(
        r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 2
  template:
    spec:
      containers:
        - name: app
          image: {image}
"#
    ))
    .unwrap()
}

#[test]
fn overlapping_kinds_admit_through_either_member() {
    let set = overlapping_pair();
    // Both validators cover Deployment; the routing table must list both.
    assert_eq!(set.validators_for(ResourceKind::Deployment).len(), 2);
    // Admitted by the first member, by the second member, and by neither.
    let via_a = deployment("registry.one/app:1.0");
    let via_b = deployment("registry.two/app:2.3");
    let via_none = deployment("evil.example/pwn:latest");
    assert!(set.validate(&via_a).is_ok());
    assert!(set.validate(&via_b).is_ok());
    assert!(set.validate(&via_none).is_err());
    // And identically under the legacy linear scan.
    assert!(set.validate_tree_scan(&via_a).is_ok());
    assert!(set.validate_tree_scan(&via_b).is_ok());
    assert!(set.validate_tree_scan(&via_none).is_err());
    // A kind neither workload uses is denied by both dispatchers.
    let secret = K8sObject::minimal(ResourceKind::Secret, "s", "default");
    assert!(set.validate(&secret).is_err());
    assert!(set.validate_tree_scan(&secret).is_err());
}

#[test]
fn routed_and_scanned_dispatch_agree_across_all_operator_traffic() {
    // The five operators' validators overlap heavily (Deployment, Service,
    // ConfigMap, Secret, …) — exactly the regime where kind routing could
    // diverge from the linear scan if it mis-indexed.
    let mut set = ValidatorSet::new();
    for operator in Operator::ALL {
        set.push(validator_for(operator));
    }
    let mut checked = 0usize;
    let mut admitted = 0usize;
    for operator in Operator::ALL {
        // Mixed pool: the operator's legitimate requests plus the attack
        // catalog's malicious mutations of them.
        for request in ThroughputDriver::for_operator(operator).requests() {
            let Some(object) = request.object() else {
                continue;
            };
            let routed = set.validate(&object).is_ok();
            let scanned = set.validate_tree_scan(&object).is_ok();
            assert_eq!(
                routed,
                scanned,
                "dispatch divergence for {} object {} ({})",
                operator.name(),
                object.name(),
                object.kind()
            );
            checked += 1;
            if routed {
                admitted += 1;
            }
        }
    }
    // The corpus must exercise both verdicts for the parity claim to bite.
    assert!(checked > 100, "only {checked} objects checked");
    assert!(admitted > 0, "corpus never admitted");
    assert!(admitted < checked, "corpus never denied");
}

#[test]
fn routing_tables_rebuild_after_push() {
    let mut set = ValidatorSet::new();
    assert!(set.validators_for(ResourceKind::Deployment).is_empty());
    let deployment_object = deployment("registry.one/app:1.0");
    assert!(set.validate(&deployment_object).is_err());
    // Adding a covering validator after the table was first built must
    // invalidate and rebuild it.
    set.push(
        Validator::from_manifests(
            "late",
            &[kf_yaml_parse(
                r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: app
          image: registry.one/app:string
"#,
            )],
        )
        .unwrap(),
    );
    assert_eq!(set.validators_for(ResourceKind::Deployment).len(), 1);
    assert!(set.validate(&deployment_object).is_ok());
}
