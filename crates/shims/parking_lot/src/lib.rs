//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the poison-free `lock()`/`read()`/`write()` API of parking_lot on
//! top of the standard-library primitives. Poisoned locks are recovered
//! transparently (a panic while holding a lock does not poison subsequent
//! accesses), which matches parking_lot's behaviour of not having poisoning
//! at all.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` method returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` methods return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_recovers() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
