//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros from the local `serde_derive` shim, so code written
//! against real serde compiles unchanged in this network-less build
//! environment. The traits carry no methods because nothing in the workspace
//! performs serde-based (de)serialization — YAML handling is the hand-rolled
//! `kf-yaml` crate.

// Like real serde, the derive macros are re-exported under the same names as
// the traits; macros and traits live in different namespaces.
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
