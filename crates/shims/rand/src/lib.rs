//! Offline shim for the `rand` crate.
//!
//! Implements the API surface this workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over primitive ranges —
//! on top of a xorshift64* generator. Deterministic for a fixed seed, which
//! is all the latency model and traffic drivers require.

use std::ops::Range;

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(&mut |rng_bits_needed| {
            let _ = rng_bits_needed;
            self.next_u64()
        })
    }
}

/// Range types `gen_range` can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draw one uniform sample using the supplied 64-bit entropy source.
    fn sample_from(self, next: &mut dyn FnMut(u32) -> u64) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from(self, next: &mut dyn FnMut(u32) -> u64) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        // 53 uniform mantissa bits in [0, 1).
        let unit = (next(64) >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;

    fn sample_from(self, next: &mut dyn FnMut(u32) -> u64) -> u64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        let span = self.end - self.start;
        // Modulo bias is negligible for the spans used here (all far below
        // 2^32), and the shim favours simplicity over perfect uniformity.
        self.start + next(64) % span
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;

    fn sample_from(self, next: &mut dyn FnMut(u32) -> u64) -> usize {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        let span = (self.end - self.start) as u64;
        self.start + (next(64) % span) as usize
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;

    fn sample_from(self, next: &mut dyn FnMut(u32) -> u64) -> i64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        let span = (self.end - self.start) as u64;
        self.start.wrapping_add((next(64) % span) as i64)
    }
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point; SplitMix64 the seed once so
            // nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x5eed_5eed_5eed_5eed } else { z },
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_vary() {
        let mut rng = SmallRng::seed_from_u64(42);
        let samples: Vec<usize> = (0..64).map(|_| rng.gen_range(0usize..10)).collect();
        assert!(samples.iter().all(|&s| s < 10));
        assert!(samples.windows(2).any(|w| w[0] != w[1]));
    }
}
