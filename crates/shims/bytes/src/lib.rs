//! Offline shim for the `bytes` crate: a cheaply clonable, immutable byte
//! buffer behind an `Arc`, covering the small API surface this workspace
//! uses (`Bytes::new`, `Bytes::from`, `len`, slicing via `Deref`).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a static slice into a buffer.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<String> for Bytes {
    fn from(text: String) -> Self {
        Bytes {
            data: text.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(text: &str) -> Self {
        Bytes {
            data: text.as_bytes().into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_strings_and_reports_length() {
        let b = Bytes::from("hello".to_owned());
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert!(Bytes::new().is_empty());
    }
}
