//! Offline shim for serde's derive macros.
//!
//! The container building this workspace has no network access to a crates
//! registry, so the real `serde_derive` cannot be fetched. Nothing in this
//! repository serializes through serde at runtime (the YAML layer is the
//! hand-written `kf-yaml` crate); the `#[derive(Serialize, Deserialize)]`
//! attributes on model types only declare intent. The shim therefore accepts
//! the derive syntax — including `#[serde(...)]` helper attributes — and
//! expands to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepted and discarded.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepted and discarded.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
