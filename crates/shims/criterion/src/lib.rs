//! Offline shim for `criterion`.
//!
//! Implements the subset of the criterion API the benchmark targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — as a small wall-clock runner: each benchmark is warmed up
//! briefly, then timed over enough iterations to fill a fixed measurement
//! window, and the mean, min and p99 per-iteration times are printed. No
//! statistics files are written.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A benchmark id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Measured per-iteration samples, in nanoseconds.
    samples: Vec<u64>,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            warm_up,
            measurement,
        }
    }

    /// Run the routine repeatedly, recording one sample per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up window elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement {
            let started = Instant::now();
            black_box(routine());
            self.samples.push(started.elapsed().as_nanos() as u64);
        }
        if self.samples.is_empty() {
            // Extremely slow routine: record at least one sample.
            let started = Instant::now();
            black_box(routine());
            self.samples.push(started.elapsed().as_nanos() as u64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(name: &str, warm_up: Duration, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(warm_up, measurement);
    f(&mut bencher);
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
    let min = sorted[0] as f64;
    let p99 = sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)] as f64;
    println!(
        "bench: {name:<55} mean {:>12}  min {:>12}  p99 {:>12}  ({} iters)",
        format_ns(mean),
        format_ns(min),
        format_ns(p99),
        sorted.len()
    );
}

/// A named group of benchmarks sharing the parent runner's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Time a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let name = format!("{}/{id}", self.group);
        run_one(
            &name,
            self.criterion.warm_up,
            self.criterion.measurement,
            &mut f,
        );
    }

    /// Time a closure that receives a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{id}", self.group);
        run_one(
            &name,
            self.criterion.warm_up,
            self.criterion.measurement,
            &mut |b| f(b, input),
        );
    }

    /// Shorten the measurement window for slow benchmarks.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Override the measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.measurement = window;
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark runner.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(150),
            measurement: Duration::from_millis(750),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group: name.into(),
            criterion: self,
        }
    }

    /// Time a closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.warm_up, self.measurement, &mut f);
        self
    }

    /// Override the measurement window.
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.measurement = window;
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

/// Define a benchmark group function, as `criterion::criterion_group!` does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
