//! Dotted-path addressing into documents (`spec.containers[0].image`).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Error;

/// One segment of a [`Path`]: a mapping key or a sequence index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PathSegment {
    /// A mapping key, e.g. `spec`.
    Key(String),
    /// A sequence index, e.g. `[0]`.
    Index(usize),
}

impl fmt::Display for PathSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSegment::Key(k) => write!(f, "{k}"),
            PathSegment::Index(i) => write!(f, "[{i}]"),
        }
    }
}

/// A path into a document tree, written in dotted notation with optional
/// bracketed sequence indices: `spec.containers[0].securityContext.privileged`.
///
/// Paths are how the KubeFence catalog (Table II of the paper) names the
/// targeted API fields, how validators report violations, and how the
/// attack-surface analysis counts fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Path {
    segments: Vec<PathSegment>,
}

impl Path {
    /// The empty path, addressing the document root.
    pub fn root() -> Self {
        Path {
            segments: Vec::new(),
        }
    }

    /// Build a path from pre-constructed segments.
    pub fn from_segments(segments: Vec<PathSegment>) -> Self {
        Path { segments }
    }

    /// Parse dotted notation. Keys may contain any character except `.`,
    /// `[` and `]`; indices are decimal integers in brackets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPath`] for empty segments, unterminated
    /// brackets or non-numeric indices.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let mut segments = Vec::new();
        if text.trim().is_empty() {
            return Ok(Path::root());
        }
        for part in text.split('.') {
            if part.is_empty() {
                return Err(Error::InvalidPath {
                    path: text.to_owned(),
                    message: "empty path segment".into(),
                });
            }
            let mut rest = part;
            // leading key portion (may be empty when a segment is just "[0]")
            let key_end = rest.find('[').unwrap_or(rest.len());
            let key = &rest[..key_end];
            if !key.is_empty() {
                segments.push(PathSegment::Key(key.to_owned()));
            }
            rest = &rest[key_end..];
            while !rest.is_empty() {
                if !rest.starts_with('[') {
                    return Err(Error::InvalidPath {
                        path: text.to_owned(),
                        message: format!("unexpected text `{rest}` after index"),
                    });
                }
                let close = rest.find(']').ok_or_else(|| Error::InvalidPath {
                    path: text.to_owned(),
                    message: "unterminated `[`".into(),
                })?;
                let idx_text = &rest[1..close];
                let idx: usize = idx_text.parse().map_err(|_| Error::InvalidPath {
                    path: text.to_owned(),
                    message: format!("invalid sequence index `{idx_text}`"),
                })?;
                segments.push(PathSegment::Index(idx));
                rest = &rest[close + 1..];
            }
        }
        Ok(Path { segments })
    }

    /// The segments of the path, in order.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Whether this is the root (empty) path.
    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the path has no segments (same as [`Path::is_root`]).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Return a new path with `key` appended.
    pub fn child_key(&self, key: &str) -> Path {
        let mut segments = self.segments.clone();
        segments.push(PathSegment::Key(key.to_owned()));
        Path { segments }
    }

    /// Return a new path with index `i` appended.
    pub fn child_index(&self, i: usize) -> Path {
        let mut segments = self.segments.clone();
        segments.push(PathSegment::Index(i));
        Path { segments }
    }

    /// The parent path (`None` for the root).
    pub fn parent(&self) -> Option<Path> {
        if self.segments.is_empty() {
            None
        } else {
            Some(Path {
                segments: self.segments[..self.segments.len() - 1].to_vec(),
            })
        }
    }

    /// The last segment (`None` for the root).
    pub fn last(&self) -> Option<&PathSegment> {
        self.segments.last()
    }

    /// Whether `self` starts with all segments of `prefix`.
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.segments.len() >= prefix.segments.len()
            && self.segments[..prefix.segments.len()] == prefix.segments[..]
    }

    /// Render the path with sequence indices collapsed to `[]`, the notation
    /// used for field identity in the attack-surface accounting.
    pub fn to_field_notation(&self) -> String {
        let mut out = String::new();
        for seg in &self.segments {
            match seg {
                PathSegment::Key(k) => {
                    if !out.is_empty() {
                        out.push('.');
                    }
                    out.push_str(k);
                }
                PathSegment::Index(_) => out.push_str("[]"),
            }
        }
        out
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            match seg {
                PathSegment::Key(k) => {
                    if !first {
                        write!(f, ".")?;
                    }
                    write!(f, "{k}")?;
                }
                PathSegment::Index(i) => write!(f, "[{i}]")?,
            }
            first = false;
        }
        Ok(())
    }
}

impl std::str::FromStr for Path {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_dotted_path() {
        let p = Path::parse("spec.replicas").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.to_string(), "spec.replicas");
    }

    #[test]
    fn parse_path_with_indices() {
        let p = Path::parse("spec.containers[0].image").unwrap();
        assert_eq!(
            p.segments(),
            &[
                PathSegment::Key("spec".into()),
                PathSegment::Key("containers".into()),
                PathSegment::Index(0),
                PathSegment::Key("image".into()),
            ]
        );
        assert_eq!(p.to_string(), "spec.containers[0].image");
    }

    #[test]
    fn parse_rejects_bad_indices() {
        assert!(Path::parse("a[b]").is_err());
        assert!(Path::parse("a[0").is_err());
        assert!(Path::parse("a..b").is_err());
    }

    #[test]
    fn empty_string_is_root() {
        let p = Path::parse("").unwrap();
        assert!(p.is_root());
    }

    #[test]
    fn parent_and_child_navigation() {
        let p = Path::parse("spec.containers[0]").unwrap();
        let parent = p.parent().unwrap();
        assert_eq!(parent.to_string(), "spec.containers");
        assert_eq!(parent.child_index(0), p);
        assert_eq!(
            parent.child_key("x").to_string(),
            "spec.containers.x".to_string()
        );
        assert!(Path::root().parent().is_none());
    }

    #[test]
    fn starts_with_checks_prefixes() {
        let p = Path::parse("spec.containers[0].image").unwrap();
        assert!(p.starts_with(&Path::parse("spec.containers").unwrap()));
        assert!(!p.starts_with(&Path::parse("spec.template").unwrap()));
    }

    #[test]
    fn field_notation_collapses_indices() {
        let p = Path::parse("spec.containers[3].ports[1].containerPort").unwrap();
        assert_eq!(
            p.to_field_notation(),
            "spec.containers[].ports[].containerPort"
        );
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for text in ["a.b.c", "a[0].b", "spec.containers[2].env[1].name"] {
            let p = Path::parse(text).unwrap();
            assert_eq!(Path::parse(&p.to_string()).unwrap(), p);
        }
    }
}
