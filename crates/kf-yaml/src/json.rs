//! Pull-based JSON event tokenizer and JSON emitter.
//!
//! This is the JSON twin of [`crate::events`]: it lexes a JSON document into
//! the exact same [`Event`] stream (`MappingStart` / `Key` / `SequenceStart`
//! / `Scalar` / `End` / `DocumentEnd`) so every consumer of the YAML
//! tokenizer — in particular the KubeFence streaming admission plane —
//! validates JSON bodies with no format-specific matcher code. As with the
//! YAML front end:
//!
//! * every event carries its source position (1-based line, 0-based byte
//!   offset into the buffer);
//! * string scalars and keys borrow from the input wherever no unescaping is
//!   required;
//! * duplicate object keys are rejected (a JSON parser that keeps "the last
//!   one wins" is a smuggling vector for an admission filter);
//! * no document tree is ever built — [`parse_json`] is a thin
//!   `TreeBuilder` (the shared tree-construction layer) over this
//!   tokenizer, mirroring how
//!   [`crate::parse`] sits on the YAML tokenizer.
//!
//! A JSON stream is always exactly one document: [`Event::DocumentEnd`] is
//! emitted after the root value, and any trailing non-whitespace is a parse
//! error (the analogue of YAML's multi-document rejection).

use std::borrow::Cow;

use crate::events::{Event, Pos, ScalarToken};
use crate::value::Value;
use crate::Error;

/// An open JSON container on the tokenizer stack.
#[derive(Debug, Clone, Copy)]
enum JFrame {
    /// An object; `keys_start` marks the start of its slice of the shared
    /// duplicate-detection key stack.
    Obj { keys_start: usize },
    /// An array.
    Arr,
}

/// What the state machine expects at the cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JState {
    /// A value (the document root, an array element, or an object value).
    Value,
    /// The first element of an array, or `]`.
    FirstValueOrClose,
    /// The first key of an object, or `}`.
    KeyOrClose,
    /// A key (after a `,` inside an object).
    Key,
    /// `,` or the closing bracket of the innermost container; at the root,
    /// the document is complete.
    AfterValue,
    /// The document ended; only trailing whitespace is allowed.
    Done,
}

/// The pull-based JSON tokenizer. See the module docs for the event model.
#[derive(Debug)]
pub struct JsonTokenizer<'a> {
    text: &'a str,
    i: usize,
    line: usize,
    stack: Vec<JFrame>,
    /// Shared key stack for duplicate detection; each open object owns the
    /// suffix starting at its `keys_start`.
    keys: Vec<Cow<'a, str>>,
    state: JState,
}

impl<'a> JsonTokenizer<'a> {
    /// A tokenizer over `text`. Construction never fails; syntax errors
    /// surface as events are pulled.
    pub fn new(text: &'a str) -> Self {
        JsonTokenizer {
            text,
            i: 0,
            line: 1,
            stack: Vec::new(),
            keys: Vec::new(),
            state: JState::Value,
        }
    }

    /// Number of documents in the stream: always 1 (a JSON body is a single
    /// value). Mirrors [`crate::events::Tokenizer::document_count`].
    pub fn document_count(&self) -> usize {
        1
    }

    /// Pull the next event, or `None` at the end of the stream.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when the input is not a single well-formed
    /// JSON document. After an error the tokenizer state is unspecified and
    /// no further events should be pulled.
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>, Error> {
        loop {
            self.skip_ws();
            match self.state {
                JState::Done => {
                    return if self.i >= self.text.len() {
                        Ok(None)
                    } else {
                        Err(self.err("trailing characters after JSON document"))
                    };
                }
                JState::Value => return self.scan_value().map(Some),
                JState::FirstValueOrClose => {
                    if self.peek() == Some(b']') {
                        self.i += 1;
                        return Ok(Some(self.close_frame()));
                    }
                    self.state = JState::Value;
                }
                JState::KeyOrClose => {
                    if self.peek() == Some(b'}') {
                        self.i += 1;
                        return Ok(Some(self.close_frame()));
                    }
                    self.state = JState::Key;
                }
                JState::Key => {
                    return match self.peek() {
                        Some(b'"') => self.scan_key().map(Some),
                        Some(_) => Err(self.err("expected a string object key")),
                        None => Err(self.err("unexpected end of input inside object")),
                    };
                }
                JState::AfterValue => {
                    let Some(frame) = self.stack.last().copied() else {
                        self.state = JState::Done;
                        return Ok(Some(Event::DocumentEnd));
                    };
                    match (self.peek(), frame) {
                        (Some(b','), JFrame::Obj { .. }) => {
                            self.i += 1;
                            self.state = JState::Key;
                        }
                        (Some(b','), JFrame::Arr) => {
                            self.i += 1;
                            self.state = JState::Value;
                        }
                        (Some(b'}'), JFrame::Obj { .. }) => {
                            self.i += 1;
                            return Ok(Some(self.close_frame()));
                        }
                        (Some(b']'), JFrame::Arr) => {
                            self.i += 1;
                            return Ok(Some(self.close_frame()));
                        }
                        (Some(_), JFrame::Obj { .. }) => {
                            return Err(self.err("expected `,` or `}` in object"))
                        }
                        (Some(_), JFrame::Arr) => {
                            return Err(self.err("expected `,` or `]` in array"))
                        }
                        (None, _) => return Err(self.err("unexpected end of input")),
                    }
                }
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.text.as_bytes().get(self.i).copied()
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            offset: self.i,
        }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::parse(self.line, message)
    }

    fn skip_ws(&mut self) {
        let bytes = self.text.as_bytes();
        while let Some(&b) = bytes.get(self.i) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                _ => break,
            }
        }
    }

    fn close_frame(&mut self) -> Event<'a> {
        if let Some(JFrame::Obj { keys_start }) = self.stack.pop() {
            self.keys.truncate(keys_start);
        }
        self.state = JState::AfterValue;
        Event::End
    }

    /// Scan the value at the cursor (the cursor sits on its first byte).
    fn scan_value(&mut self) -> Result<Event<'a>, Error> {
        let pos = self.pos();
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                self.stack.push(JFrame::Obj {
                    keys_start: self.keys.len(),
                });
                self.state = JState::KeyOrClose;
                Ok(Event::MappingStart { pos })
            }
            Some(b'[') => {
                self.i += 1;
                self.stack.push(JFrame::Arr);
                self.state = JState::FirstValueOrClose;
                Ok(Event::SequenceStart { pos })
            }
            Some(b'"') => {
                let value = self.scan_string()?;
                self.state = JState::AfterValue;
                Ok(Event::Scalar {
                    value: ScalarToken::Str(value),
                    pos,
                })
            }
            Some(b't') | Some(b'f') | Some(b'n') => {
                let value = self.scan_keyword()?;
                self.state = JState::AfterValue;
                Ok(Event::Scalar { value, pos })
            }
            Some(b'-') | Some(b'0'..=b'9') => {
                let value = self.scan_number()?;
                self.state = JState::AfterValue;
                Ok(Event::Scalar { value, pos })
            }
            Some(other) => Err(self.err(format!(
                "unexpected character `{}` where a JSON value was expected",
                other as char
            ))),
            None => Err(self.err("expected a JSON value")),
        }
    }

    /// Scan `"key" :` at the cursor, checking for duplicates.
    fn scan_key(&mut self) -> Result<Event<'a>, Error> {
        let pos = self.pos();
        let name = self.scan_string()?;
        self.skip_ws();
        if self.peek() != Some(b':') {
            return Err(self.err("expected `:` after object key"));
        }
        self.i += 1;
        let keys_start = match self.stack.last() {
            Some(JFrame::Obj { keys_start }) => *keys_start,
            _ => unreachable!("keys are only scanned inside objects"),
        };
        if self.keys[keys_start..].contains(&name) {
            return Err(self.err(format!("duplicate object key `{name}`")));
        }
        self.keys.push(name.clone());
        self.state = JState::Value;
        Ok(Event::Key { name, pos })
    }

    /// Scan a quoted string, borrowing when no escape processing is needed.
    /// The cursor sits on the opening quote.
    fn scan_string(&mut self) -> Result<Cow<'a, str>, Error> {
        let bytes = self.text.as_bytes();
        debug_assert_eq!(bytes[self.i], b'"');
        self.i += 1;
        let start = self.i;
        // Fast path: find the closing quote with no escapes in between.
        while self.i < bytes.len() {
            match bytes[self.i] {
                b'"' => {
                    let raw = &self.text[start..self.i];
                    self.i += 1;
                    return Ok(Cow::Borrowed(raw));
                }
                b'\\' => break,
                b if b < 0x20 => return Err(self.err("unescaped control character in string")),
                _ => self.i += 1,
            }
        }
        // Slow path: unescape into an owned buffer.
        let mut out = String::from(&self.text[start..self.i]);
        while self.i < bytes.len() {
            match bytes[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(Cow::Owned(out));
                }
                b'\\' => {
                    self.i += 1;
                    let escape = bytes.get(self.i).copied();
                    self.i += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => out.push(self.scan_unicode_escape()?),
                        Some(other) => {
                            return Err(
                                self.err(format!("invalid escape `\\{}` in string", other as char))
                            )
                        }
                        None => return Err(self.err("dangling escape in string")),
                    }
                }
                b if b < 0x20 => return Err(self.err("unescaped control character in string")),
                _ => {
                    let c = self.text[self.i..].chars().next().expect("in bounds");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
        Err(self.err("unterminated string"))
    }

    /// Scan the `XXXX` of a `\u` escape (the cursor sits on the first hex
    /// digit), combining UTF-16 surrogate pairs.
    fn scan_unicode_escape(&mut self) -> Result<char, Error> {
        let unit = self.scan_hex4()?;
        if (0xD800..0xDC00).contains(&unit) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            let bytes = self.text.as_bytes();
            if bytes.get(self.i) != Some(&b'\\') || bytes.get(self.i + 1) != Some(&b'u') {
                return Err(self.err("unpaired UTF-16 surrogate in string"));
            }
            self.i += 2;
            let low = self.scan_hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.err("invalid UTF-16 surrogate pair in string"));
            }
            let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(combined).ok_or_else(|| self.err("invalid unicode escape"));
        }
        char::from_u32(unit).ok_or_else(|| self.err("unpaired UTF-16 surrogate in string"))
    }

    fn scan_hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .text
            .get(self.i..self.i + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        // `from_str_radix` alone would accept a leading `+`; require four
        // hex digits exactly, as the JSON grammar does.
        if !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.err("invalid unicode escape"));
        }
        let unit =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.i += 4;
        Ok(unit)
    }

    /// Scan `true` / `false` / `null`.
    fn scan_keyword(&mut self) -> Result<ScalarToken<'a>, Error> {
        for (keyword, token) in [
            ("true", ScalarToken::Bool(true)),
            ("false", ScalarToken::Bool(false)),
            ("null", ScalarToken::Null),
        ] {
            if self.text[self.i..].starts_with(keyword) {
                self.i += keyword.len();
                return Ok(token);
            }
        }
        Err(self.err("invalid JSON literal (expected true, false or null)"))
    }

    /// Scan a number token: integers lex to [`ScalarToken::Int`], anything
    /// with a fraction or exponent (or outside `i64` range) to
    /// [`ScalarToken::Float`] — the same typing the YAML front end produces
    /// for the equivalent scalars.
    fn scan_number(&mut self) -> Result<ScalarToken<'a>, Error> {
        let bytes = self.text.as_bytes();
        let start = self.i;
        while self.i < bytes.len()
            && matches!(
                bytes[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let raw = &self.text[start..self.i];
        // Check the token against the RFC 8259 number grammar before any
        // value conversion: Rust's `FromStr` is more lenient (leading
        // zeros, `1.`, a leading `+`), and accepting what other parsers
        // reject — or read differently, as octal-interpreting parsers read
        // `010` — would open a validator/consumer differential, the same
        // smuggling gap the duplicate-key rejection closes.
        if !json_number_grammar(raw) {
            return Err(self.err(format!("invalid number literal `{raw}`")));
        }
        if raw.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
            return raw
                .parse::<f64>()
                .map(ScalarToken::Float)
                .map_err(|_| self.err(format!("invalid number literal `{raw}`")));
        }
        if let Ok(i) = raw.parse::<i64>() {
            return Ok(ScalarToken::Int(i));
        }
        // Integer literal outside i64 range: widen, as YAML would via the
        // float fallback.
        raw.parse::<f64>()
            .map(ScalarToken::Float)
            .map_err(|_| self.err(format!("invalid number literal `{raw}`")))
    }
}

/// Whether `raw` matches the RFC 8259 number grammar:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
fn json_number_grammar(raw: &str) -> bool {
    let bytes = raw.as_bytes();
    let mut i = 0;
    if bytes.first() == Some(&b'-') {
        i += 1;
    }
    // Integer part: `0` alone, or a non-zero digit followed by digits.
    let int_start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    match i - int_start {
        0 => return false,
        1 => {}
        _ if bytes[int_start] == b'0' => return false, // leading zero
        _ => {}
    }
    // Optional fraction: `.` followed by at least one digit.
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        let frac_start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i == frac_start {
            return false;
        }
    }
    // Optional exponent: `e`/`E`, optional sign, at least one digit.
    if i < bytes.len() && matches!(bytes[i], b'e' | b'E') {
        i += 1;
        if i < bytes.len() && matches!(bytes[i], b'+' | b'-') {
            i += 1;
        }
        let exp_start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i == exp_start {
            return false;
        }
    }
    i == bytes.len()
}

/// Parse a single JSON document into a [`Value`] tree.
///
/// This is the JSON analogue of [`crate::parse`]: a thin tree builder over
/// [`JsonTokenizer`], so the tree and streaming front ends can never
/// disagree on the accepted syntax or on scalar typing.
///
/// # Errors
///
/// Returns [`Error::Parse`] when the text is not a single well-formed JSON
/// document (including trailing non-whitespace after the root value).
pub fn parse_json(text: &str) -> Result<Value, Error> {
    let mut tokenizer = JsonTokenizer::new(text);
    let mut builder = crate::parser::TreeBuilder::default();
    let mut document = None;
    while let Some(event) = tokenizer.next_event()? {
        if let Some(root) = builder.feed(event) {
            document = Some(root);
        }
    }
    document.ok_or_else(|| Error::parse(1, "expected a JSON value"))
}

/// Serialize a [`Value`] to compact JSON text.
///
/// The scalar formatting round-trips through [`JsonTokenizer`] to the same
/// typed values the YAML emitter/parser pair produces: whole floats keep a
/// decimal point, strings are escaped per RFC 8259. Non-finite floats (which
/// JSON cannot represent) are emitted as `null`.
pub fn to_json(value: &Value) -> String {
    let mut out = String::new();
    emit_json(value, &mut out);
    out
}

/// Append `value`'s JSON rendering to `out` — the streaming twin of
/// [`to_json`], so serializers can build collection envelopes around
/// borrowed subtrees without concatenating intermediate strings.
pub fn write_json(value: &Value, out: &mut String) {
    emit_json(value, out);
}

fn emit_json(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                out.push_str("null");
            } else if x.fract() == 0.0 {
                // Keep a decimal point so the value round-trips as a float.
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Value::Str(s) => emit_json_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_json(item, out);
            }
            out.push(']');
        }
        Value::Map(map) => {
            out.push('{');
            for (i, (key, child)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_json_string(key, out);
                out.push(':');
                emit_json(child, out);
            }
            out.push('}');
        }
    }
}

fn emit_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(text: &str) -> Vec<Event<'_>> {
        let mut tok = JsonTokenizer::new(text);
        let mut out = Vec::new();
        while let Some(e) = tok.next_event().unwrap() {
            out.push(e);
        }
        out
    }

    fn first_error(text: &str) -> Error {
        let mut tok = JsonTokenizer::new(text);
        loop {
            match tok.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected a parse error for `{text}`"),
                Err(e) => return e,
            }
        }
    }

    #[test]
    fn objects_emit_the_yaml_event_shape() {
        let evs = events("{\"name\": \"web\", \"replicas\": 3}");
        assert!(matches!(evs[0], Event::MappingStart { .. }));
        let Event::Key { name, pos } = &evs[1] else {
            panic!("expected key, got {:?}", evs[1]);
        };
        assert_eq!(name.as_ref(), "name");
        assert_eq!(pos.offset, 1);
        assert!(matches!(&evs[2], Event::Scalar { value: ScalarToken::Str(s), .. } if s == "web"));
        assert!(matches!(
            &evs[4],
            Event::Scalar {
                value: ScalarToken::Int(3),
                ..
            }
        ));
        assert!(matches!(evs[5], Event::End));
        assert!(matches!(evs[6], Event::DocumentEnd));
        assert_eq!(evs.len(), 7);
    }

    #[test]
    fn nested_containers_balance_and_carry_positions() {
        let text = "{\n  \"spec\": {\n    \"ports\": [80, 443]\n  }\n}";
        let evs = events(text);
        let starts = evs
            .iter()
            .filter(|e| matches!(e, Event::MappingStart { .. } | Event::SequenceStart { .. }))
            .count();
        let ends = evs.iter().filter(|e| matches!(e, Event::End)).count();
        assert_eq!(starts, ends);
        for e in &evs {
            if let Event::Key { name, pos } = e {
                assert!(
                    text[pos.offset..].starts_with(&format!("\"{name}\"")),
                    "key position must point at the quoted key"
                );
                assert!(pos.line >= 1);
            }
        }
        // `ports` sits on line 3.
        let Event::Key { pos, .. } = &evs[3] else {
            panic!("expected the ports key");
        };
        assert_eq!(pos.line, 3);
    }

    #[test]
    fn strings_without_escapes_borrow_from_the_input() {
        let evs = events("{\"image\": \"nginx\"}");
        let Event::Scalar {
            value: ScalarToken::Str(s),
            ..
        } = &evs[2]
        else {
            panic!("expected string scalar");
        };
        assert!(matches!(s, Cow::Borrowed(_)), "plain strings must borrow");
    }

    #[test]
    fn escapes_unescape_including_surrogate_pairs() {
        let evs = events(r#"{"v": "a\"b\\c\ndé😀"}"#);
        let Event::Scalar {
            value: ScalarToken::Str(s),
            ..
        } = &evs[2]
        else {
            panic!("expected string scalar");
        };
        assert_eq!(s.as_ref(), "a\"b\\c\nd\u{e9}\u{1F600}");
    }

    #[test]
    fn numbers_type_like_the_yaml_front_end() {
        let evs = events("[3, -7, 2.5, 2.0, 1e3]");
        let scalars: Vec<&ScalarToken<'_>> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Scalar { value, .. } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(scalars[0], &ScalarToken::Int(3));
        assert_eq!(scalars[1], &ScalarToken::Int(-7));
        assert_eq!(scalars[2], &ScalarToken::Float(2.5));
        assert_eq!(scalars[3], &ScalarToken::Float(2.0));
        assert_eq!(scalars[4], &ScalarToken::Float(1000.0));
    }

    #[test]
    fn keywords_and_empty_containers() {
        let evs = events("{\"a\": true, \"b\": false, \"c\": null, \"d\": {}, \"e\": []}");
        assert!(evs.iter().any(|e| matches!(
            e,
            Event::Scalar {
                value: ScalarToken::Bool(true),
                ..
            }
        )));
        assert!(evs.iter().any(|e| matches!(
            e,
            Event::Scalar {
                value: ScalarToken::Null,
                ..
            }
        )));
        assert!(matches!(evs.last(), Some(Event::DocumentEnd)));
    }

    #[test]
    fn duplicate_object_keys_are_rejected_with_a_position() {
        let err = first_error("{\"a\": 1,\n \"a\": 2}");
        assert!(matches!(err, Error::Parse { line: 2, .. }));
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        for (text, line) in [
            ("{\"a\": 1,\n  broken}", 2),
            ("{\"a\"\n: 1", 2), // unterminated object
            ("[1,\n 2", 2),
            ("{\"a\": \"unterminated", 1),
            ("", 1),
            ("{} trailing", 1),
            ("{\"a\": 1} \n{\"b\": 2}", 2),
        ] {
            let err = first_error(text);
            let Error::Parse { line: at, .. } = &err else {
                panic!("expected a parse error for `{text}`");
            };
            assert_eq!(*at, line, "wrong line for `{text}`: {err}");
        }
    }

    #[test]
    fn non_grammar_numbers_are_rejected() {
        // Rust's FromStr would accept all of these; the JSON grammar does
        // not, and neither may an admission filter (parser differentials).
        for text in [
            "[010]",
            "[-010]",
            "[1.]",
            "[.5]",
            "[+1]",
            "[1.e5]",
            "[1e]",
            "[1e+]",
            "[--1]",
            "[\"a\", \u{1}]",
        ] {
            assert!(
                matches!(first_error(text), Error::Parse { .. }),
                "`{text}` must be rejected"
            );
        }
        // The strict grammar still admits every shape the emitter produces.
        for text in [
            "[0]",
            "[-0]",
            "[10]",
            "[0.5]",
            "[2.0]",
            "[-1.25e-3]",
            "[1E+2]",
        ] {
            let mut tok = JsonTokenizer::new(text);
            while tok.next_event().expect("valid number").is_some() {}
        }
    }

    #[test]
    fn malformed_unicode_escapes_are_rejected() {
        for text in [
            r#"["\u+04A1"]"#,
            r#"["\u00G1"]"#,
            r#"["\u00"]"#,
            r#"["\ud800x"]"#,
            r#"["\ud800\u0041"]"#,
        ] {
            assert!(
                matches!(first_error(text), Error::Parse { .. }),
                "`{text}` must be rejected"
            );
        }
    }

    #[test]
    fn trailing_commas_are_rejected() {
        assert!(matches!(first_error("[1, 2,]"), Error::Parse { .. }));
        assert!(matches!(first_error("{\"a\": 1,}"), Error::Parse { .. }));
    }

    #[test]
    fn parse_json_builds_the_same_tree_as_the_yaml_twin() {
        let yaml = "spec:\n  replicas: 3\n  labels:\n    app: web\n  ports:\n    - 80\n    - 443\n";
        let tree = crate::parse(yaml).unwrap();
        let json = to_json(&tree);
        let reparsed = parse_json(&json).unwrap();
        assert_eq!(tree, reparsed, "JSON round-trip must preserve the tree");
    }

    #[test]
    fn to_json_escapes_and_keeps_float_typing() {
        let doc = crate::parse("a: \"x\\\"y\"\nb: 2.0\nc: null\n").unwrap();
        let json = to_json(&doc);
        assert_eq!(json, r#"{"a":"x\"y","b":2.0,"c":null}"#);
        assert_eq!(parse_json(&json).unwrap(), doc);
    }

    #[test]
    fn document_end_precedes_trailing_garbage_detection() {
        // The root value is complete before the trailing garbage: the
        // streaming admission plane sees `DocumentEnd`, then the drain
        // surfaces the error — mirroring the YAML multi-document drain.
        let mut tok = JsonTokenizer::new("{\"kind\": \"Pod\"} x");
        let mut saw_doc_end = false;
        let saw_error = loop {
            match tok.next_event() {
                Ok(Some(Event::DocumentEnd)) => saw_doc_end = true,
                Ok(Some(_)) => continue,
                Ok(None) => break false,
                Err(_) => break true,
            }
        };
        assert!(saw_doc_end);
        assert!(saw_error);
    }
}
