//! The document tree: [`Value`] and the order-preserving [`Mapping`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::path::{Path, PathSegment};
use crate::Error;

/// An order-preserving string-keyed mapping.
///
/// Kubernetes manifests are sensitive to field ordering only for human
/// readability, but preserving insertion order keeps rendered manifests and
/// generated validators deterministic and diff-friendly, which the policy
/// generation pipeline relies on.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Mapping {
    entries: Vec<(String, Value)>,
}

impl Mapping {
    /// Create an empty mapping.
    pub fn new() -> Self {
        Mapping {
            entries: Vec::new(),
        }
    }

    /// Number of entries in the mapping.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mapping has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a value by key, mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the mapping contains `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Insert a key/value pair, replacing (in place) any existing entry with
    /// the same key. Returns the previous value if one existed.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in self.entries.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Remove an entry by key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate mutably over `(key, value)` pairs in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate over the keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterate over the values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Mapping {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Mapping::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Extend<(String, Value)> for Mapping {
    fn extend<T: IntoIterator<Item = (String, Value)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl IntoIterator for Mapping {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A node of the document tree.
///
/// `Value` plays the role that `serde_yaml::Value` would otherwise play, but
/// with an order-preserving mapping and the exact scalar taxonomy the
/// KubeFence policy machinery needs (null / bool / integer / float / string).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// The YAML `null` / `~` / empty scalar.
    Null,
    /// A boolean scalar.
    Bool(bool),
    /// A signed integer scalar.
    Int(i64),
    /// A floating point scalar.
    Float(f64),
    /// A string scalar.
    Str(String),
    /// A sequence of values.
    Seq(Vec<Value>),
    /// An order-preserving mapping.
    Map(Mapping),
}

impl Default for Value {
    #[allow(clippy::derivable_impls)]
    fn default() -> Self {
        Value::Null
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Seq(_) | Value::Map(_) => write!(f, "{}", crate::to_yaml(self).trim_end()),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Seq(v)
    }
}
impl From<Mapping> for Value {
    fn from(m: Mapping) -> Self {
        Value::Map(m)
    }
}

impl Value {
    /// An empty mapping value.
    pub fn empty_map() -> Self {
        Value::Map(Mapping::new())
    }

    /// An empty sequence value.
    pub fn empty_seq() -> Self {
        Value::Seq(Vec::new())
    }

    /// Short lowercase name of the node type (`"map"`, `"seq"`, `"string"`,
    /// `"int"`, `"float"`, `"bool"`, `"null"`); used in error messages and in
    /// validator type placeholders.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "seq",
            Value::Map(_) => "map",
        }
    }

    /// Whether the node is a scalar (not a mapping or sequence).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Value::Seq(_) | Value::Map(_))
    }

    /// Whether the node is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View as a bool, if the node is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as an integer, if the node is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// View as a float. Integers are widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// View as a string slice, if the node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// View as a sequence slice, if the node is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s.as_slice()),
            _ => None,
        }
    }

    /// View as a mutable sequence, if the node is a sequence.
    pub fn as_seq_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// View as a mapping, if the node is one.
    pub fn as_map(&self) -> Option<&Mapping> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View as a mutable mapping, if the node is one.
    pub fn as_map_mut(&mut self) -> Option<&mut Mapping> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Render the scalar as the string used in rendered manifests. Mappings
    /// and sequences render through the YAML emitter.
    pub fn scalar_to_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        }
    }

    /// Direct child lookup by mapping key (`None` for non-mappings).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Direct mutable child lookup by mapping key (`None` for non-mappings).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_map_mut().and_then(|m| m.get_mut(key))
    }

    /// Resolve a [`Path`] against this document.
    pub fn get_path(&self, path: &Path) -> Option<&Value> {
        let mut cur = self;
        for seg in path.segments() {
            match seg {
                PathSegment::Key(k) => cur = cur.get(k)?,
                PathSegment::Index(i) => cur = cur.as_seq()?.get(*i)?,
            }
        }
        Some(cur)
    }

    /// Resolve a [`Path`] against this document, mutably.
    pub fn get_path_mut(&mut self, path: &Path) -> Option<&mut Value> {
        let mut cur = self;
        for seg in path.segments() {
            match seg {
                PathSegment::Key(k) => cur = cur.get_mut(k)?,
                PathSegment::Index(i) => cur = cur.as_seq_mut()?.get_mut(*i)?,
            }
        }
        Some(cur)
    }

    /// Set the node at `path`, creating intermediate mappings (and extending
    /// sequences with `Null` elements) as needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] if an intermediate node exists but has
    /// an incompatible type (e.g. indexing into a scalar).
    pub fn set_path(&mut self, path: &Path, value: Value) -> Result<(), Error> {
        let segs = path.segments();
        if segs.is_empty() {
            *self = value;
            return Ok(());
        }
        let mut cur = self;
        for (i, seg) in segs.iter().enumerate() {
            let last = i + 1 == segs.len();
            match seg {
                PathSegment::Key(k) => {
                    if cur.is_null() {
                        *cur = Value::empty_map();
                    }
                    let map = cur.as_map_mut().ok_or_else(|| Error::TypeMismatch {
                        expected: "map".into(),
                        found: "non-map".into(),
                    })?;
                    if !map.contains_key(k) {
                        map.insert(k.clone(), Value::Null);
                    }
                    let slot = map.get_mut(k).expect("just inserted");
                    if last {
                        *slot = value;
                        return Ok(());
                    }
                    cur = slot;
                }
                PathSegment::Index(idx) => {
                    if cur.is_null() {
                        *cur = Value::empty_seq();
                    }
                    let seq = cur.as_seq_mut().ok_or_else(|| Error::TypeMismatch {
                        expected: "seq".into(),
                        found: "non-seq".into(),
                    })?;
                    while seq.len() <= *idx {
                        seq.push(Value::Null);
                    }
                    if last {
                        seq[*idx] = value;
                        return Ok(());
                    }
                    cur = &mut seq[*idx];
                }
            }
        }
        unreachable!("loop always returns on the last segment")
    }

    /// Remove the node at `path`. Returns the removed value, or `None` if the
    /// path did not resolve.
    pub fn remove_path(&mut self, path: &Path) -> Option<Value> {
        let segs = path.segments();
        let (last, prefix) = segs.split_last()?;
        let parent = if prefix.is_empty() {
            self
        } else {
            self.get_path_mut(&Path::from_segments(prefix.to_vec()))?
        };
        match last {
            PathSegment::Key(k) => parent.as_map_mut()?.remove(k),
            PathSegment::Index(i) => {
                let seq = parent.as_seq_mut()?;
                if *i < seq.len() {
                    Some(seq.remove(*i))
                } else {
                    None
                }
            }
        }
    }

    /// Deep-merge `other` into `self`.
    ///
    /// Mappings are merged key-by-key (recursively); every other combination
    /// is replaced by `other`. This mirrors Helm's values-override semantics,
    /// where user-supplied values override chart defaults subtree by subtree
    /// but sequences are replaced wholesale.
    pub fn merge_from(&mut self, other: &Value) {
        match (self, other) {
            (Value::Map(dst), Value::Map(src)) => {
                for (k, v) in src.iter() {
                    match dst.get_mut(k) {
                        Some(slot) => slot.merge_from(v),
                        None => {
                            dst.insert(k.to_owned(), v.clone());
                        }
                    }
                }
            }
            (dst, src) => *dst = src.clone(),
        }
    }

    /// Enumerate all leaf nodes (scalars, empty mappings and empty sequences)
    /// together with their paths, in document order.
    pub fn leaves(&self) -> Vec<(Path, &Value)> {
        let mut out = Vec::new();
        self.collect_leaves(Path::root(), &mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, prefix: Path, out: &mut Vec<(Path, &'a Value)>) {
        match self {
            Value::Map(m) if !m.is_empty() => {
                for (k, v) in m.iter() {
                    v.collect_leaves(prefix.child_key(k), out);
                }
            }
            Value::Seq(s) if !s.is_empty() => {
                for (i, v) in s.iter().enumerate() {
                    v.collect_leaves(prefix.child_index(i), out);
                }
            }
            other => out.push((prefix, other)),
        }
    }

    /// Count the leaf nodes of the document (scalar fields plus empty
    /// containers). Used by the attack-surface accounting.
    pub fn leaf_count(&self) -> usize {
        match self {
            Value::Map(m) if !m.is_empty() => m.values().map(Value::leaf_count).sum(),
            Value::Seq(s) if !s.is_empty() => s.iter().map(Value::leaf_count).sum(),
            _ => 1,
        }
    }

    /// Collect the set of *field paths* of the document: the paths of every
    /// mapping key, with sequence indices collapsed (`containers[0].image` and
    /// `containers[3].image` count as the same field `containers[].image`).
    ///
    /// This is the unit of the paper's attack-surface measurements.
    pub fn field_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_field_paths(String::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_field_paths(&self, prefix: String, out: &mut Vec<String>) {
        match self {
            Value::Map(m) => {
                for (k, v) in m.iter() {
                    let p = if prefix.is_empty() {
                        k.to_owned()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    out.push(p.clone());
                    v.collect_field_paths(p, out);
                }
            }
            Value::Seq(s) => {
                let p = format!("{prefix}[]");
                for v in s.iter() {
                    v.collect_field_paths(p.clone(), out);
                }
            }
            _ => {}
        }
    }

    /// Structural equality that treats integer and float representations of
    /// the same number as equal (YAML round-trips may change `1` ↔ `1.0`).
    pub fn loosely_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64 - *b).abs() < f64::EPSILON
            }
            (Value::Map(a), Value::Map(b)) => {
                a.len() == b.len()
                    && a.iter().all(|(k, v)| {
                        b.get(k)
                            .map(|other| v.loosely_equals(other))
                            .unwrap_or(false)
                    })
            }
            (Value::Seq(a), Value::Seq(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.loosely_equals(y))
            }
            (a, b) => a == b,
        }
    }
}

/// Build a [`Value::Map`] from `(key, value)` pairs; convenience for tests and
/// built-in chart definitions.
#[macro_export]
macro_rules! yaml_map {
    ($($key:expr => $val:expr),* $(,)?) => {{
        let mut m = $crate::Mapping::new();
        $( m.insert($key.to_string(), $crate::Value::from($val)); )*
        $crate::Value::Map(m)
    }};
}

/// Build a [`Value::Seq`] from values; convenience for tests and built-in
/// chart definitions.
#[macro_export]
macro_rules! yaml_seq {
    ($($val:expr),* $(,)?) => {{
        $crate::Value::Seq(vec![ $( $crate::Value::from($val) ),* ])
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let mut containers = Mapping::new();
        containers.insert("name", Value::from("web"));
        containers.insert("image", Value::from("nginx:latest"));
        let mut spec = Mapping::new();
        spec.insert("replicas", Value::from(3));
        spec.insert("containers", Value::Seq(vec![Value::Map(containers)]));
        let mut root = Mapping::new();
        root.insert("kind", Value::from("Deployment"));
        root.insert("spec", Value::Map(spec));
        Value::Map(root)
    }

    #[test]
    fn mapping_preserves_insertion_order() {
        let mut m = Mapping::new();
        m.insert("z", Value::from(1));
        m.insert("a", Value::from(2));
        m.insert("m", Value::from(3));
        let keys: Vec<_> = m.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn mapping_insert_replaces_in_place() {
        let mut m = Mapping::new();
        m.insert("a", Value::from(1));
        m.insert("b", Value::from(2));
        let prev = m.insert("a", Value::from(10));
        assert_eq!(prev, Some(Value::Int(1)));
        assert_eq!(m.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(m.get("a"), Some(&Value::Int(10)));
    }

    #[test]
    fn get_path_resolves_nested_fields() {
        let doc = sample();
        let p = Path::parse("spec.containers[0].image").unwrap();
        assert_eq!(doc.get_path(&p).unwrap().as_str(), Some("nginx:latest"));
    }

    #[test]
    fn get_path_missing_returns_none() {
        let doc = sample();
        let p = Path::parse("spec.template.metadata").unwrap();
        assert!(doc.get_path(&p).is_none());
    }

    #[test]
    fn set_path_creates_intermediate_maps() {
        let mut doc = Value::Null;
        let p = Path::parse("spec.securityContext.runAsNonRoot").unwrap();
        doc.set_path(&p, Value::Bool(true)).unwrap();
        assert_eq!(doc.get_path(&p).unwrap().as_bool(), Some(true));
    }

    #[test]
    fn set_path_extends_sequences() {
        let mut doc = Value::Null;
        let p = Path::parse("spec.containers[2].name").unwrap();
        doc.set_path(&p, Value::from("sidecar")).unwrap();
        let seq = doc
            .get_path(&Path::parse("spec.containers").unwrap())
            .unwrap();
        assert_eq!(seq.as_seq().unwrap().len(), 3);
        assert!(seq.as_seq().unwrap()[0].is_null());
    }

    #[test]
    fn set_path_type_mismatch_is_reported() {
        let mut doc = sample();
        let p = Path::parse("kind.sub").unwrap();
        let err = doc.set_path(&p, Value::Null).unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
    }

    #[test]
    fn remove_path_removes_map_entries_and_seq_items() {
        let mut doc = sample();
        let removed = doc.remove_path(&Path::parse("spec.replicas").unwrap());
        assert_eq!(removed, Some(Value::Int(3)));
        assert!(doc
            .get_path(&Path::parse("spec.replicas").unwrap())
            .is_none());
        let removed = doc.remove_path(&Path::parse("spec.containers[0]").unwrap());
        assert!(removed.is_some());
        assert_eq!(
            doc.get_path(&Path::parse("spec.containers").unwrap())
                .unwrap()
                .as_seq()
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn merge_from_overrides_subtrees() {
        let mut base = sample();
        let mut overlay = Value::Null;
        overlay
            .set_path(&Path::parse("spec.replicas").unwrap(), Value::from(5))
            .unwrap();
        overlay
            .set_path(
                &Path::parse("spec.strategy.type").unwrap(),
                Value::from("Recreate"),
            )
            .unwrap();
        base.merge_from(&overlay);
        assert_eq!(
            base.get_path(&Path::parse("spec.replicas").unwrap())
                .unwrap()
                .as_i64(),
            Some(5)
        );
        // untouched subtree survives
        assert_eq!(
            base.get_path(&Path::parse("spec.containers[0].name").unwrap())
                .unwrap()
                .as_str(),
            Some("web")
        );
        // new subtree added
        assert_eq!(
            base.get_path(&Path::parse("spec.strategy.type").unwrap())
                .unwrap()
                .as_str(),
            Some("Recreate")
        );
    }

    #[test]
    fn merge_replaces_sequences_wholesale() {
        let mut base = sample();
        let mut overlay = Value::Null;
        overlay
            .set_path(
                &Path::parse("spec.containers").unwrap(),
                Value::Seq(vec![Value::from("replaced")]),
            )
            .unwrap();
        base.merge_from(&overlay);
        let seq = base
            .get_path(&Path::parse("spec.containers").unwrap())
            .unwrap()
            .as_seq()
            .unwrap();
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].as_str(), Some("replaced"));
    }

    #[test]
    fn leaves_enumerates_scalars_with_paths() {
        let doc = sample();
        let leaves = doc.leaves();
        let paths: Vec<String> = leaves.iter().map(|(p, _)| p.to_string()).collect();
        assert!(paths.contains(&"kind".to_string()));
        assert!(paths.contains(&"spec.containers[0].image".to_string()));
        assert_eq!(doc.leaf_count(), leaves.len());
    }

    #[test]
    fn field_paths_collapse_sequence_indices() {
        let mut doc = sample();
        let mut c2 = Mapping::new();
        c2.insert("name", Value::from("sidecar"));
        c2.insert("image", Value::from("busybox"));
        doc.get_path_mut(&Path::parse("spec.containers").unwrap())
            .unwrap()
            .as_seq_mut()
            .unwrap()
            .push(Value::Map(c2));
        let fields = doc.field_paths();
        assert!(fields.contains(&"spec.containers[].image".to_string()));
        // two containers but the field is counted once
        assert_eq!(
            fields
                .iter()
                .filter(|f| f.as_str() == "spec.containers[].image")
                .count(),
            1
        );
    }

    #[test]
    fn loose_equality_treats_int_and_float_alike() {
        assert!(Value::Int(1).loosely_equals(&Value::Float(1.0)));
        assert!(!Value::Int(1).loosely_equals(&Value::Float(1.5)));
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Bool(true).type_name(), "bool");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::Float(1.0).type_name(), "float");
        assert_eq!(Value::from("x").type_name(), "string");
        assert_eq!(Value::empty_seq().type_name(), "seq");
        assert_eq!(Value::empty_map().type_name(), "map");
    }

    #[test]
    fn macros_build_documents() {
        let v = yaml_map! {
            "enabled" => true,
            "replicas" => 2,
            "tags" => yaml_seq!["a", "b"],
        };
        assert_eq!(v.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("tags").unwrap().as_seq().unwrap().len(), 2);
    }
}
