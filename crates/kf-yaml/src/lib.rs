//! # kf-yaml — document tree and YAML subset used by the KubeFence reproduction
//!
//! Every artifact that KubeFence manipulates — Helm `values.yaml` files,
//! rendered Kubernetes manifests, API request bodies, policy validators — is a
//! hierarchical document. This crate provides the shared document tree
//! ([`Value`]) together with:
//!
//! * a parser for the YAML subset used throughout the project
//!   ([`parse`] / [`parse_documents`]),
//! * an emitter producing canonical YAML text ([`to_yaml`]),
//! * dotted-path addressing into documents ([`Path`]),
//! * structural helpers: deep merge, leaf enumeration, diffing,
//! * a compact binary codec and CRC-32 framing used by the durable
//!   persistence plane ([`binary`]).
//!
//! The subset covers what Kubernetes manifests and Helm values files actually
//! use in this repository: block mappings and sequences, quoted and plain
//! scalars, flow sequences/mappings, comments and multi-document streams.
//! Anchors, tags and block scalars are intentionally out of scope.
//!
//! Raw request bodies may also arrive as **JSON** — the dominant wire format
//! in front of a real API server. The [`json`] module provides a JSON
//! tokenizer emitting the same [`events::Event`] stream, [`parse_json`] /
//! [`to_json`] for trees, and [`BodyFormat`] for format declaration and
//! auto-detection.
//!
//! ```
//! use kf_yaml::{parse, Path};
//!
//! # fn main() -> Result<(), kf_yaml::Error> {
//! let doc = parse("spec:\n  replicas: 3\n  containers:\n    - name: web\n")?;
//! let replicas = doc.get_path(&Path::parse("spec.replicas")?).unwrap();
//! assert_eq!(replicas.as_i64(), Some(3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
mod emitter;
mod error;
pub mod events;
mod format;
pub mod json;
mod parser;
mod path;
mod value;

pub use emitter::{emit_entry, emit_entry_inline, emit_seq_item, to_yaml};
pub use error::Error;
pub use format::BodyFormat;
pub use json::{parse_json, to_json, write_json};
pub use parser::{parse, parse_documents};
pub use path::{Path, PathSegment};
pub use value::{Mapping, Value};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
