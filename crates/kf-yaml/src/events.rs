//! Pull-based YAML event tokenizer.
//!
//! This is the wire-level front end of the crate: it lexes a YAML stream into
//! structural events ([`MappingStart`](Event::MappingStart),
//! [`Key`](Event::Key), [`SequenceStart`](Event::SequenceStart),
//! [`Scalar`](Event::Scalar), [`End`](Event::End),
//! [`DocumentEnd`](Event::DocumentEnd)) without ever building a document
//! tree. Scalars and keys borrow from the input buffer wherever no
//! unescaping is required, every event carries its source position, and
//! multi-document streams (`---` separators) are supported.
//!
//! The tree parser ([`crate::parse`] / [`crate::parse_documents`]) is a thin
//! builder over this tokenizer, so the two front ends can never disagree on
//! the accepted syntax; consumers that want to *validate while parsing*
//! (the KubeFence streaming admission plane) drive the tokenizer directly
//! and stop pulling as soon as their verdict is decided.
//!
//! Line preprocessing (comment stripping, indentation accounting, document
//! splitting) is performed eagerly — it is a cheap byte scan — while all
//! per-node work (escape handling, flow-collection scanning, scalar typing)
//! happens lazily as events are pulled.

use std::borrow::Cow;
use std::collections::VecDeque;

use crate::value::Value;
use crate::Error;

/// Position of a token in the source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based source line number.
    pub line: usize,
    /// 0-based byte offset from the start of the buffer.
    pub offset: usize,
}

/// A scalar lexed from the stream.
///
/// String payloads borrow from the input buffer unless unescaping forced an
/// allocation. The scalar typing rules (null/bool/int/float/string, quoting,
/// the leading-zero exception) are exactly those of the tree parser.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarToken<'a> {
    /// The YAML `null` / `~` / empty scalar.
    Null,
    /// A boolean scalar.
    Bool(bool),
    /// A signed integer scalar.
    Int(i64),
    /// A floating point scalar.
    Float(f64),
    /// A string scalar.
    Str(Cow<'a, str>),
}

impl<'a> ScalarToken<'a> {
    /// View as a string slice, if the token is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ScalarToken::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// Convert the token into an owned [`Value`] node.
    pub fn into_value(self) -> Value {
        match self {
            ScalarToken::Null => Value::Null,
            ScalarToken::Bool(b) => Value::Bool(b),
            ScalarToken::Int(i) => Value::Int(i),
            ScalarToken::Float(x) => Value::Float(x),
            ScalarToken::Str(s) => Value::Str(s.into_owned()),
        }
    }

    /// Render the token the way [`Value::scalar_to_string`] renders the
    /// corresponding tree node (used in violation messages).
    pub fn render(&self) -> String {
        match self {
            ScalarToken::Null => String::new(),
            ScalarToken::Bool(b) => b.to_string(),
            ScalarToken::Int(i) => i.to_string(),
            ScalarToken::Float(x) => format!("{x}"),
            ScalarToken::Str(s) => s.to_string(),
        }
    }

    /// Short lowercase name of the scalar type, mirroring
    /// [`Value::type_name`].
    pub fn type_name(&self) -> &'static str {
        match self {
            ScalarToken::Null => "null",
            ScalarToken::Bool(_) => "bool",
            ScalarToken::Int(_) => "int",
            ScalarToken::Float(_) => "float",
            ScalarToken::Str(_) => "string",
        }
    }
}

/// One structural event of the token stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// A block or flow mapping begins.
    MappingStart {
        /// Position of the mapping's first token.
        pos: Pos,
    },
    /// A mapping key (the next event opens or completes its value).
    Key {
        /// The (unquoted) key text.
        name: Cow<'a, str>,
        /// Position of the key token.
        pos: Pos,
    },
    /// A block or flow sequence begins.
    SequenceStart {
        /// Position of the sequence's first token.
        pos: Pos,
    },
    /// A scalar value.
    Scalar {
        /// The lexed scalar.
        value: ScalarToken<'a>,
        /// Position of the scalar token.
        pos: Pos,
    },
    /// The innermost open mapping or sequence ends.
    End,
    /// The current document ends. Pulling further events starts the next
    /// document of the stream, if any.
    DocumentEnd,
}

/// A significant (non-blank, non-comment) source line.
#[derive(Debug, Clone, Copy)]
struct Line<'a> {
    indent: usize,
    text: &'a str,
    number: usize,
    /// Byte offset of `text` within the input buffer.
    offset: usize,
}

impl<'a> Line<'a> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.number,
            offset: self.offset,
        }
    }
}

/// An open block container on the tokenizer stack.
#[derive(Debug, Clone, Copy)]
enum Frame {
    /// A block mapping at this indentation; `keys_start` marks the start of
    /// its slice of the shared duplicate-detection key stack.
    Map { indent: usize, keys_start: usize },
    /// A block sequence at this indentation.
    Seq { indent: usize },
}

/// What the state machine does on the next step.
#[derive(Debug, Clone, Copy)]
enum Expect {
    /// A new node at exactly this indentation (the current line's indent).
    Node { indent: usize },
    /// Continue the innermost open container (or close the document).
    Container,
}

/// The pull-based tokenizer. See the module docs for the event model.
#[derive(Debug)]
pub struct Tokenizer<'a> {
    /// Byte address of the input buffer, for slice-offset arithmetic.
    base: usize,
    lines: Vec<Line<'a>>,
    /// Document line ranges (`start..end` into `lines`), in stream order.
    /// Only non-empty documents are recorded, mirroring the tree parser.
    docs: Vec<(usize, usize)>,
    doc_idx: usize,
    pos: usize,
    end: usize,
    active: bool,
    stack: Vec<Frame>,
    /// Shared key stack for duplicate detection; each open mapping owns the
    /// suffix starting at its `keys_start`.
    keys: Vec<Cow<'a, str>>,
    expect: Expect,
    queue: VecDeque<Event<'a>>,
}

impl<'a> Tokenizer<'a> {
    /// Preprocess the input into significant lines and document ranges.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for tabs in indentation (the only error the
    /// line scan can detect); all other syntax errors surface as events are
    /// pulled.
    pub fn new(text: &'a str) -> Result<Self, Error> {
        let base = text.as_ptr() as usize;
        let mut lines: Vec<Line<'a>> = Vec::new();
        let mut docs = Vec::new();
        let mut doc_start = 0usize;
        let mut offset = 0usize;
        let mut number = 0usize;
        for raw_full in text.split('\n') {
            number += 1;
            let raw = raw_full.strip_suffix('\r').unwrap_or(raw_full);
            let trimmed = raw.trim_end();
            // A document separator only counts when the whole line is `---`
            // (optionally followed by a comment) with no trailing whitespace.
            if trimmed.trim_start().starts_with("---") && raw.trim_start() == trimmed.trim_start() {
                let after = trimmed.trim_start().trim_start_matches('-').trim();
                if (after.is_empty() || after.starts_with('#'))
                    && trimmed.trim_start().chars().take(3).all(|c| c == '-')
                {
                    if lines.len() > doc_start {
                        docs.push((doc_start, lines.len()));
                    }
                    doc_start = lines.len();
                    offset += raw_full.len() + 1;
                    continue;
                }
            }
            // Strip comments and blank lines (the tree parser's
            // `preprocess_line`).
            let content = strip_comment(trimmed).trim_end();
            if !content.trim().is_empty() {
                let indent = content.len() - content.trim_start().len();
                if content[..indent].contains('\t') {
                    return Err(Error::parse(number, "tabs are not allowed in indentation"));
                }
                lines.push(Line {
                    indent,
                    text: content.trim_start(),
                    number,
                    offset: offset + indent,
                });
            }
            offset += raw_full.len() + 1;
        }
        if lines.len() > doc_start {
            docs.push((doc_start, lines.len()));
        }
        Ok(Tokenizer {
            base,
            lines,
            docs,
            doc_idx: 0,
            pos: 0,
            end: 0,
            active: false,
            stack: Vec::new(),
            keys: Vec::new(),
            expect: Expect::Container,
            queue: VecDeque::new(),
        })
    }

    /// Number of (non-empty) documents in the stream.
    pub fn document_count(&self) -> usize {
        self.docs.len()
    }

    /// Pull the next event, or `None` at the end of the stream.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when the input does not conform to the
    /// supported YAML subset. After an error the tokenizer state is
    /// unspecified and no further events should be pulled.
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>, Error> {
        loop {
            if let Some(event) = self.queue.pop_front() {
                return Ok(Some(event));
            }
            if !self.active {
                let Some(&(start, end)) = self.docs.get(self.doc_idx) else {
                    return Ok(None);
                };
                self.pos = start;
                self.end = end;
                self.active = true;
                self.expect = Expect::Node {
                    indent: self.lines[start].indent,
                };
            }
            match self.expect {
                Expect::Node { indent } => self.step_node(indent)?,
                Expect::Container => self.step_container()?,
            }
        }
    }

    fn offset_of(&self, slice: &str) -> usize {
        slice.as_ptr() as usize - self.base
    }

    fn current_pos(&self) -> Pos {
        if self.pos < self.end {
            self.lines[self.pos].pos()
        } else {
            // End of document; anchor to the last line.
            let last = self.lines[self.end.saturating_sub(1).min(self.lines.len() - 1)];
            Pos {
                line: last.number,
                offset: last.offset + last.text.len(),
            }
        }
    }

    fn push_null(&mut self, pos: Pos) {
        self.queue.push_back(Event::Scalar {
            value: ScalarToken::Null,
            pos,
        });
        self.expect = Expect::Container;
    }

    fn close_frame(&mut self) {
        if let Some(frame) = self.stack.pop() {
            if let Frame::Map { keys_start, .. } = frame {
                self.keys.truncate(keys_start);
            }
            self.queue.push_back(Event::End);
        }
        self.expect = Expect::Container;
    }

    /// Start the node at the current line, which sits at exactly `indent`
    /// (callers guarantee this) — or is missing/dedented, which yields null.
    fn step_node(&mut self, indent: usize) -> Result<(), Error> {
        let pos = self.current_pos();
        if self.pos >= self.end || self.lines[self.pos].indent < indent {
            self.push_null(pos);
            return Ok(());
        }
        let line = self.lines[self.pos];
        if is_dash(line.text) {
            self.queue
                .push_back(Event::SequenceStart { pos: line.pos() });
            self.stack.push(Frame::Seq { indent });
            self.expect = Expect::Container;
        } else if find_key_split(line.text).is_some() {
            self.queue
                .push_back(Event::MappingStart { pos: line.pos() });
            self.stack.push(Frame::Map {
                indent,
                keys_start: self.keys.len(),
            });
            self.expect = Expect::Container;
        } else {
            // A bare scalar (or flow collection) on a single line.
            self.scan_value(line.text, line.number)?;
            self.pos += 1;
            self.expect = Expect::Container;
        }
        Ok(())
    }

    fn step_container(&mut self) -> Result<(), Error> {
        match self.stack.last().copied() {
            None => {
                // The document's root value is complete.
                if self.pos < self.end {
                    let line = self.lines[self.pos];
                    return Err(Error::parse(
                        line.number,
                        format!("unexpected content `{}` after document", line.text),
                    ));
                }
                self.queue.push_back(Event::DocumentEnd);
                self.doc_idx += 1;
                self.active = false;
                Ok(())
            }
            Some(Frame::Map { indent, keys_start }) => self.step_map(indent, keys_start),
            Some(Frame::Seq { indent }) => self.step_seq(indent),
        }
    }

    fn step_map(&mut self, indent: usize, keys_start: usize) -> Result<(), Error> {
        if self.pos >= self.end || self.lines[self.pos].indent < indent {
            self.close_frame();
            return Ok(());
        }
        let line = self.lines[self.pos];
        if line.indent > indent {
            return Err(Error::parse(
                line.number,
                format!(
                    "unexpected indentation (expected {indent}, found {})",
                    line.indent
                ),
            ));
        }
        if is_dash(line.text) {
            self.close_frame();
            return Ok(());
        }
        let Some((key_raw, rest)) = find_key_split(line.text) else {
            return Err(Error::parse(
                line.number,
                format!("expected `key: value`, found `{}`", line.text),
            ));
        };
        let key_pos = Pos {
            line: line.number,
            offset: self.offset_of(key_raw),
        };
        let key = unquote_key(key_raw, line.number)?;
        if self.keys[keys_start..].contains(&key) {
            return Err(Error::parse(
                line.number,
                format!("duplicate mapping key `{key}`"),
            ));
        }
        self.keys.push(key.clone());
        self.queue.push_back(Event::Key {
            name: key,
            pos: key_pos,
        });
        self.pos += 1;
        if !rest.is_empty() {
            self.scan_value(rest, line.number)?;
            self.expect = Expect::Container;
            return Ok(());
        }
        // The value is on the following lines (nested block), or null.
        if self.pos < self.end {
            let next = self.lines[self.pos];
            if next.indent > indent {
                self.expect = Expect::Node {
                    indent: next.indent,
                };
            } else if next.indent == indent && is_dash(next.text) {
                // Sequences are conventionally allowed at the same indent as
                // their key.
                self.queue
                    .push_back(Event::SequenceStart { pos: next.pos() });
                self.stack.push(Frame::Seq { indent });
                self.expect = Expect::Container;
            } else {
                self.push_null(next.pos());
            }
        } else {
            let pos = self.current_pos();
            self.push_null(pos);
        }
        Ok(())
    }

    fn step_seq(&mut self, indent: usize) -> Result<(), Error> {
        if self.pos >= self.end {
            self.close_frame();
            return Ok(());
        }
        let line = self.lines[self.pos];
        if line.indent != indent || !is_dash(line.text) {
            if line.indent > indent {
                return Err(Error::parse(
                    line.number,
                    "unexpected indentation inside sequence".to_string(),
                ));
            }
            self.close_frame();
            return Ok(());
        }
        let content = if line.text == "-" {
            ""
        } else {
            line.text[2..].trim_start()
        };
        if content.is_empty() {
            // Nested block on the following lines, or a null item.
            self.pos += 1;
            if self.pos < self.end && self.lines[self.pos].indent > indent {
                let next_indent = self.lines[self.pos].indent;
                self.expect = Expect::Node {
                    indent: next_indent,
                };
            } else {
                self.push_null(line.pos());
            }
        } else {
            // Reinterpret the item content as a regular line at the column
            // where it starts; this uniformly handles both scalar items and
            // compact `- key: value` mapping items whose remaining keys
            // continue on the following lines.
            let content_col = line.indent + (line.text.len() - content.len());
            self.lines[self.pos] = Line {
                indent: content_col,
                text: content,
                number: line.number,
                offset: self.offset_of(content),
            };
            self.expect = Expect::Node {
                indent: content_col,
            };
        }
        Ok(())
    }

    /// Queue the events of an inline value: a flow collection when the text
    /// opens with `[` or `{`, a scalar token otherwise.
    fn scan_value(&mut self, text: &'a str, line: usize) -> Result<(), Error> {
        if text.starts_with('[') || text.starts_with('{') {
            let base_offset = self.offset_of(text);
            let mut cursor = FlowCursor {
                text,
                i: 0,
                line,
                base_offset,
            };
            scan_flow_node(&mut cursor, &mut self.queue)?;
            cursor.skip_ws();
            if cursor.i != text.len() {
                return Err(Error::parse(
                    line,
                    "trailing characters after flow collection",
                ));
            }
            return Ok(());
        }
        let pos = Pos {
            line,
            offset: self.offset_of(text),
        };
        let value = scan_scalar(text, line)?;
        self.queue.push_back(Event::Scalar { value, pos });
        Ok(())
    }
}

fn is_dash(text: &str) -> bool {
    text.starts_with("- ") || text == "-"
}

/// Remove a trailing `# comment`, respecting quoted strings. Escapes inside
/// double quotes are tracked forward (a backslash escapes the *next* byte),
/// so `"x\\"` correctly closes the string.
pub(crate) fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_double && c == '\\' {
            // Skip the escaped byte (quote, backslash, …) entirely.
            i += 2;
            continue;
        }
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            // A '#' starts a comment when at start of line or preceded by
            // whitespace.
            '#' if !in_single
                && !in_double
                && (i == 0 || (bytes[i - 1] as char).is_whitespace()) =>
            {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Split `key: rest` at the first unquoted `:` that is followed by a space or
/// ends the line. Returns `(key, rest)` with `rest` trimmed.
pub(crate) fn find_key_split(text: &str) -> Option<(&str, &str)> {
    let bytes = text.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0usize; // inside flow collections `:` does not split
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_double && c == '\\' {
            // Forward escape tracking: the next byte cannot close the quote.
            i += 2;
            continue;
        }
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '[' | '{' if !in_single && !in_double => depth += 1,
            ']' | '}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            ':' if !in_single && !in_double && depth == 0 => {
                let at_end = i + 1 == bytes.len();
                let followed_by_space = !at_end && (bytes[i + 1] as char).is_whitespace();
                if at_end || followed_by_space {
                    let key = text[..i].trim();
                    let rest = if at_end { "" } else { text[i + 1..].trim() };
                    if key.is_empty() {
                        return None;
                    }
                    return Some((key, rest));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Unquote a mapping key if it is quoted; plain keys borrow.
fn unquote_key<'a>(key: &'a str, line: usize) -> Result<Cow<'a, str>, Error> {
    if (key.starts_with('"') && key.ends_with('"') && key.len() >= 2)
        || (key.starts_with('\'') && key.ends_with('\'') && key.len() >= 2)
    {
        scan_quoted(key, line)
    } else {
        Ok(Cow::Borrowed(key))
    }
}

/// Lex a plain or quoted scalar into a token. The typing rules are the tree
/// parser's: quoted → string, `~`/null/true/false keywords, integers (except
/// leading zeros), floats, everything else a string.
pub(crate) fn scan_scalar<'a>(text: &'a str, line: usize) -> Result<ScalarToken<'a>, Error> {
    let text = text.trim();
    if text.is_empty() {
        return Ok(ScalarToken::Null);
    }
    if (text.starts_with('"') && text.ends_with('"') && text.len() >= 2)
        || (text.starts_with('\'') && text.ends_with('\'') && text.len() >= 2)
    {
        return scan_quoted(text, line).map(ScalarToken::Str);
    }
    match text {
        "~" | "null" | "Null" | "NULL" => return Ok(ScalarToken::Null),
        "true" | "True" | "TRUE" => return Ok(ScalarToken::Bool(true)),
        "false" | "False" | "FALSE" => return Ok(ScalarToken::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        // Leading zeros (e.g. "0755") are kept as strings to avoid octal
        // surprises in manifests.
        if !(text.len() > 1 && (text.starts_with('0') || text.starts_with("-0"))) {
            return Ok(ScalarToken::Int(i));
        }
    }
    if looks_like_float(text) {
        if let Ok(x) = text.parse::<f64>() {
            return Ok(ScalarToken::Float(x));
        }
    }
    Ok(ScalarToken::Str(Cow::Borrowed(text)))
}

fn looks_like_float(text: &str) -> bool {
    let t = text.strip_prefix('-').unwrap_or(text);
    !t.is_empty()
        && t.contains('.')
        && t.chars().all(|c| c.is_ascii_digit() || c == '.')
        && t.chars().filter(|c| *c == '.').count() == 1
        && !t.starts_with('.')
        && !t.ends_with('.')
}

/// Unquote a quoted scalar, borrowing when no escape processing is needed.
fn scan_quoted<'a>(text: &'a str, line: usize) -> Result<Cow<'a, str>, Error> {
    let quote = text.chars().next().expect("non-empty");
    let inner = &text[1..text.len() - 1];
    if quote == '\'' {
        // Single quotes: the only escape is '' for a literal quote.
        if inner.contains("''") {
            return Ok(Cow::Owned(inner.replace("''", "'")));
        }
        return Ok(Cow::Borrowed(inner));
    }
    if !inner.contains('\\') {
        return Ok(Cow::Borrowed(inner));
    }
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => return Err(Error::parse(line, "dangling escape in quoted string")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(Cow::Owned(out))
}

/// Byte cursor over a single-line flow collection.
struct FlowCursor<'a> {
    text: &'a str,
    i: usize,
    line: usize,
    base_offset: usize,
}

impl<'a> FlowCursor<'a> {
    fn peek(&self) -> Option<char> {
        self.text[self.i..].chars().next()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if !c.is_whitespace() {
                break;
            }
            self.i += c.len_utf8();
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            offset: self.base_offset + self.i,
        }
    }
}

/// Scan one flow node (`[...]`, `{...}` or a scalar token), emitting events.
fn scan_flow_node<'a>(
    cur: &mut FlowCursor<'a>,
    queue: &mut VecDeque<Event<'a>>,
) -> Result<(), Error> {
    cur.skip_ws();
    match cur.peek() {
        Some('[') => {
            queue.push_back(Event::SequenceStart { pos: cur.pos() });
            cur.i += 1;
            loop {
                cur.skip_ws();
                if cur.peek() == Some(']') {
                    cur.i += 1;
                    break;
                }
                scan_flow_node(cur, queue)?;
                cur.skip_ws();
                match cur.peek() {
                    Some(',') => cur.i += 1,
                    Some(']') => {
                        cur.i += 1;
                        break;
                    }
                    _ => {
                        return Err(Error::parse(
                            cur.line,
                            "expected `,` or `]` in flow sequence",
                        ))
                    }
                }
            }
            queue.push_back(Event::End);
            Ok(())
        }
        Some('{') => {
            queue.push_back(Event::MappingStart { pos: cur.pos() });
            cur.i += 1;
            let mut seen: Vec<String> = Vec::new();
            loop {
                cur.skip_ws();
                if cur.peek() == Some('}') {
                    cur.i += 1;
                    break;
                }
                let key_pos = {
                    let mut probe = FlowCursor {
                        text: cur.text,
                        i: cur.i,
                        line: cur.line,
                        base_offset: cur.base_offset,
                    };
                    probe.skip_ws();
                    probe.pos()
                };
                let key_token = scan_flow_token(cur, &[':'])?;
                let key: Cow<'a, str> = match key_token {
                    ScalarToken::Str(s) => s,
                    other => Cow::Owned(other.render()),
                };
                if seen.iter().any(|k| *k == key.as_ref()) {
                    return Err(Error::parse(
                        cur.line,
                        format!("duplicate mapping key `{key}` in flow mapping"),
                    ));
                }
                seen.push(key.to_string());
                cur.skip_ws();
                if cur.peek() != Some(':') {
                    return Err(Error::parse(cur.line, "expected `:` in flow mapping"));
                }
                cur.i += 1;
                queue.push_back(Event::Key {
                    name: key,
                    pos: key_pos,
                });
                scan_flow_node(cur, queue)?;
                cur.skip_ws();
                match cur.peek() {
                    Some(',') => cur.i += 1,
                    Some('}') => {
                        cur.i += 1;
                        break;
                    }
                    _ => {
                        return Err(Error::parse(
                            cur.line,
                            "expected `,` or `}` in flow mapping",
                        ))
                    }
                }
            }
            queue.push_back(Event::End);
            Ok(())
        }
        Some(_) => {
            cur.skip_ws();
            let pos = cur.pos();
            let value = scan_flow_token(cur, &[',', ']', '}'])?;
            queue.push_back(Event::Scalar { value, pos });
            Ok(())
        }
        None => Err(Error::parse(cur.line, "unexpected end of flow collection")),
    }
}

/// Lex one scalar token inside a flow collection, stopping at any of the
/// `stops` characters (outside quotes). The stop set is always ASCII, so
/// byte-wise scanning is UTF-8 safe.
fn scan_flow_token<'a>(cur: &mut FlowCursor<'a>, stops: &[char]) -> Result<ScalarToken<'a>, Error> {
    cur.skip_ws();
    let bytes = cur.text.as_bytes();
    if let Some(quote @ ('"' | '\'')) = cur.peek() {
        let start = cur.i;
        cur.i += 1;
        while cur.i < bytes.len() {
            // Forward escape tracking in double quotes: a backslash escapes
            // the next byte, so `"a\\"` closes at its real closing quote.
            if quote == '"' && bytes[cur.i] == b'\\' {
                cur.i += 2;
                continue;
            }
            if bytes[cur.i] == quote as u8 {
                cur.i += 1;
                let raw = &cur.text[start..cur.i];
                return scan_quoted(raw, cur.line).map(ScalarToken::Str);
            }
            cur.i += 1;
        }
        return Err(Error::parse(cur.line, "unterminated quoted string"));
    }
    let start = cur.i;
    while cur.i < bytes.len() && !stops.contains(&(bytes[cur.i] as char)) {
        cur.i += 1;
    }
    let raw = cur.text[start..cur.i].trim();
    scan_scalar(raw, cur.line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(text: &str) -> Vec<Event<'_>> {
        let mut tok = Tokenizer::new(text).unwrap();
        let mut out = Vec::new();
        while let Some(e) = tok.next_event().unwrap() {
            out.push(e);
        }
        out
    }

    fn key(name: &str) -> String {
        name.to_owned()
    }

    #[test]
    fn flat_mapping_events_in_document_order() {
        let evs = events("name: web\nreplicas: 3\n");
        assert!(matches!(evs[0], Event::MappingStart { .. }));
        let Event::Key { name, pos } = &evs[1] else {
            panic!("expected key, got {:?}", evs[1]);
        };
        assert_eq!(name.as_ref(), "name");
        assert_eq!(pos.line, 1);
        assert_eq!(pos.offset, 0);
        assert!(matches!(&evs[2], Event::Scalar { value: ScalarToken::Str(s), .. } if s == "web"));
        let Event::Key { name, pos } = &evs[3] else {
            panic!("expected key");
        };
        assert_eq!(name.as_ref(), "replicas");
        assert_eq!(pos.line, 2);
        assert_eq!(pos.offset, 10);
        assert!(matches!(
            &evs[4],
            Event::Scalar {
                value: ScalarToken::Int(3),
                ..
            }
        ));
        assert!(matches!(evs[5], Event::End));
        assert!(matches!(evs[6], Event::DocumentEnd));
        assert_eq!(evs.len(), 7);
    }

    #[test]
    fn nested_blocks_and_sequences_balance() {
        let text = "spec:\n  containers:\n    - name: web\n      ports:\n        - 80\n";
        let evs = events(text);
        let starts = evs
            .iter()
            .filter(|e| matches!(e, Event::MappingStart { .. } | Event::SequenceStart { .. }))
            .count();
        let ends = evs.iter().filter(|e| matches!(e, Event::End)).count();
        assert_eq!(starts, ends);
        assert!(matches!(evs.last(), Some(Event::DocumentEnd)));
    }

    #[test]
    fn scalars_borrow_from_the_input() {
        let text = "image: nginx\n";
        let evs = events(text);
        let Event::Scalar {
            value: ScalarToken::Str(s),
            ..
        } = &evs[2]
        else {
            panic!("expected string scalar");
        };
        assert!(matches!(s, Cow::Borrowed(_)), "plain scalars must borrow");
    }

    #[test]
    fn flow_collections_emit_structural_events() {
        let evs = events("sel: {app: web}\nvals: [1, 2]\n");
        let kinds: Vec<String> = evs
            .iter()
            .map(|e| match e {
                Event::MappingStart { .. } => key("map"),
                Event::Key { name, .. } => format!("key:{name}"),
                Event::SequenceStart { .. } => key("seq"),
                Event::Scalar { value, .. } => format!("scalar:{}", value.render()),
                Event::End => key("end"),
                Event::DocumentEnd => key("doc-end"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "map",
                "key:sel",
                "map",
                "key:app",
                "scalar:web",
                "end",
                "key:vals",
                "seq",
                "scalar:1",
                "scalar:2",
                "end",
                "end",
                "doc-end",
            ]
        );
    }

    #[test]
    fn multi_document_streams_emit_document_ends() {
        let evs = events("---\nkind: Service\n---\nkind: Pod\n");
        let doc_ends = evs
            .iter()
            .filter(|e| matches!(e, Event::DocumentEnd))
            .count();
        assert_eq!(doc_ends, 2);
    }

    #[test]
    fn positions_point_into_the_buffer() {
        let text = "a: 1\nb:\n  c: true\n";
        let evs = events(text);
        for e in &evs {
            if let Event::Key { name, pos } = e {
                assert_eq!(
                    &text[pos.offset..pos.offset + name.len()],
                    name.as_ref(),
                    "key position must point at the key text"
                );
            }
        }
    }

    #[test]
    fn duplicate_block_keys_are_rejected_at_the_key() {
        let mut tok = Tokenizer::new("a: 1\na: 2\n").unwrap();
        let err = loop {
            match tok.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected duplicate-key error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, Error::Parse { line: 2, .. }));
    }

    #[test]
    fn duplicate_flow_keys_are_rejected() {
        let mut tok = Tokenizer::new("m: {a: 1, a: 2}\n").unwrap();
        let mut saw_err = false;
        loop {
            match tok.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    assert!(e.to_string().contains("duplicate"));
                    saw_err = true;
                    break;
                }
            }
        }
        assert!(saw_err);
    }

    #[test]
    fn early_pull_stops_before_later_errors() {
        // The first document is well-formed; the second has a syntax error.
        // Pulling only the first document's events must succeed.
        let text = "kind: Pod\n---\n{broken\n";
        let mut tok = Tokenizer::new(text).unwrap();
        loop {
            match tok.next_event().unwrap() {
                Some(Event::DocumentEnd) => break,
                Some(_) => continue,
                None => panic!("expected a first document"),
            }
        }
        // Continuing into the second document now surfaces the error.
        assert!(loop {
            match tok.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => break false,
                Err(_) => break true,
            }
        });
    }
}
