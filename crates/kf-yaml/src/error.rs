//! Error type for parsing, path resolution and document manipulation.

use std::fmt;

/// Error produced while parsing YAML text, resolving a [`crate::Path`] or
/// manipulating a [`crate::Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The YAML text could not be parsed.
    Parse {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// A [`crate::Path`] string was malformed.
    InvalidPath {
        /// The offending path text.
        path: String,
        /// Human readable description of the problem.
        message: String,
    },
    /// A path did not resolve against the document it was applied to.
    PathNotFound {
        /// The path that failed to resolve.
        path: String,
    },
    /// An operation expected a different node type (e.g. indexing a scalar).
    TypeMismatch {
        /// Description of what was expected.
        expected: String,
        /// Description of what was found.
        found: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, message } => {
                write!(f, "yaml parse error at line {line}: {message}")
            }
            Error::InvalidPath { path, message } => {
                write!(f, "invalid path `{path}`: {message}")
            }
            Error::PathNotFound { path } => write!(f, "path `{path}` not found in document"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build a parse error for the given (1-based) line.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        Error::Parse {
            line,
            message: message.into(),
        }
    }
}
