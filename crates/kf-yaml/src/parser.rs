//! Parser for the YAML subset used by the KubeFence reproduction.
//!
//! Supported syntax: block mappings, block sequences, plain / single-quoted /
//! double-quoted scalars, flow sequences (`[a, b]`) and flow mappings
//! (`{a: 1}`), comments, and multi-document streams separated by `---`.
//! Anchors, aliases, tags and block scalars (`|`, `>`) are not supported; the
//! manifests, values files and validators in this repository do not use them.

use crate::value::{Mapping, Value};
use crate::Error;

/// Parse a single YAML document.
///
/// An empty (or comment-only) input parses to [`Value::Null`]. If the input
/// contains more than one document, only the first is returned; use
/// [`parse_documents`] for multi-document streams.
///
/// # Errors
///
/// Returns [`Error::Parse`] when the text does not conform to the supported
/// subset (bad indentation, unterminated quotes or flow collections, …).
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut docs = parse_documents(text)?;
    if docs.is_empty() {
        Ok(Value::Null)
    } else {
        Ok(docs.remove(0))
    }
}

/// Parse a multi-document YAML stream (documents separated by `---`).
///
/// Documents that are entirely empty are skipped, mirroring how `kubectl`
/// treats empty documents produced by Helm conditionals.
///
/// # Errors
///
/// Returns [`Error::Parse`] when any document does not conform to the
/// supported subset.
pub fn parse_documents(text: &str) -> Result<Vec<Value>, Error> {
    let mut documents = Vec::new();
    let mut current: Vec<Line> = Vec::new();
    let mut saw_separator = false;

    for (idx, raw) in text.lines().enumerate() {
        let number = idx + 1;
        let trimmed = raw.trim_end();
        if trimmed.trim_start().starts_with("---") && raw.trim_start() == trimmed.trim_start() {
            // A document separator only counts when the whole line is `---`
            // (optionally followed by a comment).
            let after = trimmed.trim_start().trim_start_matches('-').trim();
            if trimmed.trim_start().starts_with("---")
                && (after.is_empty() || after.starts_with('#'))
                && trimmed.trim_start().chars().take(3).all(|c| c == '-')
            {
                if !current.is_empty() {
                    documents.push(parse_lines(&current)?);
                    current.clear();
                }
                saw_separator = true;
                continue;
            }
        }
        if let Some(line) = preprocess_line(trimmed, number)? {
            current.push(line);
        }
    }
    if !current.is_empty() {
        documents.push(parse_lines(&current)?);
    } else if documents.is_empty() && !saw_separator {
        return Ok(Vec::new());
    }
    Ok(documents)
}

/// A significant (non-blank, non-comment) line of input.
#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    text: String,
    number: usize,
}

/// Strip comments and blank lines; returns `None` for lines with no content.
fn preprocess_line(raw: &str, number: usize) -> Result<Option<Line>, Error> {
    let without_comment = strip_comment(raw);
    let content = without_comment.trim_end();
    if content.trim().is_empty() {
        return Ok(None);
    }
    let indent = content.len() - content.trim_start().len();
    if content[..indent].contains('\t') {
        return Err(Error::parse(number, "tabs are not allowed in indentation"));
    }
    Ok(Some(Line {
        indent,
        text: content.trim_start().to_owned(),
        number,
    }))
}

/// Remove a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => {
                // Handle escaped quotes inside double-quoted strings.
                if in_double && i > 0 && bytes[i - 1] as char == '\\' {
                    // escaped, stay inside
                } else {
                    in_double = !in_double;
                }
            }
            // A '#' starts a comment when at start of line or preceded by
            // whitespace.
            '#' if !in_single
                && !in_double
                && (i == 0 || (bytes[i - 1] as char).is_whitespace()) =>
            {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_lines(lines: &[Line]) -> Result<Value, Error> {
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut work: Vec<Line> = lines.to_vec();
    let mut pos = 0;
    let indent = work[0].indent;
    let value = parse_node(&mut work, &mut pos, indent)?;
    if pos < work.len() {
        return Err(Error::parse(
            work[pos].number,
            format!("unexpected content `{}` after document", work[pos].text),
        ));
    }
    Ok(value)
}

/// Parse the node starting at `pos`, which must be indented exactly `indent`.
fn parse_node(lines: &mut Vec<Line>, pos: &mut usize, indent: usize) -> Result<Value, Error> {
    if *pos >= lines.len() || lines[*pos].indent < indent {
        return Ok(Value::Null);
    }
    let line = &lines[*pos];
    if line.text.starts_with("- ") || line.text == "-" {
        parse_sequence(lines, pos, indent)
    } else if find_key_split(&line.text).is_some() {
        parse_mapping(lines, pos, indent)
    } else {
        // A bare scalar document (single line).
        let value = parse_scalar_or_flow(&line.text, line.number)?;
        *pos += 1;
        Ok(value)
    }
}

fn parse_mapping(lines: &mut Vec<Line>, pos: &mut usize, indent: usize) -> Result<Value, Error> {
    let mut map = Mapping::new();
    while *pos < lines.len() {
        let line = lines[*pos].clone();
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(Error::parse(
                line.number,
                format!(
                    "unexpected indentation (expected {indent}, found {})",
                    line.indent
                ),
            ));
        }
        if line.text.starts_with("- ") || line.text == "-" {
            break;
        }
        let (key_raw, rest) = match find_key_split(&line.text) {
            Some(split) => split,
            None => {
                return Err(Error::parse(
                    line.number,
                    format!("expected `key: value`, found `{}`", line.text),
                ))
            }
        };
        let key = unquote_key(key_raw, line.number)?;
        *pos += 1;
        let value = if rest.is_empty() {
            // Value is on the following lines (nested block), or null.
            if *pos < lines.len() {
                let next = &lines[*pos];
                if next.indent > indent {
                    let next_indent = next.indent;
                    parse_node(lines, pos, next_indent)?
                } else if next.indent == indent && (next.text.starts_with("- ") || next.text == "-")
                {
                    // Sequences are conventionally allowed at the same indent
                    // as their key.
                    parse_sequence(lines, pos, indent)?
                } else {
                    Value::Null
                }
            } else {
                Value::Null
            }
        } else {
            parse_scalar_or_flow(rest, line.number)?
        };
        if map.contains_key(&key) {
            return Err(Error::parse(
                line.number,
                format!("duplicate mapping key `{key}`"),
            ));
        }
        map.insert(key, value);
    }
    Ok(Value::Map(map))
}

fn parse_sequence(lines: &mut Vec<Line>, pos: &mut usize, indent: usize) -> Result<Value, Error> {
    let mut seq = Vec::new();
    while *pos < lines.len() {
        let line = lines[*pos].clone();
        if line.indent != indent || !(line.text.starts_with("- ") || line.text == "-") {
            if line.indent > indent {
                return Err(Error::parse(
                    line.number,
                    "unexpected indentation inside sequence".to_string(),
                ));
            }
            break;
        }
        let content = if line.text == "-" {
            ""
        } else {
            line.text[2..].trim_start()
        };
        if content.is_empty() {
            // Nested block on the following lines.
            *pos += 1;
            if *pos < lines.len() && lines[*pos].indent > indent {
                let next_indent = lines[*pos].indent;
                seq.push(parse_node(lines, pos, next_indent)?);
            } else {
                seq.push(Value::Null);
            }
        } else {
            // Rewrite the current line so the item content becomes a regular
            // line at the column where it starts; this uniformly handles both
            // scalar items and compact `- key: value` mapping items whose
            // remaining keys continue on the following lines.
            let content_col = line.indent + (line.text.len() - content.len());
            lines[*pos] = Line {
                indent: content_col,
                text: content.to_owned(),
                number: line.number,
            };
            seq.push(parse_node(lines, pos, content_col)?);
        }
    }
    Ok(Value::Seq(seq))
}

/// Split `key: rest` at the first unquoted `:` that is followed by a space or
/// ends the line. Returns `(key, rest)` with `rest` trimmed.
fn find_key_split(text: &str) -> Option<(&str, &str)> {
    let bytes = text.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0usize; // inside flow collections `:` does not split
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !(in_single || in_double && i > 0 && bytes[i - 1] as char == '\\') => {
                in_double = !in_double;
            }
            '[' | '{' if !in_single && !in_double => depth += 1,
            ']' | '}' if !in_single && !in_double => depth = depth.saturating_sub(1),
            ':' if !in_single && !in_double && depth == 0 => {
                let at_end = i + 1 == bytes.len();
                let followed_by_space = !at_end && (bytes[i + 1] as char).is_whitespace();
                if at_end || followed_by_space {
                    let key = text[..i].trim();
                    let rest = if at_end { "" } else { text[i + 1..].trim() };
                    if key.is_empty() {
                        return None;
                    }
                    return Some((key, rest));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn unquote_key(key: &str, line: usize) -> Result<String, Error> {
    if (key.starts_with('"') && key.ends_with('"') && key.len() >= 2)
        || (key.starts_with('\'') && key.ends_with('\'') && key.len() >= 2)
    {
        parse_quoted(key, line)
    } else {
        Ok(key.to_owned())
    }
}

/// Parse a scalar or an inline flow collection.
fn parse_scalar_or_flow(text: &str, line: usize) -> Result<Value, Error> {
    let text = text.trim();
    if text.starts_with('[') || text.starts_with('{') {
        let mut chars: Vec<char> = text.chars().collect();
        let mut i = 0;
        let value = parse_flow(&mut chars, &mut i, line)?;
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i != chars.len() {
            return Err(Error::parse(
                line,
                "trailing characters after flow collection",
            ));
        }
        return Ok(value);
    }
    parse_scalar(text, line)
}

fn parse_flow(chars: &mut Vec<char>, i: &mut usize, line: usize) -> Result<Value, Error> {
    skip_ws(chars, i);
    match chars.get(*i) {
        Some('[') => {
            *i += 1;
            let mut seq = Vec::new();
            loop {
                skip_ws(chars, i);
                if chars.get(*i) == Some(&']') {
                    *i += 1;
                    break;
                }
                seq.push(parse_flow(chars, i, line)?);
                skip_ws(chars, i);
                match chars.get(*i) {
                    Some(',') => {
                        *i += 1;
                    }
                    Some(']') => {
                        *i += 1;
                        break;
                    }
                    _ => return Err(Error::parse(line, "expected `,` or `]` in flow sequence")),
                }
            }
            Ok(Value::Seq(seq))
        }
        Some('{') => {
            *i += 1;
            let mut map = Mapping::new();
            loop {
                skip_ws(chars, i);
                if chars.get(*i) == Some(&'}') {
                    *i += 1;
                    break;
                }
                let key_val = parse_flow_token(chars, i, line, &[':'])?;
                let key = match key_val {
                    Value::Str(s) => s,
                    other => other.scalar_to_string(),
                };
                skip_ws(chars, i);
                if chars.get(*i) != Some(&':') {
                    return Err(Error::parse(line, "expected `:` in flow mapping"));
                }
                *i += 1;
                let value = parse_flow(chars, i, line)?;
                map.insert(key, value);
                skip_ws(chars, i);
                match chars.get(*i) {
                    Some(',') => {
                        *i += 1;
                    }
                    Some('}') => {
                        *i += 1;
                        break;
                    }
                    _ => return Err(Error::parse(line, "expected `,` or `}` in flow mapping")),
                }
            }
            Ok(Value::Map(map))
        }
        Some(_) => parse_flow_token(chars, i, line, &[',', ']', '}']),
        None => Err(Error::parse(line, "unexpected end of flow collection")),
    }
}

/// Parse one scalar token inside a flow collection, stopping at any of the
/// `stops` characters (outside quotes).
fn parse_flow_token(
    chars: &[char],
    i: &mut usize,
    line: usize,
    stops: &[char],
) -> Result<Value, Error> {
    skip_ws_slice(chars, i);
    if matches!(chars.get(*i), Some('"') | Some('\'')) {
        let quote = chars[*i];
        let start = *i;
        *i += 1;
        while *i < chars.len() {
            if chars[*i] == quote && !(quote == '"' && chars[*i - 1] == '\\') {
                *i += 1;
                let raw: String = chars[start..*i].iter().collect();
                return parse_quoted(&raw, line).map(Value::Str);
            }
            *i += 1;
        }
        return Err(Error::parse(line, "unterminated quoted string"));
    }
    let start = *i;
    while *i < chars.len() && !stops.contains(&chars[*i]) {
        *i += 1;
    }
    let raw: String = chars[start..*i].iter().collect();
    parse_scalar(raw.trim(), line)
}

fn skip_ws(chars: &[char], i: &mut usize) {
    while *i < chars.len() && chars[*i].is_whitespace() {
        *i += 1;
    }
}

fn skip_ws_slice(chars: &[char], i: &mut usize) {
    skip_ws(chars, i);
}

/// Parse a plain or quoted scalar into the appropriate [`Value`] variant.
fn parse_scalar(text: &str, line: usize) -> Result<Value, Error> {
    let text = text.trim();
    if text.is_empty() {
        return Ok(Value::Null);
    }
    if (text.starts_with('"') && text.ends_with('"') && text.len() >= 2)
        || (text.starts_with('\'') && text.ends_with('\'') && text.len() >= 2)
    {
        return parse_quoted(text, line).map(Value::Str);
    }
    match text {
        "~" | "null" | "Null" | "NULL" => return Ok(Value::Null),
        "true" | "True" | "TRUE" => return Ok(Value::Bool(true)),
        "false" | "False" | "FALSE" => return Ok(Value::Bool(false)),
        "{}" => return Ok(Value::empty_map()),
        "[]" => return Ok(Value::empty_seq()),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        // Leading zeros (e.g. "0755") are kept as strings to avoid octal
        // surprises in manifests.
        if !(text.len() > 1 && (text.starts_with('0') || text.starts_with("-0"))) {
            return Ok(Value::Int(i));
        }
    }
    if looks_like_float(text) {
        if let Ok(x) = text.parse::<f64>() {
            return Ok(Value::Float(x));
        }
    }
    Ok(Value::Str(text.to_owned()))
}

fn looks_like_float(text: &str) -> bool {
    let t = text.strip_prefix('-').unwrap_or(text);
    !t.is_empty()
        && t.contains('.')
        && t.chars().all(|c| c.is_ascii_digit() || c == '.')
        && t.chars().filter(|c| *c == '.').count() == 1
        && !t.starts_with('.')
        && !t.ends_with('.')
}

fn parse_quoted(text: &str, line: usize) -> Result<String, Error> {
    let quote = text.chars().next().expect("non-empty");
    let inner = &text[1..text.len() - 1];
    if quote == '\'' {
        // Single quotes: the only escape is '' for a literal quote.
        return Ok(inner.replace("''", "'"));
    }
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => return Err(Error::parse(line, "dangling escape in quoted string")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Path;

    #[test]
    fn parses_flat_mapping() {
        let doc = parse("name: web\nreplicas: 3\nenabled: true\nratio: 0.5\nempty:\n").unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("web"));
        assert_eq!(doc.get("replicas").unwrap().as_i64(), Some(3));
        assert_eq!(doc.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(0.5));
        assert!(doc.get("empty").unwrap().is_null());
    }

    #[test]
    fn parses_nested_mappings() {
        let text = "spec:\n  template:\n    metadata:\n      labels:\n        app: nginx\n";
        let doc = parse(text).unwrap();
        assert_eq!(
            doc.get_path(&Path::parse("spec.template.metadata.labels.app").unwrap())
                .unwrap()
                .as_str(),
            Some("nginx")
        );
    }

    #[test]
    fn parses_block_sequences_of_scalars() {
        let doc = parse("ports:\n  - 80\n  - 443\n").unwrap();
        let ports = doc.get("ports").unwrap().as_seq().unwrap();
        assert_eq!(ports.len(), 2);
        assert_eq!(ports[1].as_i64(), Some(443));
    }

    #[test]
    fn parses_sequence_at_same_indent_as_key() {
        let doc = parse("args:\n- serve\n- --port=8080\n").unwrap();
        let args = doc.get("args").unwrap().as_seq().unwrap();
        assert_eq!(args.len(), 2);
        assert_eq!(args[1].as_str(), Some("--port=8080"));
    }

    #[test]
    fn parses_compact_mapping_sequence_items() {
        let text = "containers:\n  - name: web\n    image: nginx:latest\n    ports:\n      - containerPort: 80\n  - name: sidecar\n    image: busybox\n";
        let doc = parse(text).unwrap();
        let containers = doc.get("containers").unwrap().as_seq().unwrap();
        assert_eq!(containers.len(), 2);
        assert_eq!(
            containers[0].get("image").unwrap().as_str(),
            Some("nginx:latest")
        );
        assert_eq!(
            containers[0].get("ports").unwrap().as_seq().unwrap()[0]
                .get("containerPort")
                .unwrap()
                .as_i64(),
            Some(80)
        );
        assert_eq!(containers[1].get("name").unwrap().as_str(), Some("sidecar"));
    }

    #[test]
    fn parses_flow_collections() {
        let doc =
            parse("emptyDir: {}\nvals: [1, 2, 3]\nsel: {app: web, tier: \"front end\"}\n").unwrap();
        assert!(doc.get("emptyDir").unwrap().as_map().unwrap().is_empty());
        assert_eq!(doc.get("vals").unwrap().as_seq().unwrap().len(), 3);
        assert_eq!(
            doc.get("sel").unwrap().get("tier").unwrap().as_str(),
            Some("front end")
        );
    }

    #[test]
    fn strips_comments_and_blank_lines() {
        let text = "# heading\nname: web  # trailing comment\n\n# another\nimage: \"nginx#1\"\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("web"));
        assert_eq!(doc.get("image").unwrap().as_str(), Some("nginx#1"));
    }

    #[test]
    fn quoted_scalars_preserve_types_as_strings() {
        let doc = parse("a: \"true\"\nb: '123'\nc: \"0.0.0.0\"\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_str(), Some("true"));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("123"));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("0.0.0.0"));
    }

    #[test]
    fn leading_zero_numbers_stay_strings() {
        let doc = parse("mode: 0755\n").unwrap();
        assert_eq!(doc.get("mode").unwrap().as_str(), Some("0755"));
    }

    #[test]
    fn multi_document_streams_split_on_separators() {
        let text = "---\nkind: Service\n---\nkind: Deployment\nspec:\n  replicas: 1\n---\n";
        let docs = parse_documents(text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("kind").unwrap().as_str(), Some("Service"));
        assert_eq!(docs[1].get("kind").unwrap().as_str(), Some("Deployment"));
    }

    #[test]
    fn empty_input_is_null_or_empty_stream() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# only comments\n").unwrap(), Value::Null);
        assert!(parse_documents("# nothing\n").unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn tabs_in_indentation_are_rejected() {
        assert!(parse("a:\n\tb: 1\n").is_err());
    }

    #[test]
    fn bad_indentation_is_rejected() {
        assert!(parse("a: 1\n   b: 2\n").is_err());
    }

    #[test]
    fn nested_sequence_items_with_block_value() {
        let text = "volumes:\n  -\n    name: data\n    emptyDir: {}\n";
        let doc = parse(text).unwrap();
        let volumes = doc.get("volumes").unwrap().as_seq().unwrap();
        assert_eq!(volumes[0].get("name").unwrap().as_str(), Some("data"));
    }

    #[test]
    fn colon_inside_value_does_not_split() {
        let doc =
            parse("image: docker.io/bitnami/nginx:1.25\nurl: http://example.com:8080/x\n").unwrap();
        assert_eq!(
            doc.get("image").unwrap().as_str(),
            Some("docker.io/bitnami/nginx:1.25")
        );
        assert_eq!(
            doc.get("url").unwrap().as_str(),
            Some("http://example.com:8080/x")
        );
    }

    #[test]
    fn escaped_characters_in_double_quotes() {
        let doc = parse("cmd: \"echo \\\"hi\\\"\\n\"\n").unwrap();
        assert_eq!(doc.get("cmd").unwrap().as_str(), Some("echo \"hi\"\n"));
    }

    #[test]
    fn realistic_pod_manifest_parses() {
        let text = r#"apiVersion: v1
kind: Pod
metadata:
  name: test-pod
  labels:
    app: demo
spec:
  initContainers:
    - name: busybox
      image: "busybox"
      command: ["ln", "-s", "/", "/mnt/data/symlink-door"]
      volumeMounts:
        - name: test-vol
          mountPath: /test
  containers:
    - name: my-container
      image: "nginx"
      volumeMounts:
        - mountPath: /test
          name: my-volume
          subPath: symlink-door
  volumes:
    - name: my-volume
      emptyDir: {}
"#;
        let doc = parse(text).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("Pod"));
        assert_eq!(
            doc.get_path(&Path::parse("spec.containers[0].volumeMounts[0].subPath").unwrap())
                .unwrap()
                .as_str(),
            Some("symlink-door")
        );
        assert_eq!(
            doc.get_path(&Path::parse("spec.initContainers[0].command").unwrap())
                .unwrap()
                .as_seq()
                .unwrap()
                .len(),
            4
        );
    }
}
