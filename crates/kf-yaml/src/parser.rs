//! Tree parser for the YAML subset used by the KubeFence reproduction.
//!
//! Supported syntax: block mappings, block sequences, plain / single-quoted /
//! double-quoted scalars, flow sequences (`[a, b]`) and flow mappings
//! (`{a: 1}`), comments, and multi-document streams separated by `---`.
//! Anchors, aliases, tags and block scalars (`|`, `>`) are not supported; the
//! manifests, values files and validators in this repository do not use them.
//!
//! Since the streaming-admission refactor this module is a thin *tree
//! builder* over the pull-based event tokenizer
//! ([`crate::events::Tokenizer`]): both the tree front end and the
//! validate-while-parse front end consume the same scanner, so they can
//! never disagree on the accepted syntax or on scalar typing.

use crate::events::{Event, Tokenizer};
use crate::value::{Mapping, Value};
use crate::Error;

/// Parse a single YAML document.
///
/// An empty (or comment-only) input parses to [`Value::Null`]. If the input
/// contains more than one document, only the first is returned; use
/// [`parse_documents`] for multi-document streams.
///
/// # Errors
///
/// Returns [`Error::Parse`] when the text does not conform to the supported
/// subset (bad indentation, unterminated quotes or flow collections, …).
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut docs = parse_documents(text)?;
    if docs.is_empty() {
        Ok(Value::Null)
    } else {
        Ok(docs.remove(0))
    }
}

/// Parse a multi-document YAML stream (documents separated by `---`).
///
/// Documents that are entirely empty are skipped, mirroring how `kubectl`
/// treats empty documents produced by Helm conditionals.
///
/// # Errors
///
/// Returns [`Error::Parse`] when any document does not conform to the
/// supported subset.
pub fn parse_documents(text: &str) -> Result<Vec<Value>, Error> {
    let mut tokenizer = Tokenizer::new(text)?;
    let mut documents = Vec::new();
    let mut builder = TreeBuilder::default();
    while let Some(event) = tokenizer.next_event()? {
        if let Some(document) = builder.feed(event) {
            documents.push(document);
        }
    }
    Ok(documents)
}

/// An under-construction container node.
#[derive(Debug)]
enum Node {
    Map {
        map: Mapping,
        /// The key whose value is currently being built.
        key: Option<String>,
    },
    Seq(Vec<Value>),
}

/// Builds [`Value`] trees from tokenizer events. Duplicate-key rejection is
/// the tokenizer's job; the builder only assembles structure. Shared with
/// the JSON front end ([`crate::json::parse_json`]), which drives it from
/// the JSON tokenizer's identical event stream.
#[derive(Debug, Default)]
pub(crate) struct TreeBuilder {
    stack: Vec<Node>,
    root: Option<Value>,
}

impl TreeBuilder {
    /// Feed one event; returns the completed document on
    /// [`Event::DocumentEnd`].
    pub(crate) fn feed(&mut self, event: Event<'_>) -> Option<Value> {
        match event {
            Event::MappingStart { .. } => self.stack.push(Node::Map {
                map: Mapping::new(),
                key: None,
            }),
            Event::SequenceStart { .. } => self.stack.push(Node::Seq(Vec::new())),
            Event::Key { name, .. } => {
                if let Some(Node::Map { key, .. }) = self.stack.last_mut() {
                    *key = Some(name.into_owned());
                }
            }
            Event::Scalar { value, .. } => self.attach(value.into_value()),
            Event::End => {
                let node = self.stack.pop().expect("events are balanced");
                let value = match node {
                    Node::Map { map, .. } => Value::Map(map),
                    Node::Seq(items) => Value::Seq(items),
                };
                self.attach(value);
            }
            Event::DocumentEnd => return Some(self.root.take().unwrap_or(Value::Null)),
        }
        None
    }

    fn attach(&mut self, value: Value) {
        match self.stack.last_mut() {
            Some(Node::Map { map, key }) => {
                map.insert(key.take().expect("key precedes value"), value);
            }
            Some(Node::Seq(items)) => items.push(value),
            None => self.root = Some(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Path;

    #[test]
    fn parses_flat_mapping() {
        let doc = parse("name: web\nreplicas: 3\nenabled: true\nratio: 0.5\nempty:\n").unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("web"));
        assert_eq!(doc.get("replicas").unwrap().as_i64(), Some(3));
        assert_eq!(doc.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(0.5));
        assert!(doc.get("empty").unwrap().is_null());
    }

    #[test]
    fn parses_nested_mappings() {
        let text = "spec:\n  template:\n    metadata:\n      labels:\n        app: nginx\n";
        let doc = parse(text).unwrap();
        assert_eq!(
            doc.get_path(&Path::parse("spec.template.metadata.labels.app").unwrap())
                .unwrap()
                .as_str(),
            Some("nginx")
        );
    }

    #[test]
    fn parses_block_sequences_of_scalars() {
        let doc = parse("ports:\n  - 80\n  - 443\n").unwrap();
        let ports = doc.get("ports").unwrap().as_seq().unwrap();
        assert_eq!(ports.len(), 2);
        assert_eq!(ports[1].as_i64(), Some(443));
    }

    #[test]
    fn parses_sequence_at_same_indent_as_key() {
        let doc = parse("args:\n- serve\n- --port=8080\n").unwrap();
        let args = doc.get("args").unwrap().as_seq().unwrap();
        assert_eq!(args.len(), 2);
        assert_eq!(args[1].as_str(), Some("--port=8080"));
    }

    #[test]
    fn parses_compact_mapping_sequence_items() {
        let text = "containers:\n  - name: web\n    image: nginx:latest\n    ports:\n      - containerPort: 80\n  - name: sidecar\n    image: busybox\n";
        let doc = parse(text).unwrap();
        let containers = doc.get("containers").unwrap().as_seq().unwrap();
        assert_eq!(containers.len(), 2);
        assert_eq!(
            containers[0].get("image").unwrap().as_str(),
            Some("nginx:latest")
        );
        assert_eq!(
            containers[0].get("ports").unwrap().as_seq().unwrap()[0]
                .get("containerPort")
                .unwrap()
                .as_i64(),
            Some(80)
        );
        assert_eq!(containers[1].get("name").unwrap().as_str(), Some("sidecar"));
    }

    #[test]
    fn parses_flow_collections() {
        let doc =
            parse("emptyDir: {}\nvals: [1, 2, 3]\nsel: {app: web, tier: \"front end\"}\n").unwrap();
        assert!(doc.get("emptyDir").unwrap().as_map().unwrap().is_empty());
        assert_eq!(doc.get("vals").unwrap().as_seq().unwrap().len(), 3);
        assert_eq!(
            doc.get("sel").unwrap().get("tier").unwrap().as_str(),
            Some("front end")
        );
    }

    #[test]
    fn strips_comments_and_blank_lines() {
        let text = "# heading\nname: web  # trailing comment\n\n# another\nimage: \"nginx#1\"\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("web"));
        assert_eq!(doc.get("image").unwrap().as_str(), Some("nginx#1"));
    }

    #[test]
    fn quoted_scalars_preserve_types_as_strings() {
        let doc = parse("a: \"true\"\nb: '123'\nc: \"0.0.0.0\"\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_str(), Some("true"));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("123"));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("0.0.0.0"));
    }

    #[test]
    fn leading_zero_numbers_stay_strings() {
        let doc = parse("mode: 0755\n").unwrap();
        assert_eq!(doc.get("mode").unwrap().as_str(), Some("0755"));
    }

    #[test]
    fn multi_document_streams_split_on_separators() {
        let text = "---\nkind: Service\n---\nkind: Deployment\nspec:\n  replicas: 1\n---\n";
        let docs = parse_documents(text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("kind").unwrap().as_str(), Some("Service"));
        assert_eq!(docs[1].get("kind").unwrap().as_str(), Some("Deployment"));
    }

    #[test]
    fn empty_input_is_null_or_empty_stream() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# only comments\n").unwrap(), Value::Null);
        assert!(parse_documents("# nothing\n").unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse("a: 1\na: 2\n").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn duplicate_flow_mapping_keys_are_rejected() {
        assert!(parse("m: {a: 1, a: 2}\n").is_err());
    }

    #[test]
    fn tabs_in_indentation_are_rejected() {
        assert!(parse("a:\n\tb: 1\n").is_err());
    }

    #[test]
    fn bad_indentation_is_rejected() {
        assert!(parse("a: 1\n   b: 2\n").is_err());
    }

    #[test]
    fn nested_sequence_items_with_block_value() {
        let text = "volumes:\n  -\n    name: data\n    emptyDir: {}\n";
        let doc = parse(text).unwrap();
        let volumes = doc.get("volumes").unwrap().as_seq().unwrap();
        assert_eq!(volumes[0].get("name").unwrap().as_str(), Some("data"));
    }

    #[test]
    fn colon_inside_value_does_not_split() {
        let doc =
            parse("image: docker.io/bitnami/nginx:1.25\nurl: http://example.com:8080/x\n").unwrap();
        assert_eq!(
            doc.get("image").unwrap().as_str(),
            Some("docker.io/bitnami/nginx:1.25")
        );
        assert_eq!(
            doc.get("url").unwrap().as_str(),
            Some("http://example.com:8080/x")
        );
    }

    #[test]
    fn escaped_characters_in_double_quotes() {
        let doc = parse("cmd: \"echo \\\"hi\\\"\\n\"\n").unwrap();
        assert_eq!(doc.get("cmd").unwrap().as_str(), Some("echo \"hi\"\n"));
    }

    #[test]
    fn escaped_backslash_before_closing_quote() {
        // Block scalars, flow scalars and comment stripping must all agree
        // that `"a\\"` is a complete string ending in one backslash.
        let doc = parse("v: \"a\\\\\"\nw: [\"C:\\\\\"]\nx: \"y\\\\\" # note\n").unwrap();
        assert_eq!(doc.get("v").unwrap().as_str(), Some("a\\"));
        assert_eq!(
            doc.get("w").unwrap().as_seq().unwrap()[0].as_str(),
            Some("C:\\")
        );
        assert_eq!(doc.get("x").unwrap().as_str(), Some("y\\"));
    }

    #[test]
    fn trailing_content_after_document_is_rejected() {
        let err = parse("hello\nworld\n").unwrap_err();
        assert!(err.to_string().contains("unexpected content"));
    }

    #[test]
    fn realistic_pod_manifest_parses() {
        let text = r#"apiVersion: v1
kind: Pod
metadata:
  name: test-pod
  labels:
    app: demo
spec:
  initContainers:
    - name: busybox
      image: "busybox"
      command: ["ln", "-s", "/", "/mnt/data/symlink-door"]
      volumeMounts:
        - name: test-vol
          mountPath: /test
  containers:
    - name: my-container
      image: "nginx"
      volumeMounts:
        - mountPath: /test
          name: my-volume
          subPath: symlink-door
  volumes:
    - name: my-volume
      emptyDir: {}
"#;
        let doc = parse(text).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("Pod"));
        assert_eq!(
            doc.get_path(&Path::parse("spec.containers[0].volumeMounts[0].subPath").unwrap())
                .unwrap()
                .as_str(),
            Some("symlink-door")
        );
        assert_eq!(
            doc.get_path(&Path::parse("spec.initContainers[0].command").unwrap())
                .unwrap()
                .as_seq()
                .unwrap()
                .len(),
            4
        );
    }
}
