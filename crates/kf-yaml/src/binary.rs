//! A compact, hand-rolled binary codec for [`Value`] trees and the framing
//! primitives the persistence plane builds on.
//!
//! The build environment has no crates-registry access — the workspace's
//! `serde` is a no-op shim — so durable formats (store snapshots, the
//! write-ahead log, the AOT-compiled validator arena) are encoded by hand
//! here, the same way the tracked bench artifacts hand-roll their JSON.
//!
//! Layout rules, all little-endian:
//!
//! * fixed-width integers: `u8`, `u32`, `u64`, `i64` (two's complement),
//!   `f64` as its IEEE-754 bit pattern (`f64::to_bits`);
//! * strings: `u32` byte length followed by UTF-8 bytes;
//! * sequences/mappings: `u32` element count followed by the elements
//!   (mapping entries are `key string, value` pairs in document order, so a
//!   round trip is **byte-identical** — [`Mapping`] preserves order);
//! * a [`Value`] is a one-byte type tag followed by the payload.
//!
//! Decoding is strict: trailing garbage, truncated payloads, unknown tags
//! and invalid UTF-8 all surface as [`BinaryError`] — never a panic — which
//! is what lets the WAL reader treat a torn tail as data to truncate rather
//! than a crash.

use std::fmt;

use crate::value::{Mapping, Value};

/// Errors surfaced while decoding binary payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// The input ended before the announced payload did.
    UnexpectedEof {
        /// How many bytes the decoder needed.
        needed: usize,
        /// How many bytes were left.
        remaining: usize,
    },
    /// An unknown type tag was read where a [`Value`] was expected.
    UnknownTag(u8),
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeds the remaining input (corrupt or hostile).
    LengthOverflow {
        /// The announced length.
        announced: usize,
        /// How many bytes were actually left.
        remaining: usize,
    },
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected EOF: needed {needed} bytes, {remaining} left")
            }
            BinaryError::UnknownTag(tag) => write!(f, "unknown value tag {tag:#04x}"),
            BinaryError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            BinaryError::LengthOverflow {
                announced,
                remaining,
            } => write!(
                f,
                "length prefix {announced} exceeds remaining input {remaining}"
            ),
        }
    }
}

impl std::error::Error for BinaryError {}

/// Result alias for binary decoding.
pub type BinaryResult<T> = std::result::Result<T, BinaryError>;

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_SEQ: u8 = 6;
const TAG_MAP: u8 = 7;

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append a [`Value`] tree (tag + payload, recursively).
pub fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => put_u8(out, TAG_NULL),
        Value::Bool(false) => put_u8(out, TAG_BOOL_FALSE),
        Value::Bool(true) => put_u8(out, TAG_BOOL_TRUE),
        Value::Int(i) => {
            put_u8(out, TAG_INT);
            put_i64(out, *i);
        }
        Value::Float(x) => {
            put_u8(out, TAG_FLOAT);
            put_u64(out, x.to_bits());
        }
        Value::Str(s) => {
            put_u8(out, TAG_STR);
            put_str(out, s);
        }
        Value::Seq(items) => {
            put_u8(out, TAG_SEQ);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Map(map) => {
            put_u8(out, TAG_MAP);
            put_u32(out, map.len() as u32);
            for (key, item) in map.iter() {
                put_str(out, key);
                put_value(out, item);
            }
        }
    }
}

/// Encode a [`Value`] into a fresh buffer.
pub fn value_to_bytes(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    put_value(&mut out, value);
    out
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

/// A cursor over a byte slice; every read advances it.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, offset: 0 }
    }

    /// How many bytes remain unread.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The absolute offset of the next unread byte.
    pub fn position(&self) -> usize {
        self.offset
    }

    /// Consume `n` bytes without interpreting them, returning the slice.
    ///
    /// # Errors
    ///
    /// [`BinaryError::UnexpectedEof`] when fewer than `n` bytes remain.
    pub fn skip(&mut self, n: usize) -> BinaryResult<&'a [u8]> {
        self.take(n)
    }

    fn take(&mut self, n: usize) -> BinaryResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(BinaryError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> BinaryResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> BinaryResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> BinaryResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> BinaryResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> BinaryResult<String> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(BinaryError::LengthOverflow {
                announced: len,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinaryError::InvalidUtf8)
    }

    /// Read a [`Value`] tree.
    pub fn get_value(&mut self) -> BinaryResult<Value> {
        match self.get_u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL_FALSE => Ok(Value::Bool(false)),
            TAG_BOOL_TRUE => Ok(Value::Bool(true)),
            TAG_INT => Ok(Value::Int(self.get_i64()?)),
            TAG_FLOAT => Ok(Value::Float(f64::from_bits(self.get_u64()?))),
            TAG_STR => Ok(Value::Str(self.get_str()?)),
            TAG_SEQ => {
                let len = self.get_u32()? as usize;
                // Each element costs at least one tag byte; reject counts the
                // remaining input cannot possibly satisfy before allocating.
                if len > self.remaining() {
                    return Err(BinaryError::LengthOverflow {
                        announced: len,
                        remaining: self.remaining(),
                    });
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(self.get_value()?);
                }
                Ok(Value::Seq(items))
            }
            TAG_MAP => {
                let len = self.get_u32()? as usize;
                if len > self.remaining() {
                    return Err(BinaryError::LengthOverflow {
                        announced: len,
                        remaining: self.remaining(),
                    });
                }
                let mut map = Mapping::new();
                for _ in 0..len {
                    let key = self.get_str()?;
                    let value = self.get_value()?;
                    map.insert(key, value);
                }
                Ok(Value::Map(map))
            }
            tag => Err(BinaryError::UnknownTag(tag)),
        }
    }
}

/// Decode a [`Value`] that must span the whole input (trailing bytes are an
/// error — frames carry exact lengths).
pub fn value_from_bytes(bytes: &[u8]) -> BinaryResult<Value> {
    let mut cursor = Cursor::new(bytes);
    let value = cursor.get_value()?;
    if !cursor.is_empty() {
        return Err(BinaryError::LengthOverflow {
            announced: bytes.len(),
            remaining: cursor.remaining(),
        });
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over a byte slice.
///
/// Used to frame WAL records and seal snapshot/arena files: a torn or
/// bit-flipped payload fails its checksum and is treated as absent, never
/// replayed.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in bytes {
        let index = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[index];
    }
    !crc
}

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(value: &Value) -> Value {
        value_from_bytes(&value_to_bytes(value)).expect("round trip decodes")
    }

    #[test]
    fn scalars_round_trip() {
        for value in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(3.5),
            Value::Float(-0.0),
            Value::Str(String::new()),
            Value::Str("replicas: ∞".to_owned()),
        ] {
            assert_eq!(round_trip(&value), value);
        }
    }

    #[test]
    fn float_bit_patterns_survive() {
        let nan = Value::Float(f64::NAN);
        let Value::Float(back) = round_trip(&nan) else {
            panic!("expected float");
        };
        assert!(back.is_nan());
    }

    #[test]
    fn parsed_manifest_round_trips_byte_identically() {
        let doc = parse(concat!(
            "apiVersion: apps/v1\n",
            "kind: Deployment\n",
            "metadata:\n",
            "  name: web\n",
            "  labels:\n",
            "    app: web\n",
            "spec:\n",
            "  replicas: 3\n",
            "  ports:\n",
            "    - 80\n",
            "    - 443\n",
        ))
        .expect("manifest parses");
        let encoded = value_to_bytes(&doc);
        let decoded = value_from_bytes(&encoded).expect("decodes");
        assert_eq!(decoded, doc);
        // Re-encoding the decoded tree reproduces the exact bytes: mapping
        // order is preserved, so the format is canonical for a given tree.
        assert_eq!(value_to_bytes(&decoded), encoded);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let doc = parse("spec:\n  replicas: 3\n").expect("parses");
        let encoded = value_to_bytes(&doc);
        for cut in 0..encoded.len() {
            let err = value_from_bytes(&encoded[..cut]);
            assert!(err.is_err(), "truncation at {cut} must not decode");
        }
    }

    #[test]
    fn unknown_tag_is_an_error_not_a_panic() {
        assert_eq!(
            value_from_bytes(&[0xFF]),
            Err(BinaryError::UnknownTag(0xFF))
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut encoded = value_to_bytes(&Value::Int(7));
        encoded.push(0);
        assert!(value_from_bytes(&encoded).is_err());
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // A sequence claiming u32::MAX elements with no payload behind it.
        let mut bytes = vec![TAG_SEQ];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            value_from_bytes(&bytes),
            Err(BinaryError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let doc = parse("metadata:\n  name: web\n").expect("parses");
        let encoded = value_to_bytes(&doc);
        let reference = crc32(&encoded);
        for bit in 0..encoded.len() * 8 {
            let mut flipped = encoded.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&flipped), reference, "flip at bit {bit} undetected");
        }
    }
}
