//! Canonical YAML emitter for [`Value`] trees.
//!
//! The emitter produces the conventional 2-space-indented block style used by
//! Kubernetes manifests; output is deterministic (mapping order is insertion
//! order) so that rendered manifests and generated validators can be compared
//! textually in tests and documentation.

use crate::value::Value;

/// Serialize a [`Value`] to YAML text.
///
/// Scalars at the document root are emitted on a single line; mappings and
/// sequences use block style with 2-space indentation. Strings are quoted
/// whenever a plain scalar would be re-interpreted as another type or break
/// parsing (empty strings, strings that look like numbers or booleans,
/// strings containing `: `, `#`, leading/trailing whitespace, …).
pub fn to_yaml(value: &Value) -> String {
    let mut out = String::new();
    match value {
        Value::Map(_) | Value::Seq(_) => emit_block(value, 0, &mut out),
        scalar => {
            out.push_str(&emit_scalar(scalar));
            out.push('\n');
        }
    }
    out
}

fn indent_str(indent: usize) -> String {
    " ".repeat(indent)
}

fn emit_block(value: &Value, indent: usize, out: &mut String) {
    match value {
        Value::Map(map) => {
            if map.is_empty() {
                out.push_str(&indent_str(indent));
                out.push_str("{}\n");
                return;
            }
            for (k, v) in map.iter() {
                out.push_str(&indent_str(indent));
                out.push_str(&emit_key(k));
                out.push(':');
                emit_entry_value(v, indent, out);
            }
        }
        Value::Seq(seq) => {
            if seq.is_empty() {
                out.push_str(&indent_str(indent));
                out.push_str("[]\n");
                return;
            }
            for item in seq {
                emit_seq_item(item, indent, out);
            }
        }
        scalar => {
            out.push_str(&indent_str(indent));
            out.push_str(&emit_scalar(scalar));
            out.push('\n');
        }
    }
}

/// Emit the value of a `key:` entry whose key was written at `indent`.
fn emit_entry_value(value: &Value, indent: usize, out: &mut String) {
    emit_entry_value_at(value, indent, out);
}

/// Emit one `- item` element of a block sequence whose dashes sit at column
/// `indent` — exactly the bytes [`to_yaml`] produces for that element inside
/// an enclosing sequence. Together with [`emit_entry`] this is the streaming
/// serializer surface: callers render collection envelopes around borrowed
/// subtrees one element at a time, without ever materializing an owned
/// document tree.
pub fn emit_seq_item(item: &Value, indent: usize, out: &mut String) {
    out.push_str(&indent_str(indent));
    out.push('-');
    match item {
        Value::Map(m) if !m.is_empty() => {
            // Compact form: first key on the dash line, remaining
            // keys at the same column.
            let mut iter = m.iter();
            let (k0, v0) = iter.next().expect("non-empty");
            out.push(' ');
            emit_entry_inline(k0, v0, indent + 2, out);
            for (k, v) in iter {
                emit_entry(k, v, indent + 2, out);
            }
        }
        Value::Seq(s) if !s.is_empty() => {
            out.push('\n');
            emit_block(item, indent + 2, out);
        }
        Value::Map(_) => out.push_str(" {}\n"),
        Value::Seq(_) => out.push_str(" []\n"),
        scalar => {
            out.push(' ');
            out.push_str(&emit_scalar(scalar));
            out.push('\n');
        }
    }
}

/// Emit one `key: value` mapping entry with the key at column `indent` —
/// exactly the bytes [`to_yaml`] produces for that entry inside an enclosing
/// mapping (nested containers in block style two columns deeper).
pub fn emit_entry(key: &str, value: &Value, indent: usize, out: &mut String) {
    out.push_str(&indent_str(indent));
    emit_entry_inline(key, value, indent, out);
}

/// [`emit_entry`] for callers that already wrote the current line's prefix
/// (e.g. a sequence dash): appends `key:` plus the value, with nested
/// blocks indented relative to `key_indent` (the column the key sits at).
pub fn emit_entry_inline(key: &str, value: &Value, key_indent: usize, out: &mut String) {
    out.push_str(&emit_key(key));
    out.push(':');
    emit_entry_value_at(value, key_indent, out);
}

/// Emit the value of a mapping entry whose key sits at column `key_indent`.
fn emit_entry_value_at(value: &Value, key_indent: usize, out: &mut String) {
    match value {
        Value::Map(m) if !m.is_empty() => {
            out.push('\n');
            emit_block(value, key_indent + 2, out);
        }
        Value::Seq(s) if !s.is_empty() => {
            out.push('\n');
            emit_block(value, key_indent + 2, out);
        }
        Value::Map(_) => out.push_str(" {}\n"),
        Value::Seq(_) => out.push_str(" []\n"),
        scalar => {
            out.push(' ');
            out.push_str(&emit_scalar(scalar));
            out.push('\n');
        }
    }
}

fn emit_key(key: &str) -> String {
    if key_is_plain(key) {
        key.to_owned()
    } else {
        quote(key)
    }
}

fn key_is_plain(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '/'))
        && !key.starts_with('-')
}

fn emit_scalar(value: &Value) -> String {
    match value {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() {
                // Keep a decimal point so the value round-trips as a float.
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        Value::Str(s) => {
            if string_is_plain(s) {
                s.clone()
            } else {
                quote(s)
            }
        }
        Value::Seq(_) | Value::Map(_) => unreachable!("containers are emitted in block style"),
    }
}

/// Whether a string can be emitted without quotes and still parse back as the
/// same string.
fn string_is_plain(s: &str) -> bool {
    if s.is_empty()
        || s != s.trim()
        || s.contains('\n')
        || s.contains('\t')
        || s.contains(": ")
        || s.ends_with(':')
        || s.contains(" #")
        || s.contains('\'')
        || s.contains('"')
    {
        return false;
    }
    let first = s.chars().next().expect("non-empty");
    if matches!(
        first,
        '-' | '?'
            | ':'
            | ','
            | '['
            | ']'
            | '{'
            | '}'
            | '#'
            | '&'
            | '*'
            | '!'
            | '|'
            | '>'
            | '%'
            | '@'
            | '`'
    ) {
        return false;
    }
    // Values that would parse as a different scalar type must be quoted.
    if matches!(
        s,
        "~" | "null"
            | "Null"
            | "NULL"
            | "true"
            | "True"
            | "TRUE"
            | "false"
            | "False"
            | "FALSE"
            | "{}"
            | "[]"
    ) {
        return false;
    }
    if s.parse::<i64>().is_ok() || s.parse::<f64>().is_ok() {
        return false;
    }
    true
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, Mapping, Path, Value};

    fn roundtrip(v: &Value) -> Value {
        parse(&to_yaml(v)).expect("emitted YAML must re-parse")
    }

    #[test]
    fn emits_scalars() {
        assert_eq!(to_yaml(&Value::Null), "null\n");
        assert_eq!(to_yaml(&Value::Bool(false)), "false\n");
        assert_eq!(to_yaml(&Value::Int(42)), "42\n");
        assert_eq!(to_yaml(&Value::Float(2.0)), "2.0\n");
        assert_eq!(to_yaml(&Value::from("plain")), "plain\n");
    }

    #[test]
    fn quotes_ambiguous_strings() {
        assert_eq!(to_yaml(&Value::from("true")), "\"true\"\n");
        assert_eq!(to_yaml(&Value::from("123")), "\"123\"\n");
        assert_eq!(to_yaml(&Value::from("")), "\"\"\n");
        assert_eq!(to_yaml(&Value::from("a: b")), "\"a: b\"\n");
    }

    #[test]
    fn emits_nested_structures() {
        let mut inner = Mapping::new();
        inner.insert("name", Value::from("web"));
        inner.insert("image", Value::from("nginx:latest"));
        let mut spec = Mapping::new();
        spec.insert("replicas", Value::from(2));
        spec.insert("containers", Value::Seq(vec![Value::Map(inner)]));
        let mut root = Mapping::new();
        root.insert("spec", Value::Map(spec));
        let doc = Value::Map(root);
        let text = to_yaml(&doc);
        assert!(text.contains("spec:\n  replicas: 2\n  containers:\n    - name: web\n"));
        assert!(roundtrip(&doc).loosely_equals(&doc));
    }

    #[test]
    fn empty_containers_use_flow_style() {
        let mut root = Mapping::new();
        root.insert("emptyDir", Value::empty_map());
        root.insert("args", Value::empty_seq());
        let doc = Value::Map(root);
        let text = to_yaml(&doc);
        assert!(text.contains("emptyDir: {}"));
        assert!(text.contains("args: []"));
        assert!(roundtrip(&doc).loosely_equals(&doc));
    }

    #[test]
    fn sequences_of_scalars_and_maps_roundtrip() {
        let doc = parse(
            "spec:\n  ports:\n    - 80\n    - 443\n  containers:\n    - name: a\n      env:\n        - name: X\n          value: \"1\"\n    - name: b\n",
        )
        .unwrap();
        let rt = roundtrip(&doc);
        assert!(rt.loosely_equals(&doc));
        assert_eq!(
            rt.get_path(&Path::parse("spec.containers[0].env[0].value").unwrap())
                .unwrap()
                .as_str(),
            Some("1")
        );
    }

    #[test]
    fn nested_sequences_roundtrip() {
        let doc = Value::Seq(vec![
            Value::Seq(vec![Value::from(1), Value::from(2)]),
            Value::Seq(vec![Value::from(3)]),
        ]);
        assert!(roundtrip(&doc).loosely_equals(&doc));
    }

    #[test]
    fn realistic_manifest_roundtrips_exactly() {
        let text = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx
  labels:
    app.kubernetes.io/name: nginx
spec:
  replicas: 2
  selector:
    matchLabels:
      app: nginx
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:1.25
          ports:
            - containerPort: 8080
          securityContext:
            runAsNonRoot: true
            allowPrivilegeEscalation: false
      volumes:
        - name: tmp
          emptyDir: {}
"#;
        let doc = parse(text).unwrap();
        let rt = roundtrip(&doc);
        assert!(rt.loosely_equals(&doc));
    }
}
