//! Wire-format identification for raw request bodies.

/// The serialization format of a raw (wire-bytes) request body.
///
/// Kubernetes clients overwhelmingly submit JSON (`kubectl` converts
/// manifests before `POST`ing them), while configuration files and Helm
/// output are YAML. The admission plane accepts both through the same
/// event model: [`crate::events::Tokenizer`] for YAML,
/// [`crate::json::JsonTokenizer`] for JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BodyFormat {
    /// The body is YAML.
    #[default]
    Yaml,
    /// The body is JSON.
    Json,
    /// Detect the format from the first non-whitespace byte: `{` or `[`
    /// opens a JSON document, anything else is treated as YAML. (A YAML
    /// document rooted in a flow collection is indistinguishable from JSON
    /// at that point; senders of such bodies should declare the format
    /// explicitly.)
    Auto,
}

impl BodyFormat {
    /// Detect the format of a body, per the [`BodyFormat::Auto`] rule.
    /// Always returns [`BodyFormat::Yaml`] or [`BodyFormat::Json`].
    pub fn detect(text: &str) -> BodyFormat {
        match text.trim_start().as_bytes().first() {
            Some(b'{') | Some(b'[') => BodyFormat::Json,
            _ => BodyFormat::Yaml,
        }
    }

    /// Resolve `Auto` against a concrete body; `Yaml` and `Json` are
    /// returned unchanged.
    pub fn resolve(self, text: &str) -> BodyFormat {
        match self {
            BodyFormat::Auto => BodyFormat::detect(text),
            fixed => fixed,
        }
    }

    /// Short lowercase name of the format (for messages and bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            BodyFormat::Yaml => "yaml",
            BodyFormat::Json => "json",
            BodyFormat::Auto => "auto",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_keys_on_the_first_significant_byte() {
        assert_eq!(BodyFormat::detect("{\"kind\": \"Pod\"}"), BodyFormat::Json);
        assert_eq!(BodyFormat::detect("  \n\t[1, 2]"), BodyFormat::Json);
        assert_eq!(BodyFormat::detect("kind: Pod\n"), BodyFormat::Yaml);
        assert_eq!(BodyFormat::detect(""), BodyFormat::Yaml);
        assert_eq!(
            BodyFormat::detect("# comment\nkind: Pod\n"),
            BodyFormat::Yaml
        );
    }

    #[test]
    fn resolve_only_rewrites_auto() {
        assert_eq!(BodyFormat::Yaml.resolve("{}"), BodyFormat::Yaml);
        assert_eq!(BodyFormat::Json.resolve("a: 1"), BodyFormat::Json);
        assert_eq!(BodyFormat::Auto.resolve("{}"), BodyFormat::Json);
        assert_eq!(BodyFormat::Auto.resolve("a: 1"), BodyFormat::Yaml);
    }
}
