//! Wire-format identification for raw request bodies.

/// The serialization format of a raw (wire-bytes) request body.
///
/// Kubernetes clients overwhelmingly submit JSON (`kubectl` converts
/// manifests before `POST`ing them), while configuration files and Helm
/// output are YAML. The admission plane accepts both through the same
/// event model: [`crate::events::Tokenizer`] for YAML,
/// [`crate::json::JsonTokenizer`] for JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BodyFormat {
    /// The body is YAML.
    #[default]
    Yaml,
    /// The body is JSON.
    Json,
    /// Detect the format from the first non-whitespace byte: `{` or `[`
    /// opens a JSON document, anything else is treated as YAML. (A YAML
    /// document rooted in a flow collection is indistinguishable from JSON
    /// at that point; senders of such bodies should declare the format
    /// explicitly.)
    Auto,
}

impl BodyFormat {
    /// Detect the format of a body, per the [`BodyFormat::Auto`] rule.
    /// Always returns [`BodyFormat::Yaml`] or [`BodyFormat::Json`].
    pub fn detect(text: &str) -> BodyFormat {
        match text.trim_start().as_bytes().first() {
            Some(b'{') | Some(b'[') => BodyFormat::Json,
            _ => BodyFormat::Yaml,
        }
    }

    /// Resolve `Auto` against a concrete body; `Yaml` and `Json` are
    /// returned unchanged.
    pub fn resolve(self, text: &str) -> BodyFormat {
        match self {
            BodyFormat::Auto => BodyFormat::detect(text),
            fixed => fixed,
        }
    }

    /// Derive the wire format from an HTTP `Content-Type` header value, the
    /// way the real API server negotiates request encodings. Media-type
    /// parameters (`; charset=utf-8`, the watch-stream variants
    /// `application/json;stream=watch` / `application/yaml;stream=watch`)
    /// are ignored for format selection, as are case and surrounding
    /// whitespace. Returns `None` for media types that name neither
    /// encoding — callers fall back to [`BodyFormat::Auto`] detection.
    pub fn from_content_type(content_type: &str) -> Option<BodyFormat> {
        let media_type = content_type
            .split(';')
            .next()
            .unwrap_or("")
            .trim()
            .to_ascii_lowercase();
        match media_type.as_str() {
            "application/json" | "text/json" => Some(BodyFormat::Json),
            "application/yaml" | "application/x-yaml" | "text/yaml" | "text/x-yaml" => {
                Some(BodyFormat::Yaml)
            }
            // Structured-syntax suffixes (`application/apply-patch+yaml`,
            // `application/merge-patch+json`, …) name the encoding too.
            _ => match media_type.rsplit('+').next() {
                Some("json") => Some(BodyFormat::Json),
                Some("yaml") => Some(BodyFormat::Yaml),
                _ => None,
            },
        }
    }

    /// Short lowercase name of the format (for messages and bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            BodyFormat::Yaml => "yaml",
            BodyFormat::Json => "json",
            BodyFormat::Auto => "auto",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_keys_on_the_first_significant_byte() {
        assert_eq!(BodyFormat::detect("{\"kind\": \"Pod\"}"), BodyFormat::Json);
        assert_eq!(BodyFormat::detect("  \n\t[1, 2]"), BodyFormat::Json);
        assert_eq!(BodyFormat::detect("kind: Pod\n"), BodyFormat::Yaml);
        assert_eq!(BodyFormat::detect(""), BodyFormat::Yaml);
        assert_eq!(
            BodyFormat::detect("# comment\nkind: Pod\n"),
            BodyFormat::Yaml
        );
    }

    #[test]
    fn content_types_negotiate_the_wire_format() {
        assert_eq!(
            BodyFormat::from_content_type("application/json"),
            Some(BodyFormat::Json)
        );
        assert_eq!(
            BodyFormat::from_content_type("application/yaml"),
            Some(BodyFormat::Yaml)
        );
        // Parameters — including the watch-stream variants — do not change
        // the encoding.
        assert_eq!(
            BodyFormat::from_content_type("application/json;stream=watch"),
            Some(BodyFormat::Json)
        );
        assert_eq!(
            BodyFormat::from_content_type("application/yaml; stream=watch"),
            Some(BodyFormat::Yaml)
        );
        assert_eq!(
            BodyFormat::from_content_type("Application/JSON; charset=utf-8"),
            Some(BodyFormat::Json)
        );
        assert_eq!(
            BodyFormat::from_content_type("  text/x-yaml "),
            Some(BodyFormat::Yaml)
        );
        // Suffix-named encodings.
        assert_eq!(
            BodyFormat::from_content_type("application/apply-patch+yaml"),
            Some(BodyFormat::Yaml)
        );
        assert_eq!(
            BodyFormat::from_content_type("application/merge-patch+json"),
            Some(BodyFormat::Json)
        );
        // Unknown media types defer to Auto detection.
        assert_eq!(
            BodyFormat::from_content_type("application/vnd.kubernetes.protobuf"),
            None
        );
        assert_eq!(BodyFormat::from_content_type(""), None);
    }

    #[test]
    fn resolve_only_rewrites_auto() {
        assert_eq!(BodyFormat::Yaml.resolve("{}"), BodyFormat::Yaml);
        assert_eq!(BodyFormat::Json.resolve("a: 1"), BodyFormat::Json);
        assert_eq!(BodyFormat::Auto.resolve("{}"), BodyFormat::Json);
        assert_eq!(BodyFormat::Auto.resolve("a: 1"), BodyFormat::Yaml);
    }
}
