//! Property-based tests: every document the emitter can produce must re-parse
//! to a structurally equivalent document, and path operations must be
//! consistent with each other.
//!
//! The build environment has no crates-registry access, so instead of the
//! `proptest` crate these properties run over a hand-rolled generator: a
//! seeded deterministic RNG produces random documents of bounded depth and
//! width, in the same shapes Kubernetes manifests use. Failures print the
//! case number and the offending document, so a reproduction is one seed
//! away.

use kf_yaml::{parse, to_yaml, Mapping, Path, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cases per property; each case draws a fresh document from the generator.
const CASES: usize = 256;

/// A mapping key in the shape Kubernetes manifests use:
/// `[a-zA-Z][a-zA-Z0-9_-]{0,12}`.
fn gen_key(rng: &mut SmallRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
    let len = rng.gen_range(0usize..13);
    let mut key = String::new();
    key.push(FIRST[rng.gen_range(0usize..FIRST.len())] as char);
    for _ in 0..len {
        key.push(REST[rng.gen_range(0usize..REST.len())] as char);
    }
    key
}

/// A printable string scalar (no exotic whitespace), trimmed as the original
/// proptest strategy did.
fn gen_plain_string(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(0usize..25);
    let text: String = (0..len)
        .map(|_| (rng.gen_range(0x20u64..0x7f) as u8) as char)
        .collect();
    text.trim().to_string()
}

fn gen_scalar(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0usize..5) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0usize..2) == 1),
        2 => Value::Int(rng.gen_range(-1_000_000i64..1_000_000)),
        3 => {
            let x = rng.gen_range(-1000.0f64..1000.0);
            Value::Float((x * 100.0).round() / 100.0)
        }
        _ => Value::Str(gen_plain_string(rng)),
    }
}

/// A random document of bounded depth (≤3 nested containers) and width (≤5
/// children per container), matching the original proptest strategy.
fn gen_value(rng: &mut SmallRng, depth: usize) -> Value {
    // Deeper levels become increasingly scalar-heavy and bottom out at
    // depth 0.
    if depth == 0 || rng.gen_range(0usize..4) == 0 {
        return gen_scalar(rng);
    }
    if rng.gen_range(0usize..2) == 0 {
        let len = rng.gen_range(0usize..5);
        Value::Seq((0..len).map(|_| gen_value(rng, depth - 1)).collect())
    } else {
        let len = rng.gen_range(0usize..5);
        let mut map = Mapping::new();
        for _ in 0..len {
            map.insert(gen_key(rng), gen_value(rng, depth - 1));
        }
        Value::Map(map)
    }
}

/// Run a property over `CASES` generated documents with a per-property seed.
fn for_each_case(seed: u64, mut property: impl FnMut(usize, &mut SmallRng)) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..CASES {
        property(case, &mut rng);
    }
}

/// Emit → parse is the identity (up to int/float looseness).
#[test]
fn emit_parse_roundtrip() {
    for_each_case(0xA11CE, |case, rng| {
        let doc = gen_value(rng, 3);
        let text = to_yaml(&doc);
        let reparsed = parse(&text).expect("emitted YAML must parse");
        assert!(
            reparsed.loosely_equals(&doc),
            "case {case}: roundtrip mismatch:\n{text}"
        );
    });
}

/// Every leaf reported by `leaves()` is reachable through `get_path`.
#[test]
fn leaves_are_addressable() {
    for_each_case(0xB0B, |case, rng| {
        let doc = gen_value(rng, 3);
        for (path, leaf) in doc.leaves() {
            let found = doc.get_path(&path);
            assert!(
                found.is_some(),
                "case {case}: leaf path {path} did not resolve"
            );
            assert!(
                found.unwrap().loosely_equals(leaf),
                "case {case}: leaf mismatch at {path}"
            );
        }
    });
}

/// `set_path` followed by `get_path` returns the value just written.
#[test]
fn set_then_get_is_consistent() {
    for_each_case(0xC0FFEE, |case, rng| {
        let mut doc = gen_value(rng, 3);
        let key_count = rng.gen_range(1usize..4);
        let keys: Vec<String> = (0..key_count).map(|_| gen_key(rng)).collect();
        let scalar = gen_scalar(rng);
        // Only exercise paths whose prefixes are maps or absent, which is the
        // contract under which set_path succeeds.
        let path = Path::parse(&keys.join(".")).unwrap();
        if doc.set_path(&path, scalar.clone()).is_ok() {
            let read = doc
                .get_path(&path)
                .expect("value just written must resolve");
            assert!(
                read.loosely_equals(&scalar),
                "case {case}: read-after-write mismatch at {path}"
            );
        }
    });
}

/// Merging a document into itself is idempotent.
#[test]
fn merge_is_idempotent() {
    for_each_case(0xD00D, |case, rng| {
        let doc = gen_value(rng, 3);
        let mut merged = doc.clone();
        merged.merge_from(&doc);
        assert!(
            merged.loosely_equals(&doc),
            "case {case}: self-merge changed the document"
        );
    });
}

/// Field-path notation never contains concrete indices: every `[` is part of
/// the collapsed `[]` marker.
#[test]
fn field_paths_have_no_indices() {
    for_each_case(0xFACE, |case, rng| {
        let doc = gen_value(rng, 3);
        for field in doc.field_paths() {
            for (i, c) in field.char_indices() {
                if c == '[' {
                    assert_eq!(
                        field.as_bytes().get(i + 1),
                        Some(&b']'),
                        "case {case}: field path `{field}` contains a concrete index"
                    );
                }
            }
        }
    });
}

/// Parsing never panics on emitted output concatenated as a stream.
#[test]
fn multi_document_stream_parses() {
    for_each_case(0x5EED, |case, rng| {
        let count = rng.gen_range(1usize..4);
        let docs: Vec<Value> = (0..count).map(|_| gen_value(rng, 3)).collect();
        let mut text = String::new();
        for d in &docs {
            text.push_str("---\n");
            text.push_str(&to_yaml(d));
        }
        let parsed = kf_yaml::parse_documents(&text).expect("stream must parse");
        assert_eq!(
            parsed.len(),
            docs.len(),
            "case {case}: document count changed"
        );
        for (original, reparsed) in docs.iter().zip(parsed.iter()) {
            assert!(
                reparsed.loosely_equals(original),
                "case {case}: stream roundtrip mismatch"
            );
        }
    });
}
