//! Property-based tests: every document the emitter can produce must re-parse
//! to a structurally equivalent document, and path operations must be
//! consistent with each other.

use kf_yaml::{parse, to_yaml, Mapping, Path, Value};
use proptest::prelude::*;

/// Strategy producing mapping keys in the shape Kubernetes manifests use.
fn key_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,12}"
}

/// Strategy producing string scalars (printable, no exotic whitespace).
fn plain_string() -> impl Strategy<Value = String> {
    "[ -~]{0,24}".prop_map(|s| s.trim().to_string())
}

fn scalar_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(|x| Value::Float((x * 100.0).round() / 100.0)),
        plain_string().prop_map(Value::Str),
    ]
}

/// Recursive strategy for arbitrary documents of bounded depth and width.
fn value_strategy() -> impl Strategy<Value = Value> {
    scalar_strategy().prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Seq),
            prop::collection::vec((key_strategy(), inner), 0..5).prop_map(|pairs| {
                let mut m = Mapping::new();
                for (k, v) in pairs {
                    m.insert(k, v);
                }
                Value::Map(m)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Emit → parse is the identity (up to int/float looseness).
    #[test]
    fn emit_parse_roundtrip(doc in value_strategy()) {
        let text = to_yaml(&doc);
        let reparsed = parse(&text).expect("emitted YAML must parse");
        prop_assert!(reparsed.loosely_equals(&doc), "roundtrip mismatch:\n{text}");
    }

    /// Every leaf reported by `leaves()` is reachable through `get_path`.
    #[test]
    fn leaves_are_addressable(doc in value_strategy()) {
        for (path, leaf) in doc.leaves() {
            let found = doc.get_path(&path);
            prop_assert!(found.is_some(), "leaf path {path} did not resolve");
            prop_assert!(found.unwrap().loosely_equals(leaf));
        }
    }

    /// `set_path` followed by `get_path` returns the value just written.
    #[test]
    fn set_then_get_is_consistent(
        doc in value_strategy(),
        keys in prop::collection::vec(key_strategy(), 1..4),
        scalar in scalar_strategy(),
    ) {
        let mut doc = doc;
        // Only exercise paths whose prefixes are maps or absent, which is the
        // contract under which set_path succeeds.
        let path = Path::parse(&keys.join(".")).unwrap();
        if doc.set_path(&path, scalar.clone()).is_ok() {
            let read = doc.get_path(&path).expect("value just written must resolve");
            prop_assert!(read.loosely_equals(&scalar));
        }
    }

    /// Merging a document into itself is idempotent.
    #[test]
    fn merge_is_idempotent(doc in value_strategy()) {
        let mut merged = doc.clone();
        merged.merge_from(&doc);
        prop_assert!(merged.loosely_equals(&doc));
    }

    /// Field-path notation never contains concrete indices: every `[` is part
    /// of the collapsed `[]` marker.
    #[test]
    fn field_paths_have_no_indices(doc in value_strategy()) {
        for field in doc.field_paths() {
            for (i, c) in field.char_indices() {
                if c == '[' {
                    prop_assert_eq!(field.as_bytes().get(i + 1), Some(&b']'),
                        "field path `{}` contains a concrete index", field);
                }
            }
        }
    }

    /// Parsing never panics on emitted output concatenated as a stream.
    #[test]
    fn multi_document_stream_parses(docs in prop::collection::vec(value_strategy(), 1..4)) {
        let mut text = String::new();
        for d in &docs {
            text.push_str("---\n");
            text.push_str(&to_yaml(d));
        }
        let parsed = kf_yaml::parse_documents(&text).expect("stream must parse");
        prop_assert_eq!(parsed.len(), docs.len());
        for (original, reparsed) in docs.iter().zip(parsed.iter()) {
            prop_assert!(reparsed.loosely_equals(original));
        }
    }
}
