//! Chart rendering: the `helm template` equivalent.

use kf_yaml::Value;

use crate::template::{build_context, ReleaseInfo, TemplateEngine};
use crate::{Chart, Error, Result};

/// One rendered manifest: the document plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedManifest {
    /// Name of the template file that produced the document.
    pub template: String,
    /// The parsed manifest document.
    pub document: Value,
}

impl RenderedManifest {
    /// The manifest `kind`, if present.
    pub fn kind(&self) -> Option<&str> {
        self.document.get("kind").and_then(Value::as_str)
    }
}

/// Render a chart with optional user-supplied value overrides, returning the
/// parsed manifests in template order.
///
/// This mirrors `helm template <release> <chart> --values overrides.yaml`:
/// defaults and overrides are merged, helper templates are registered, every
/// manifest template is rendered, and empty documents (e.g. produced by
/// `if` guards) are dropped.
///
/// # Errors
///
/// Propagates template syntax errors, evaluation errors, and YAML errors for
/// templates that render to invalid documents.
pub fn render_chart(
    chart: &Chart,
    overrides: Option<&Value>,
    release_name: &str,
) -> Result<Vec<RenderedManifest>> {
    render_chart_in_namespace(chart, overrides, release_name, "default")
}

/// [`render_chart`] with an explicit target namespace.
///
/// # Errors
///
/// Same as [`render_chart`].
pub fn render_chart_in_namespace(
    chart: &Chart,
    overrides: Option<&Value>,
    release_name: &str,
    namespace: &str,
) -> Result<Vec<RenderedManifest>> {
    let values = chart.values().merged_with(overrides);
    let release = ReleaseInfo::new(release_name, namespace);
    let context = build_context(&values, &release, chart.metadata());

    let mut engine = TemplateEngine::new();
    for helper in chart.helper_templates() {
        engine.register_helpers(&helper.source, &helper.name)?;
    }

    let mut manifests = Vec::new();
    for template in chart.manifest_templates() {
        let rendered = engine.render(&template.source, &template.name, &context)?;
        let documents = kf_yaml::parse_documents(&rendered).map_err(|e| Error::InvalidOutput {
            template: template.name.clone(),
            message: format!("{e}\n--- rendered output ---\n{rendered}"),
        })?;
        for document in documents {
            if document.is_null() {
                continue;
            }
            manifests.push(RenderedManifest {
                template: template.name.clone(),
                document,
            });
        }
    }
    Ok(manifests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChartMetadata, TemplateFile, ValuesFile};
    use kf_yaml::Path;

    fn demo_chart() -> Chart {
        let values = ValuesFile::parse(
            r#"replicaCount: 2
image:
  repository: docker.io/bitnami/nginx
  tag: 1.25.3
service:
  enabled: true
  port: 8080
metrics:
  enabled: false
"#,
        )
        .unwrap();
        let helpers = TemplateFile::new(
            "_helpers.tpl",
            r#"{{- define "demo.fullname" -}}
{{ .Release.Name }}-{{ .Chart.Name }}
{{- end -}}"#,
        );
        let deployment = TemplateFile::new(
            "deployment.yaml",
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ include "demo.fullname" . }}
spec:
  replicas: {{ .Values.replicaCount }}
  template:
    spec:
      containers:
        - name: {{ .Chart.Name }}
          image: "{{ .Values.image.repository }}:{{ .Values.image.tag }}"
"#,
        );
        let service = TemplateFile::new(
            "service.yaml",
            r#"{{- if .Values.service.enabled }}
apiVersion: v1
kind: Service
metadata:
  name: {{ include "demo.fullname" . }}
spec:
  ports:
    - port: {{ .Values.service.port }}
{{- end }}
"#,
        );
        let metrics = TemplateFile::new(
            "metrics.yaml",
            r#"{{- if .Values.metrics.enabled }}
apiVersion: v1
kind: Service
metadata:
  name: {{ include "demo.fullname" . }}-metrics
{{- end }}
"#,
        );
        Chart::new(
            ChartMetadata::new("demo", "1.0.0"),
            values,
            vec![helpers, deployment, service, metrics],
        )
    }

    #[test]
    fn renders_enabled_templates_and_skips_disabled_ones() {
        let manifests = render_chart(&demo_chart(), None, "prod").unwrap();
        let kinds: Vec<_> = manifests
            .iter()
            .filter_map(RenderedManifest::kind)
            .collect();
        assert_eq!(kinds, vec!["Deployment", "Service"]);
    }

    #[test]
    fn values_flow_into_rendered_documents() {
        let manifests = render_chart(&demo_chart(), None, "prod").unwrap();
        let deployment = &manifests[0].document;
        assert_eq!(
            deployment
                .get_path(&Path::parse("metadata.name").unwrap())
                .unwrap()
                .as_str(),
            Some("prod-demo")
        );
        assert_eq!(
            deployment
                .get_path(&Path::parse("spec.template.spec.containers[0].image").unwrap())
                .unwrap()
                .as_str(),
            Some("docker.io/bitnami/nginx:1.25.3")
        );
    }

    #[test]
    fn overrides_toggle_conditional_templates() {
        let overrides =
            kf_yaml::parse("metrics:\n  enabled: true\nservice:\n  enabled: false\n").unwrap();
        let manifests = render_chart(&demo_chart(), Some(&overrides), "prod").unwrap();
        let kinds: Vec<_> = manifests
            .iter()
            .filter_map(RenderedManifest::kind)
            .collect();
        assert_eq!(kinds, vec!["Deployment", "Service"]);
        assert_eq!(
            manifests[1]
                .document
                .get_path(&Path::parse("metadata.name").unwrap())
                .unwrap()
                .as_str(),
            Some("prod-demo-metrics")
        );
    }

    #[test]
    fn invalid_rendered_yaml_is_reported_with_template_name() {
        let chart = Chart::new(
            ChartMetadata::new("bad", "0.1.0"),
            ValuesFile::parse("{}").unwrap(),
            vec![TemplateFile::new("broken.yaml", "a: 1\n   b: 2\n")],
        );
        let err = render_chart(&chart, None, "x").unwrap_err();
        assert!(err.to_string().contains("broken.yaml"));
    }
}
