//! The chart's default values file, including enumeration annotations.
//!
//! The paper's schema-generation phase (Figure 7) turns the default values of
//! a chart into a *values schema*: every static value becomes a type
//! placeholder, and enumerative fields become the list of their valid options,
//! "extracted from annotations in the values file". Real charts document those
//! options in comments next to the field (the MLflow example in the paper uses
//! `# 'standalone' or 'repl'`). This module parses the values document *and*
//! those option annotations.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use kf_yaml::Value;

use crate::{Error, Result};

/// An enumeration annotation attached to a values field: the list of valid
/// options the chart documents for that field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnumAnnotation {
    /// Dotted path of the annotated field inside the values document.
    pub path: String,
    /// The documented options.
    pub options: Vec<Value>,
}

/// A parsed `values.yaml`: the default values document plus the enumeration
/// annotations found in its comments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValuesFile {
    defaults: Value,
    annotations: BTreeMap<String, Vec<Value>>,
}

impl ValuesFile {
    /// Parse a values file from YAML text.
    ///
    /// Enumeration annotations are comment lines of the form
    /// `# @options: a | b | c` (or comma-separated) placed immediately above
    /// the annotated field, mirroring how upstream charts document valid
    /// options in comments.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Values`] when the YAML cannot be parsed.
    pub fn parse(text: &str) -> Result<Self> {
        let defaults = kf_yaml::parse(text).map_err(|e| Error::Values {
            message: e.to_string(),
        })?;
        let annotations = extract_annotations(text);
        Ok(ValuesFile {
            defaults,
            annotations,
        })
    }

    /// Build from an already-parsed document (no annotations).
    pub fn from_value(defaults: Value) -> Self {
        ValuesFile {
            defaults,
            annotations: BTreeMap::new(),
        }
    }

    /// The default values document.
    pub fn defaults(&self) -> &Value {
        &self.defaults
    }

    /// The enumeration annotations, keyed by dotted field path.
    pub fn annotations(&self) -> &BTreeMap<String, Vec<Value>> {
        &self.annotations
    }

    /// The annotation for a specific field path, if any.
    pub fn options_for(&self, path: &str) -> Option<&[Value]> {
        self.annotations.get(path).map(Vec::as_slice)
    }

    /// All annotations as [`EnumAnnotation`] records.
    pub fn enum_annotations(&self) -> Vec<EnumAnnotation> {
        self.annotations
            .iter()
            .map(|(path, options)| EnumAnnotation {
                path: path.clone(),
                options: options.clone(),
            })
            .collect()
    }

    /// The default values with a user override document merged on top
    /// (Helm `--values` semantics: maps merge recursively, everything else is
    /// replaced).
    pub fn merged_with(&self, overrides: Option<&Value>) -> Value {
        let mut merged = self.defaults.clone();
        if let Some(overrides) = overrides {
            merged.merge_from(overrides);
        }
        merged
    }
}

/// Scan the raw text for `# @options:` annotations and associate each with the
/// dotted path of the field that follows it.
fn extract_annotations(text: &str) -> BTreeMap<String, Vec<Value>> {
    let mut out = BTreeMap::new();
    let mut pending: Option<Vec<Value>> = None;
    // Stack of (indent, key) giving the dotted path of the current position.
    let mut stack: Vec<(usize, String)> = Vec::new();

    for raw in text.lines() {
        let trimmed = raw.trim_start();
        let indent = raw.len() - trimmed.len();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(list) = rest.strip_prefix("@options:") {
                pending = Some(parse_options(list));
            }
            continue;
        }
        // A list item cannot carry an annotation target in our charts.
        if trimmed.starts_with('-') {
            pending = None;
            continue;
        }
        let Some((key, _rest)) = split_key(trimmed) else {
            pending = None;
            continue;
        };
        while let Some((top_indent, _)) = stack.last() {
            if *top_indent >= indent {
                stack.pop();
            } else {
                break;
            }
        }
        stack.push((indent, key.to_owned()));
        if let Some(options) = pending.take() {
            let path = stack
                .iter()
                .map(|(_, k)| k.as_str())
                .collect::<Vec<_>>()
                .join(".");
            out.insert(path, options);
        }
    }
    out
}

fn parse_options(list: &str) -> Vec<Value> {
    let separator = if list.contains('|') { '|' } else { ',' };
    list.split(separator)
        .map(|raw| {
            let token = raw.trim().trim_matches('"').trim_matches('\'');
            match token {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                other => match other.parse::<i64>() {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Str(other.to_owned()),
                },
            }
        })
        .filter(|v| !matches!(v, Value::Str(s) if s.is_empty()))
        .collect()
}

fn split_key(line: &str) -> Option<(&str, &str)> {
    let idx = line.find(':')?;
    let key = line[..idx].trim();
    if key.is_empty() || key.contains(' ') {
        return None;
    }
    Some((key, line[idx + 1..].trim()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_yaml::Path;

    const MLFLOW_VALUES: &str = r#"image:
  registry: docker.io
  repository: bitnami/mlflow
  pullSecrets:
    - name: secret-1
    - name: secret-2
tracking:
  enabled: true
  replicaCount: 1
  host: "0.0.0.0"
  containerSecurityContext:
    runAsNonRoot: true
postgreSQL:
  # @options: standalone | repl
  arch: standalone
service:
  # @options: ClusterIP, NodePort, LoadBalancer
  type: ClusterIP
"#;

    #[test]
    fn parses_defaults_and_annotations() {
        let values = ValuesFile::parse(MLFLOW_VALUES).unwrap();
        assert_eq!(
            values
                .defaults()
                .get_path(&Path::parse("tracking.replicaCount").unwrap())
                .unwrap()
                .as_i64(),
            Some(1)
        );
        let arch = values.options_for("postgreSQL.arch").unwrap();
        assert_eq!(arch, &[Value::from("standalone"), Value::from("repl")]);
        let svc = values.options_for("service.type").unwrap();
        assert_eq!(svc.len(), 3);
    }

    #[test]
    fn annotations_track_nested_paths() {
        let text =
            "a:\n  b:\n    # @options: x | y\n    mode: x\n  # @options: 1 | 2\n  level: 1\n";
        let values = ValuesFile::parse(text).unwrap();
        assert!(values.options_for("a.b.mode").is_some());
        assert_eq!(
            values.options_for("a.level").unwrap(),
            &[Value::Int(1), Value::Int(2)]
        );
        assert!(values.options_for("a.b.level").is_none());
    }

    #[test]
    fn merged_with_applies_user_overrides() {
        let values = ValuesFile::parse(MLFLOW_VALUES).unwrap();
        let overrides = kf_yaml::parse("tracking:\n  replicaCount: 5\n").unwrap();
        let merged = values.merged_with(Some(&overrides));
        assert_eq!(
            merged
                .get_path(&Path::parse("tracking.replicaCount").unwrap())
                .unwrap()
                .as_i64(),
            Some(5)
        );
        // untouched defaults survive the merge
        assert_eq!(
            merged
                .get_path(&Path::parse("image.registry").unwrap())
                .unwrap()
                .as_str(),
            Some("docker.io")
        );
    }

    #[test]
    fn invalid_yaml_is_reported() {
        let err = ValuesFile::parse("a: 1\n   b: 2\n").unwrap_err();
        assert!(matches!(err, Error::Values { .. }));
    }

    #[test]
    fn annotation_without_field_is_ignored() {
        let values = ValuesFile::parse("# @options: a | b\n# just a comment\nname: x\n").unwrap();
        // The annotation attaches to the next *field* line, skipping comments.
        assert_eq!(values.options_for("name").unwrap().len(), 2);
        let values = ValuesFile::parse("# @options: a | b\n- item\n").unwrap();
        assert!(values.annotations().is_empty());
    }
}
