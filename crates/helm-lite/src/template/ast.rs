//! Parsed template representation.

use kf_yaml::Value;

/// An expression inside an action.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal scalar (`"text"`, `42`, `true`).
    Literal(Value),
    /// A dotted context path (`.Values.image.tag`); the empty path is `.`.
    ContextPath(Vec<String>),
    /// The root context `$`, optionally followed by a path (`$.Values.x`).
    RootPath(Vec<String>),
    /// A variable reference (`$name`), optionally followed by a path
    /// (`$item.name`).
    Variable {
        /// Variable name without the leading `$`.
        name: String,
        /// Path navigated from the variable's value.
        path: Vec<String>,
    },
    /// A function call: `default 8080 .Values.port`, `quote .Values.host`.
    Call {
        /// Function name.
        name: String,
        /// Arguments in source order (pipeline input is appended last).
        args: Vec<Expr>,
    },
}

/// A node of the parsed template.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Literal output text.
    Text(String),
    /// `{{ expr }}` — evaluate and write the result.
    Output(Expr),
    /// `{{ if }}` … `{{ else if }}` … `{{ else }}` … `{{ end }}`.
    If {
        /// Condition/body pairs, first match wins.
        branches: Vec<(Expr, Vec<Node>)>,
        /// The `else` body (empty if absent).
        else_body: Vec<Node>,
    },
    /// `{{ range }}` … `{{ end }}`.
    Range {
        /// Optional loop variable names (`$key, $value :=` or `$item :=`).
        key_var: Option<String>,
        /// Optional value variable name.
        value_var: Option<String>,
        /// The collection expression.
        expr: Expr,
        /// Loop body.
        body: Vec<Node>,
    },
    /// `{{ with }}` … `{{ end }}` — rebind `.` when the expression is truthy.
    With {
        /// The expression bound to `.` inside the body.
        expr: Expr,
        /// Body rendered when the expression is truthy.
        body: Vec<Node>,
        /// Body rendered otherwise.
        else_body: Vec<Node>,
    },
    /// `{{ define "name" }}` … `{{ end }}` — register a named template.
    Define {
        /// Template name.
        name: String,
        /// Template body.
        body: Vec<Node>,
    },
}
