//! Parsing lexed segments into the template AST, and action contents into
//! expressions.

use kf_yaml::Value;

use super::ast::{Expr, Node};
use super::lexer::{lex, Segment};
use crate::{Error, Result};

/// Parse a template source into its AST.
///
/// # Errors
///
/// Returns [`Error::TemplateSyntax`] for malformed actions, unbalanced
/// `if`/`range`/`define`/`end` pairs or unparsable expressions.
pub fn parse(source: &str, template: &str) -> Result<Vec<Node>> {
    let segments = lex(source, template)?;
    let mut parser = StructureParser {
        segments,
        pos: 0,
        template: template.to_owned(),
    };
    let (nodes, terminator) = parser.parse_block(&[])?;
    debug_assert!(terminator.is_none());
    Ok(nodes)
}

struct StructureParser {
    segments: Vec<Segment>,
    pos: usize,
    template: String,
}

impl StructureParser {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::TemplateSyntax {
            template: self.template.clone(),
            message: message.into(),
        }
    }

    /// Parse nodes until one of the `terminators` keywords (or end of input
    /// when the terminator list is empty). Returns the nodes and the
    /// terminator content that stopped the block, if any.
    fn parse_block(&mut self, terminators: &[&str]) -> Result<(Vec<Node>, Option<String>)> {
        let mut nodes = Vec::new();
        while self.pos < self.segments.len() {
            let segment = self.segments[self.pos].clone();
            match segment {
                Segment::Text(text) => {
                    self.pos += 1;
                    if !text.is_empty() {
                        nodes.push(Node::Text(text));
                    }
                }
                Segment::Action { content, .. } => {
                    let keyword = content.split_whitespace().next().unwrap_or("");
                    if terminators.contains(&keyword) {
                        self.pos += 1;
                        return Ok((nodes, Some(content)));
                    }
                    self.pos += 1;
                    match keyword {
                        "if" => nodes.push(self.parse_if(&content)?),
                        "range" => nodes.push(self.parse_range(&content)?),
                        "with" => nodes.push(self.parse_with(&content)?),
                        "define" => nodes.push(self.parse_define(&content)?),
                        "end" | "else" => {
                            return Err(self.err(format!("unexpected `{keyword}`")));
                        }
                        "" => { /* empty action, e.g. a comment-only {{ }} */ }
                        _ => nodes.push(Node::Output(parse_expr(&content, &self.template)?)),
                    }
                }
            }
        }
        if terminators.is_empty() {
            Ok((nodes, None))
        } else {
            Err(self.err(format!(
                "missing closing action (expected one of {terminators:?})"
            )))
        }
    }

    fn parse_if(&mut self, content: &str) -> Result<Node> {
        let condition = parse_expr(content.trim_start_matches("if").trim(), &self.template)?;
        let mut branches = vec![];
        let mut else_body = Vec::new();
        let mut current_condition = condition;
        loop {
            let (body, terminator) = self.parse_block(&["else", "end"])?;
            let terminator = terminator.expect("parse_block returns a terminator here");
            branches.push((current_condition.clone(), body));
            if terminator.starts_with("else") {
                let rest = terminator.trim_start_matches("else").trim();
                if let Some(next_cond) = rest.strip_prefix("if") {
                    current_condition = parse_expr(next_cond.trim(), &self.template)?;
                    continue;
                }
                let (body, terminator) = self.parse_block(&["end"])?;
                debug_assert!(terminator.is_some());
                else_body = body;
                break;
            }
            break;
        }
        Ok(Node::If {
            branches,
            else_body,
        })
    }

    fn parse_range(&mut self, content: &str) -> Result<Node> {
        let spec = content.trim_start_matches("range").trim();
        let (key_var, value_var, expr_text) = if let Some((vars, expr)) = spec.split_once(":=") {
            let names: Vec<&str> = vars.split(',').map(str::trim).collect();
            match names.as_slice() {
                [value] => (None, Some(strip_dollar(value)?), expr.trim()),
                [key, value] => (
                    Some(strip_dollar(key)?),
                    Some(strip_dollar(value)?),
                    expr.trim(),
                ),
                _ => return Err(self.err("range accepts at most two loop variables")),
            }
        } else {
            (None, None, spec)
        };
        let expr = parse_expr(expr_text, &self.template)?;
        let (body, _terminator) = self.parse_block(&["end"])?;
        Ok(Node::Range {
            key_var,
            value_var,
            expr,
            body,
        })
    }

    fn parse_with(&mut self, content: &str) -> Result<Node> {
        let expr = parse_expr(content.trim_start_matches("with").trim(), &self.template)?;
        let (body, terminator) = self.parse_block(&["else", "end"])?;
        let terminator = terminator.expect("parse_block returns a terminator here");
        let else_body = if terminator.starts_with("else") {
            let (body, _) = self.parse_block(&["end"])?;
            body
        } else {
            Vec::new()
        };
        Ok(Node::With {
            expr,
            body,
            else_body,
        })
    }

    fn parse_define(&mut self, content: &str) -> Result<Node> {
        let name_part = content.trim_start_matches("define").trim();
        let name = name_part.trim_matches('"').to_owned();
        if name.is_empty() {
            return Err(self.err("define requires a quoted template name"));
        }
        let (body, _terminator) = self.parse_block(&["end"])?;
        Ok(Node::Define { name, body })
    }
}

fn strip_dollar(text: &str) -> Result<String> {
    text.strip_prefix('$')
        .map(str::to_owned)
        .ok_or_else(|| Error::TemplateSyntax {
            template: String::new(),
            message: format!("loop variable `{text}` must start with `$`"),
        })
}

// ---------------------------------------------------------------------------
// Expression parsing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    ContextPath(Vec<String>),
    RootPath(Vec<String>),
    Variable { name: String, path: Vec<String> },
    Literal(Value),
    Pipe,
    LParen,
    RParen,
}

/// Parse an action expression (possibly a pipeline) into an [`Expr`].
pub fn parse_expr(text: &str, template: &str) -> Result<Expr> {
    let tokens = tokenize(text, template)?;
    let mut pos = 0;
    let expr = parse_pipeline(&tokens, &mut pos, template)?;
    if pos != tokens.len() {
        return Err(Error::TemplateSyntax {
            template: template.to_owned(),
            message: format!("unexpected trailing tokens in `{text}`"),
        });
    }
    Ok(expr)
}

fn parse_pipeline(tokens: &[Token], pos: &mut usize, template: &str) -> Result<Expr> {
    let mut expr = parse_command(tokens, pos, template)?;
    while matches!(tokens.get(*pos), Some(Token::Pipe)) {
        *pos += 1;
        let next = parse_command(tokens, pos, template)?;
        // The pipeline input becomes the last argument of the next command.
        expr = match next {
            Expr::Call { name, mut args } => {
                args.push(expr);
                Expr::Call { name, args }
            }
            other => {
                return Err(Error::TemplateSyntax {
                    template: template.to_owned(),
                    message: format!("cannot pipe into non-function `{other:?}`"),
                })
            }
        };
    }
    Ok(expr)
}

/// A command is one or more terms; a leading identifier makes it a call.
fn parse_command(tokens: &[Token], pos: &mut usize, template: &str) -> Result<Expr> {
    let mut terms = Vec::new();
    loop {
        match tokens.get(*pos) {
            Some(Token::Pipe) | Some(Token::RParen) | None => break,
            Some(Token::LParen) => {
                *pos += 1;
                let inner = parse_pipeline(tokens, pos, template)?;
                match tokens.get(*pos) {
                    Some(Token::RParen) => *pos += 1,
                    _ => {
                        return Err(Error::TemplateSyntax {
                            template: template.to_owned(),
                            message: "missing closing `)`".to_owned(),
                        })
                    }
                }
                terms.push(inner);
            }
            Some(Token::Ident(name)) => {
                let name = name.clone();
                *pos += 1;
                if terms.is_empty() {
                    // Function call: consume the remaining terms as arguments.
                    let mut args = Vec::new();
                    loop {
                        match tokens.get(*pos) {
                            Some(Token::Pipe) | Some(Token::RParen) | None => break,
                            _ => args.push(parse_term(tokens, pos, template)?),
                        }
                    }
                    return Ok(Expr::Call { name, args });
                }
                terms.push(Expr::Literal(Value::Str(name)));
            }
            _ => terms.push(parse_term(tokens, pos, template)?),
        }
    }
    match terms.len() {
        0 => Err(Error::TemplateSyntax {
            template: template.to_owned(),
            message: "empty expression".to_owned(),
        }),
        1 => Ok(terms.remove(0)),
        _ => Err(Error::TemplateSyntax {
            template: template.to_owned(),
            message: "expected a single value or a function call".to_owned(),
        }),
    }
}

fn parse_term(tokens: &[Token], pos: &mut usize, template: &str) -> Result<Expr> {
    let expr = match tokens.get(*pos) {
        Some(Token::ContextPath(path)) => Expr::ContextPath(path.clone()),
        Some(Token::RootPath(path)) => Expr::RootPath(path.clone()),
        Some(Token::Variable { name, path }) => Expr::Variable {
            name: name.clone(),
            path: path.clone(),
        },
        Some(Token::Literal(v)) => Expr::Literal(v.clone()),
        Some(Token::Ident(name)) => Expr::Literal(Value::Str(name.clone())),
        Some(Token::LParen) => {
            *pos += 1;
            let inner = parse_pipeline(tokens, pos, template)?;
            match tokens.get(*pos) {
                Some(Token::RParen) => inner,
                _ => {
                    return Err(Error::TemplateSyntax {
                        template: template.to_owned(),
                        message: "missing closing `)`".to_owned(),
                    })
                }
            }
        }
        other => {
            return Err(Error::TemplateSyntax {
                template: template.to_owned(),
                message: format!("unexpected token {other:?}"),
            })
        }
    };
    *pos += 1;
    Ok(expr)
}

fn tokenize(text: &str, template: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' => i += 1,
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '"' | '`' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                let mut out = String::new();
                while j < chars.len() && chars[j] != quote {
                    if chars[j] == '\\' && quote == '"' && j + 1 < chars.len() {
                        out.push(chars[j + 1]);
                        j += 2;
                    } else {
                        out.push(chars[j]);
                        j += 1;
                    }
                }
                if j >= chars.len() {
                    return Err(Error::TemplateSyntax {
                        template: template.to_owned(),
                        message: "unterminated string literal".to_owned(),
                    });
                }
                tokens.push(Token::Literal(Value::Str(out)));
                i = j + 1;
            }
            '.' => {
                let (path, next) = read_path(&chars, i);
                tokens.push(Token::ContextPath(path));
                i = next;
            }
            '$' => {
                let (mut path, next) = read_path(&chars, i + 1);
                if path.is_empty() {
                    tokens.push(Token::RootPath(Vec::new()));
                } else if chars.get(i + 1) == Some(&'.') {
                    tokens.push(Token::RootPath(path));
                } else {
                    let name = path.remove(0);
                    tokens.push(Token::Variable { name, path });
                }
                i = next;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let raw: String = chars[start..i].iter().collect();
                let literal = if raw.contains('.') {
                    Value::Float(raw.parse().map_err(|_| Error::TemplateSyntax {
                        template: template.to_owned(),
                        message: format!("invalid number `{raw}`"),
                    })?)
                } else {
                    Value::Int(raw.parse().map_err(|_| Error::TemplateSyntax {
                        template: template.to_owned(),
                        message: format!("invalid number `{raw}`"),
                    })?)
                };
                tokens.push(Token::Literal(literal));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match word.as_str() {
                    "true" => tokens.push(Token::Literal(Value::Bool(true))),
                    "false" => tokens.push(Token::Literal(Value::Bool(false))),
                    "nil" | "null" => tokens.push(Token::Literal(Value::Null)),
                    _ => tokens.push(Token::Ident(word)),
                }
            }
            other => {
                return Err(Error::TemplateSyntax {
                    template: template.to_owned(),
                    message: format!("unexpected character `{other}` in expression"),
                })
            }
        }
    }
    Ok(tokens)
}

/// Read a dotted path starting at `start` (which may point at a leading `.`).
/// Returns the path components and the index just after the path.
fn read_path(chars: &[char], start: usize) -> (Vec<String>, usize) {
    let mut path = Vec::new();
    let mut i = start;
    loop {
        if chars.get(i) == Some(&'.') {
            i += 1;
        } else if path.is_empty() && i == start {
            // `$foo` style: first component has no leading dot.
        } else {
            break;
        }
        let seg_start = i;
        while i < chars.len()
            && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '-')
        {
            i += 1;
        }
        if i == seg_start {
            break;
        }
        path.push(chars[seg_start..i].iter().collect());
        if chars.get(i) != Some(&'.') {
            break;
        }
    }
    // Handle `$name` (no dots): read one identifier.
    if path.is_empty() && start < chars.len() && chars[start] != '.' {
        let mut i = start;
        while i < chars.len()
            && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '-')
        {
            i += 1;
        }
        if i > start {
            return (vec![chars[start..i].iter().collect()], i);
        }
    }
    (path, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_context_paths() {
        let expr = parse_expr(".Values.image.tag", "t").unwrap();
        assert_eq!(
            expr,
            Expr::ContextPath(vec!["Values".into(), "image".into(), "tag".into()])
        );
        assert_eq!(parse_expr(".", "t").unwrap(), Expr::ContextPath(vec![]));
    }

    #[test]
    fn parses_function_calls_and_pipelines() {
        let expr = parse_expr("default 8080 .Values.port | quote", "t").unwrap();
        match expr {
            Expr::Call { name, args } => {
                assert_eq!(name, "quote");
                assert_eq!(args.len(), 1);
                match &args[0] {
                    Expr::Call { name, args } => {
                        assert_eq!(name, "default");
                        assert_eq!(args.len(), 2);
                    }
                    other => panic!("unexpected inner expr {other:?}"),
                }
            }
            other => panic!("unexpected expr {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesised_subexpressions() {
        let expr = parse_expr("and .Values.enabled (eq .Values.kind \"web\")", "t").unwrap();
        match expr {
            Expr::Call { name, args } => {
                assert_eq!(name, "and");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected expr {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_structure() {
        let nodes = parse(
            "{{ if .Values.a }}A{{ else if .Values.b }}B{{ else }}C{{ end }}",
            "t",
        )
        .unwrap();
        assert_eq!(nodes.len(), 1);
        match &nodes[0] {
            Node::If {
                branches,
                else_body,
            } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected node {other:?}"),
        }
    }

    #[test]
    fn parses_range_with_variables() {
        let nodes = parse("{{ range $k, $v := .Values.labels }}{{ $k }}{{ end }}", "t").unwrap();
        match &nodes[0] {
            Node::Range {
                key_var, value_var, ..
            } => {
                assert_eq!(key_var.as_deref(), Some("k"));
                assert_eq!(value_var.as_deref(), Some("v"));
            }
            other => panic!("unexpected node {other:?}"),
        }
    }

    #[test]
    fn unbalanced_blocks_are_rejected() {
        assert!(parse("{{ if .Values.x }}no end", "t").is_err());
        assert!(parse("{{ end }}", "t").is_err());
        assert!(parse("{{ else }}", "t").is_err());
    }

    #[test]
    fn variables_and_root_paths_tokenize() {
        let expr = parse_expr("$item.name", "t").unwrap();
        assert_eq!(
            expr,
            Expr::Variable {
                name: "item".into(),
                path: vec!["name".into()]
            }
        );
        let expr = parse_expr("$.Values.global", "t").unwrap();
        assert_eq!(expr, Expr::RootPath(vec!["Values".into(), "global".into()]));
    }
}
