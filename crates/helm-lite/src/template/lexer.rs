//! Splitting template source into literal text and `{{ … }}` actions.

use crate::{Error, Result};

/// A lexical segment of a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Literal text copied to the output.
    Text(String),
    /// An action (`{{ … }}`) with its trimmed content and whitespace-trim
    /// markers.
    Action {
        /// The content between the delimiters, trimmed.
        content: String,
        /// `{{-` — trim whitespace (including the preceding newline) before.
        trim_before: bool,
        /// `-}}` — trim whitespace (including the following newline) after.
        trim_after: bool,
    },
}

/// Lex a template source into segments.
///
/// # Errors
///
/// Returns [`Error::TemplateSyntax`] on an unterminated action.
pub fn lex(source: &str, template: &str) -> Result<Vec<Segment>> {
    let mut segments = Vec::new();
    let mut rest = source;
    while let Some(start) = rest.find("{{") {
        if start > 0 {
            segments.push(Segment::Text(rest[..start].to_owned()));
        }
        let after_open = &rest[start + 2..];
        let (trim_before, after_open) = match after_open.strip_prefix('-') {
            Some(stripped) => (true, stripped),
            None => (false, after_open),
        };
        let end = after_open.find("}}").ok_or_else(|| Error::TemplateSyntax {
            template: template.to_owned(),
            message: "unterminated `{{` action".to_owned(),
        })?;
        let raw_content = &after_open[..end];
        let (trim_after, content) = match raw_content.strip_suffix('-') {
            Some(stripped) => (true, stripped),
            None => (false, raw_content),
        };
        segments.push(Segment::Action {
            content: content.trim().to_owned(),
            trim_before,
            trim_after,
        });
        rest = &after_open[end + 2..];
    }
    if !rest.is_empty() {
        segments.push(Segment::Text(rest.to_owned()));
    }
    apply_trim_markers(&mut segments);
    Ok(segments)
}

/// Apply `{{-` / `-}}` whitespace trimming to the neighbouring text segments.
fn apply_trim_markers(segments: &mut [Segment]) {
    for i in 0..segments.len() {
        let (trim_before, trim_after) = match &segments[i] {
            Segment::Action {
                trim_before,
                trim_after,
                ..
            } => (*trim_before, *trim_after),
            Segment::Text(_) => continue,
        };
        if trim_before && i > 0 {
            if let Segment::Text(text) = &mut segments[i - 1] {
                *text = text.trim_end().to_owned();
            }
        }
        if trim_after && i + 1 < segments.len() {
            if let Segment::Text(text) = &mut segments[i + 1] {
                let trimmed = text.trim_start_matches([' ', '\t']);
                let trimmed = trimmed.strip_prefix('\n').unwrap_or(trimmed);
                *text = trimmed.to_owned();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_text_and_actions() {
        let segments = lex("a {{ .Values.x }} b", "t").unwrap();
        assert_eq!(segments.len(), 3);
        assert_eq!(segments[0], Segment::Text("a ".into()));
        assert!(matches!(&segments[1], Segment::Action { content, .. } if content == ".Values.x"));
        assert_eq!(segments[2], Segment::Text(" b".into()));
    }

    #[test]
    fn trim_markers_strip_adjacent_whitespace() {
        let segments = lex("line:\n  {{- if .x }}\nbody\n{{- end }}", "t").unwrap();
        // The text before `{{-` loses its trailing whitespace/newline.
        assert_eq!(segments[0], Segment::Text("line:".into()));
    }

    #[test]
    fn right_trim_strips_following_newline() {
        let segments = lex("{{ .x -}}\n  next", "t").unwrap();
        assert_eq!(segments[1], Segment::Text("  next".into()));
    }

    #[test]
    fn unterminated_action_is_an_error() {
        assert!(lex("{{ .Values.x ", "t").is_err());
    }

    #[test]
    fn empty_source_yields_no_segments() {
        assert!(lex("", "t").unwrap().is_empty());
    }
}
