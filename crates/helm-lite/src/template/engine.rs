//! Template evaluation: contexts, scopes and rendering.

use std::collections::HashMap;

use kf_yaml::{Mapping, Value};

use super::ast::{Expr, Node};
use super::functions::{call_function, is_truthy, value_to_output};
use super::parser::parse;
use crate::{ChartMetadata, Error, Result};

/// Release information exposed to templates as `.Release`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseInfo {
    /// Release name (`.Release.Name`).
    pub name: String,
    /// Target namespace (`.Release.Namespace`).
    pub namespace: String,
    /// Rendering service (`.Release.Service`), always `Helm` for parity with
    /// upstream output.
    pub service: String,
}

impl ReleaseInfo {
    /// Release info with the conventional `Helm` service marker.
    pub fn new(name: impl Into<String>, namespace: impl Into<String>) -> Self {
        ReleaseInfo {
            name: name.into(),
            namespace: namespace.into(),
            service: "Helm".to_owned(),
        }
    }
}

/// Build the root template context (`.`) from values, release info and chart
/// metadata — the same shape Helm exposes (`.Values`, `.Release`, `.Chart`).
pub fn build_context(values: &Value, release: &ReleaseInfo, chart: &ChartMetadata) -> Value {
    let mut release_map = Mapping::new();
    release_map.insert("Name", Value::from(release.name.clone()));
    release_map.insert("Namespace", Value::from(release.namespace.clone()));
    release_map.insert("Service", Value::from(release.service.clone()));

    let mut chart_map = Mapping::new();
    chart_map.insert("Name", Value::from(chart.name.clone()));
    chart_map.insert("Version", Value::from(chart.version.clone()));
    chart_map.insert("AppVersion", Value::from(chart.app_version.clone()));

    let mut root = Mapping::new();
    root.insert("Values", values.clone());
    root.insert("Release", Value::Map(release_map));
    root.insert("Chart", Value::Map(chart_map));
    Value::Map(root)
}

/// The template engine: named templates plus the rendering entry point.
#[derive(Debug, Clone, Default)]
pub struct TemplateEngine {
    defines: HashMap<String, Vec<Node>>,
}

/// The evaluation scope threaded through rendering.
pub(crate) struct Scope<'a> {
    /// The current context (`.`).
    pub dot: Value,
    /// The root context (`$`).
    pub root: &'a Value,
    /// Template-local variables.
    pub vars: HashMap<String, Value>,
}

impl TemplateEngine {
    /// An engine with no named templates registered.
    pub fn new() -> Self {
        TemplateEngine {
            defines: HashMap::new(),
        }
    }

    /// Parse a helper file and register its `define` blocks so that other
    /// templates can `include` them.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TemplateSyntax`] when the helper cannot be parsed.
    pub fn register_helpers(&mut self, source: &str, template: &str) -> Result<()> {
        let nodes = parse(source, template)?;
        self.collect_defines(&nodes);
        Ok(())
    }

    fn collect_defines(&mut self, nodes: &[Node]) {
        for node in nodes {
            if let Node::Define { name, body } = node {
                self.defines.insert(name.clone(), body.clone());
            }
        }
    }

    /// Number of registered named templates.
    pub fn define_count(&self) -> usize {
        self.defines.len()
    }

    /// Render a template with the given root context.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TemplateSyntax`] for parse failures and
    /// [`Error::Render`] for evaluation failures (unknown functions, missing
    /// named templates, `required` violations, …).
    pub fn render(&self, source: &str, template: &str, context: &Value) -> Result<String> {
        let nodes = parse(source, template)?;
        // Defines local to this template are available to it as well.
        let mut engine = self.clone();
        engine.collect_defines(&nodes);
        let mut scope = Scope {
            dot: context.clone(),
            root: context,
            vars: HashMap::new(),
        };
        let mut out = String::new();
        engine.render_nodes(&nodes, &mut scope, template, &mut out)?;
        Ok(out)
    }

    fn render_nodes(
        &self,
        nodes: &[Node],
        scope: &mut Scope<'_>,
        template: &str,
        out: &mut String,
    ) -> Result<()> {
        for node in nodes {
            match node {
                Node::Text(text) => out.push_str(text),
                Node::Output(expr) => {
                    let value = self.eval(expr, scope, template)?;
                    out.push_str(&value_to_output(&value));
                }
                Node::If {
                    branches,
                    else_body,
                } => {
                    let mut rendered = false;
                    for (condition, body) in branches {
                        if is_truthy(&self.eval(condition, scope, template)?) {
                            self.render_nodes(body, scope, template, out)?;
                            rendered = true;
                            break;
                        }
                    }
                    if !rendered {
                        self.render_nodes(else_body, scope, template, out)?;
                    }
                }
                Node::Range {
                    key_var,
                    value_var,
                    expr,
                    body,
                } => {
                    let collection = self.eval(expr, scope, template)?;
                    self.render_range(
                        key_var.as_deref(),
                        value_var.as_deref(),
                        &collection,
                        body,
                        scope,
                        template,
                        out,
                    )?;
                }
                Node::With {
                    expr,
                    body,
                    else_body,
                } => {
                    let value = self.eval(expr, scope, template)?;
                    if is_truthy(&value) {
                        let saved = std::mem::replace(&mut scope.dot, value);
                        self.render_nodes(body, scope, template, out)?;
                        scope.dot = saved;
                    } else {
                        self.render_nodes(else_body, scope, template, out)?;
                    }
                }
                Node::Define { .. } => {
                    // Definitions produce no output where they appear.
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn render_range(
        &self,
        key_var: Option<&str>,
        value_var: Option<&str>,
        collection: &Value,
        body: &[Node],
        scope: &mut Scope<'_>,
        template: &str,
        out: &mut String,
    ) -> Result<()> {
        let entries: Vec<(Value, Value)> = match collection {
            Value::Seq(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| (Value::Int(i as i64), v.clone()))
                .collect(),
            Value::Map(map) => map
                .iter()
                .map(|(k, v)| (Value::from(k.to_owned()), v.clone()))
                .collect(),
            Value::Null => Vec::new(),
            other => vec![(Value::Int(0), other.clone())],
        };
        for (key, value) in entries {
            let saved_dot = scope.dot.clone();
            let saved_vars = scope.vars.clone();
            match (key_var, value_var) {
                (Some(k), Some(v)) => {
                    scope.vars.insert(k.to_owned(), key.clone());
                    scope.vars.insert(v.to_owned(), value.clone());
                }
                (None, Some(v)) => {
                    scope.vars.insert(v.to_owned(), value.clone());
                }
                _ => {}
            }
            scope.dot = value;
            self.render_nodes(body, scope, template, out)?;
            scope.dot = saved_dot;
            scope.vars = saved_vars;
        }
        Ok(())
    }

    /// Evaluate an expression within a scope.
    pub(crate) fn eval(&self, expr: &Expr, scope: &mut Scope<'_>, template: &str) -> Result<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::ContextPath(path) => Ok(navigate(&scope.dot, path)),
            Expr::RootPath(path) => Ok(navigate(scope.root, path)),
            Expr::Variable { name, path } => {
                let base = scope.vars.get(name).cloned().unwrap_or(Value::Null);
                Ok(navigate(&base, path))
            }
            Expr::Call { name, args } => {
                let mut evaluated = Vec::with_capacity(args.len());
                for arg in args {
                    evaluated.push(self.eval(arg, scope, template)?);
                }
                if name == "include" || name == "template" {
                    return self.call_include(&evaluated, scope, template);
                }
                call_function(name, &evaluated, template)
            }
        }
    }

    fn call_include(&self, args: &[Value], scope: &mut Scope<'_>, template: &str) -> Result<Value> {
        let name = args
            .first()
            .and_then(Value::as_str)
            .ok_or_else(|| Error::Render {
                template: template.to_owned(),
                message: "include requires a template name".to_owned(),
            })?;
        let body = self.defines.get(name).ok_or_else(|| Error::Render {
            template: template.to_owned(),
            message: format!("named template `{name}` is not defined"),
        })?;
        let dot = args.get(1).cloned().unwrap_or(Value::Null);
        let mut inner = Scope {
            dot,
            root: scope.root,
            vars: HashMap::new(),
        };
        let mut out = String::new();
        self.render_nodes(body, &mut inner, template, &mut out)?;
        Ok(Value::Str(out))
    }
}

/// Navigate a dotted path from a value; missing segments yield `Null`.
fn navigate(base: &Value, path: &[String]) -> Value {
    let mut current = base;
    for segment in path {
        match current.get(segment) {
            Some(next) => current = next,
            None => return Value::Null,
        }
    }
    current.clone()
}
