//! The helper-function library available inside template expressions.

use kf_yaml::Value;

use crate::{Error, Result};

/// Helm truthiness: `null`, `false`, `0`, `0.0`, `""`, empty sequences and
/// empty mappings are falsy; everything else is truthy.
pub fn is_truthy(value: &Value) -> bool {
    match value {
        Value::Null => false,
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Float(x) => *x != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Seq(s) => !s.is_empty(),
        Value::Map(m) => !m.is_empty(),
    }
}

/// Convert a value to the text written into the rendered output.
pub fn value_to_output(value: &Value) -> String {
    match value {
        Value::Null => String::new(),
        Value::Str(s) => s.clone(),
        Value::Seq(_) | Value::Map(_) => kf_yaml::to_yaml(value).trim_end().to_owned(),
        other => other.to_string(),
    }
}

fn render_err(template: &str, message: impl Into<String>) -> Error {
    Error::Render {
        template: template.to_owned(),
        message: message.into(),
    }
}

fn as_text(value: &Value) -> String {
    value_to_output(value)
}

fn as_int(value: &Value, template: &str, function: &str) -> Result<i64> {
    match value {
        Value::Int(i) => Ok(*i),
        Value::Float(x) => Ok(*x as i64),
        Value::Str(s) => s
            .parse()
            .map_err(|_| render_err(template, format!("{function}: `{s}` is not an integer"))),
        other => Err(render_err(
            template,
            format!(
                "{function}: expected an integer, found {}",
                other.type_name()
            ),
        )),
    }
}

/// Indent every line of `text` by `width` spaces.
fn indent_text(text: &str, width: i64) -> String {
    let pad = " ".repeat(width.max(0) as usize);
    text.lines()
        .map(|line| {
            if line.is_empty() {
                line.to_owned()
            } else {
                format!("{pad}{line}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// A minimal base64 encoder (standard alphabet, with padding); used by the
/// `b64enc` helper so Secret templates can encode their data.
fn base64_encode(input: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(input.len().div_ceil(3) * 4);
    for chunk in input.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 63] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// printf with the `%s`, `%d` and `%%` directives (the ones charts use).
fn printf(format: &str, args: &[Value]) -> String {
    let mut out = String::new();
    let mut arg_iter = args.iter();
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('s') | Some('v') => {
                out.push_str(&arg_iter.next().map(as_text).unwrap_or_default());
            }
            Some('d') => {
                out.push_str(&arg_iter.next().map(as_text).unwrap_or_default());
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

/// Dispatch a helper function call.
///
/// # Errors
///
/// Returns [`Error::Render`] for unknown functions, wrong argument counts or
/// type mismatches, and for `required` with a missing value.
pub fn call_function(name: &str, args: &[Value], template: &str) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(render_err(
                template,
                format!("{name} expects {n} argument(s), got {}", args.len()),
            ))
        }
    };
    match name {
        "default" => {
            arity(2)?;
            if is_truthy(&args[1]) {
                Ok(args[1].clone())
            } else {
                Ok(args[0].clone())
            }
        }
        "coalesce" => Ok(args
            .iter()
            .find(|v| is_truthy(v))
            .cloned()
            .unwrap_or(Value::Null)),
        "quote" => Ok(Value::Str(format!(
            "\"{}\"",
            as_text(args.first().unwrap_or(&Value::Null))
        ))),
        "squote" => Ok(Value::Str(format!(
            "'{}'",
            as_text(args.first().unwrap_or(&Value::Null))
        ))),
        "upper" => {
            arity(1)?;
            Ok(Value::Str(as_text(&args[0]).to_uppercase()))
        }
        "lower" => {
            arity(1)?;
            Ok(Value::Str(as_text(&args[0]).to_lowercase()))
        }
        "trim" => {
            arity(1)?;
            Ok(Value::Str(as_text(&args[0]).trim().to_owned()))
        }
        "trunc" => {
            arity(2)?;
            let width = as_int(&args[0], template, name)? as usize;
            let text = as_text(&args[1]);
            Ok(Value::Str(text.chars().take(width).collect()))
        }
        "trimSuffix" => {
            arity(2)?;
            let suffix = as_text(&args[0]);
            let text = as_text(&args[1]);
            Ok(Value::Str(
                text.strip_suffix(&suffix).unwrap_or(&text).to_owned(),
            ))
        }
        "trimPrefix" => {
            arity(2)?;
            let prefix = as_text(&args[0]);
            let text = as_text(&args[1]);
            Ok(Value::Str(
                text.strip_prefix(&prefix).unwrap_or(&text).to_owned(),
            ))
        }
        "replace" => {
            arity(3)?;
            let from = as_text(&args[0]);
            let to = as_text(&args[1]);
            Ok(Value::Str(as_text(&args[2]).replace(&from, &to)))
        }
        "contains" => {
            arity(2)?;
            let needle = as_text(&args[0]);
            Ok(Value::Bool(as_text(&args[1]).contains(&needle)))
        }
        "printf" => {
            if args.is_empty() {
                return Err(render_err(template, "printf requires a format string"));
            }
            Ok(Value::Str(printf(&as_text(&args[0]), &args[1..])))
        }
        "toYaml" => {
            arity(1)?;
            Ok(Value::Str(kf_yaml::to_yaml(&args[0]).trim_end().to_owned()))
        }
        "indent" => {
            arity(2)?;
            let width = as_int(&args[0], template, name)?;
            Ok(Value::Str(indent_text(&as_text(&args[1]), width)))
        }
        "nindent" => {
            arity(2)?;
            let width = as_int(&args[0], template, name)?;
            Ok(Value::Str(format!(
                "\n{}",
                indent_text(&as_text(&args[1]), width)
            )))
        }
        "b64enc" => {
            arity(1)?;
            Ok(Value::Str(base64_encode(as_text(&args[0]).as_bytes())))
        }
        "eq" => {
            arity(2)?;
            Ok(Value::Bool(args[0].loosely_equals(&args[1])))
        }
        "ne" => {
            arity(2)?;
            Ok(Value::Bool(!args[0].loosely_equals(&args[1])))
        }
        "lt" => {
            arity(2)?;
            Ok(Value::Bool(
                args[0].as_f64().unwrap_or(f64::NAN) < args[1].as_f64().unwrap_or(f64::NAN),
            ))
        }
        "gt" => {
            arity(2)?;
            Ok(Value::Bool(
                args[0].as_f64().unwrap_or(f64::NAN) > args[1].as_f64().unwrap_or(f64::NAN),
            ))
        }
        "and" => Ok(args
            .iter()
            .find(|v| !is_truthy(v))
            .cloned()
            .unwrap_or_else(|| args.last().cloned().unwrap_or(Value::Null))),
        "or" => Ok(args
            .iter()
            .find(|v| is_truthy(v))
            .cloned()
            .unwrap_or_else(|| args.last().cloned().unwrap_or(Value::Null))),
        "not" => {
            arity(1)?;
            Ok(Value::Bool(!is_truthy(&args[0])))
        }
        "empty" => {
            arity(1)?;
            Ok(Value::Bool(!is_truthy(&args[0])))
        }
        "ternary" => {
            arity(3)?;
            if is_truthy(&args[2]) {
                Ok(args[0].clone())
            } else {
                Ok(args[1].clone())
            }
        }
        "len" => {
            arity(1)?;
            let len = match &args[0] {
                Value::Seq(s) => s.len(),
                Value::Map(m) => m.len(),
                Value::Str(s) => s.len(),
                Value::Null => 0,
                _ => 1,
            };
            Ok(Value::Int(len as i64))
        }
        "toString" => {
            arity(1)?;
            Ok(Value::Str(as_text(&args[0])))
        }
        "int" => {
            arity(1)?;
            Ok(Value::Int(as_int(&args[0], template, name)?))
        }
        "required" => {
            arity(2)?;
            if is_truthy(&args[1]) {
                Ok(args[1].clone())
            } else {
                Err(render_err(template, as_text(&args[0])))
            }
        }
        other => Err(render_err(template, format!("unknown function `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Value {
        call_function(name, args, "test").unwrap()
    }

    #[test]
    fn truthiness_follows_helm_rules() {
        assert!(!is_truthy(&Value::Null));
        assert!(!is_truthy(&Value::Bool(false)));
        assert!(!is_truthy(&Value::Int(0)));
        assert!(!is_truthy(&Value::from("")));
        assert!(!is_truthy(&Value::empty_seq()));
        assert!(!is_truthy(&Value::empty_map()));
        assert!(is_truthy(&Value::from("no")));
        assert!(is_truthy(&Value::Int(-1)));
    }

    #[test]
    fn default_prefers_the_provided_value() {
        assert_eq!(
            call("default", &[Value::Int(8080), Value::Null]),
            Value::Int(8080)
        );
        assert_eq!(
            call("default", &[Value::Int(8080), Value::Int(9090)]),
            Value::Int(9090)
        );
    }

    #[test]
    fn string_helpers() {
        assert_eq!(call("upper", &[Value::from("abc")]), Value::from("ABC"));
        assert_eq!(
            call("trunc", &[Value::Int(3), Value::from("abcdef")]),
            Value::from("abc")
        );
        assert_eq!(
            call("trimSuffix", &[Value::from("-"), Value::from("name-")]),
            Value::from("name")
        );
        assert_eq!(
            call(
                "replace",
                &[Value::from("."), Value::from("-"), Value::from("a.b.c")]
            ),
            Value::from("a-b-c")
        );
        assert_eq!(call("quote", &[Value::from("x")]), Value::from("\"x\""));
    }

    #[test]
    fn printf_formats_strings_and_numbers() {
        assert_eq!(
            call(
                "printf",
                &[Value::from("%s-%d"), Value::from("web"), Value::Int(2)]
            ),
            Value::from("web-2")
        );
    }

    #[test]
    fn indent_and_nindent() {
        assert_eq!(
            call("indent", &[Value::Int(2), Value::from("a\nb")]),
            Value::from("  a\n  b")
        );
        assert_eq!(
            call("nindent", &[Value::Int(2), Value::from("a")]),
            Value::from("\n  a")
        );
    }

    #[test]
    fn boolean_helpers_mirror_go_semantics() {
        assert_eq!(
            call("and", &[Value::Bool(true), Value::from("x")]),
            Value::from("x")
        );
        assert_eq!(
            call("and", &[Value::Bool(false), Value::from("x")]),
            Value::Bool(false)
        );
        assert_eq!(
            call("or", &[Value::Null, Value::from("x")]),
            Value::from("x")
        );
        assert_eq!(call("not", &[Value::Null]), Value::Bool(true));
        assert_eq!(
            call(
                "ternary",
                &[Value::from("a"), Value::from("b"), Value::Bool(false)]
            ),
            Value::from("b")
        );
    }

    #[test]
    fn b64enc_encodes_with_padding() {
        assert_eq!(
            call("b64enc", &[Value::from("admin")]),
            Value::from("YWRtaW4=")
        );
        assert_eq!(call("b64enc", &[Value::from("ab")]), Value::from("YWI="));
        assert_eq!(call("b64enc", &[Value::from("")]), Value::from(""));
    }

    #[test]
    fn required_fails_on_missing_values() {
        assert!(call_function(
            "required",
            &[Value::from("value is required"), Value::Null],
            "t"
        )
        .is_err());
    }

    #[test]
    fn unknown_function_is_reported() {
        let err = call_function("nope", &[], "t").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
