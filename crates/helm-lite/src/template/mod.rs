//! The Go-template-subset engine used to render chart templates.
//!
//! The engine supports the template features that the operator charts in this
//! repository (and the overwhelming majority of Artifact Hub charts) rely on:
//!
//! * output actions with pipelines: `{{ .Values.image.repository | quote }}`;
//! * whitespace trim markers `{{-` and `-}}`;
//! * `if` / `else if` / `else` / `end` with Helm truthiness rules;
//! * `range` over sequences and mappings, with optional loop variables;
//! * `define` / `include` / `template` named templates;
//! * the common helper functions (`default`, `quote`, `toYaml`, `nindent`,
//!   `indent`, `upper`, `lower`, `trunc`, `trimSuffix`, `replace`, `printf`,
//!   `eq`, `ne`, `and`, `or`, `not`, `coalesce`, `ternary`, `contains`,
//!   `b64enc`, `len`, `empty`, `required`).
//!
//! Anchoring the engine on [`kf_yaml::Value`] keeps rendered manifests, chart
//! values and KubeFence validators in the same document model.

mod ast;
mod engine;
mod functions;
mod lexer;
mod parser;

pub use ast::{Expr, Node};
pub use engine::{build_context, ReleaseInfo, TemplateEngine};

#[cfg(test)]
mod tests {
    use super::*;
    use kf_yaml::Value;

    fn render(source: &str, values_yaml: &str) -> String {
        let values = kf_yaml::parse(values_yaml).unwrap();
        let chart = crate::ChartMetadata::new("demo", "1.2.3");
        let release = ReleaseInfo::new("my-release", "default");
        let context = build_context(&values, &release, &chart);
        let engine = TemplateEngine::new();
        engine.render(source, "test.yaml", &context).unwrap()
    }

    #[test]
    fn renders_value_interpolation() {
        let out = render(
            "name: {{ .Values.name }}\nreplicas: {{ .Values.replicas }}\n",
            "name: web\nreplicas: 3\n",
        );
        assert_eq!(out, "name: web\nreplicas: 3\n");
    }

    #[test]
    fn renders_release_and_chart_builtins() {
        let out = render(
            "release: {{ .Release.Name }}\nchart: {{ .Chart.Name }}-{{ .Chart.Version }}\n",
            "{}",
        );
        assert_eq!(out, "release: my-release\nchart: demo-1.2.3\n");
    }

    #[test]
    fn quote_and_default_functions() {
        let out = render(
            "host: {{ .Values.host | default \"0.0.0.0\" | quote }}\nport: {{ default 8080 .Values.port }}\n",
            "{}",
        );
        assert_eq!(out, "host: \"0.0.0.0\"\nport: 8080\n");
    }

    #[test]
    fn if_else_with_truthiness() {
        let template = "{{- if .Values.enabled }}\nmode: on\n{{- else }}\nmode: off\n{{- end }}\n";
        assert_eq!(render(template, "enabled: true"), "\nmode: on\n");
        assert_eq!(render(template, "enabled: false"), "\nmode: off\n");
        assert_eq!(render(template, "{}"), "\nmode: off\n");
    }

    #[test]
    fn range_over_sequences_and_maps() {
        let out = render(
            "{{- range .Values.ports }}\n- port: {{ . }}\n{{- end }}\n",
            "ports:\n  - 80\n  - 443\n",
        );
        assert_eq!(out, "\n- port: 80\n- port: 443\n");
        let out = render(
            "{{- range $key, $value := .Values.labels }}\n{{ $key }}: {{ $value }}\n{{- end }}\n",
            "labels:\n  app: web\n  tier: front\n",
        );
        assert!(out.contains("app: web"));
        assert!(out.contains("tier: front"));
    }

    #[test]
    fn define_and_include() {
        let source = r#"{{- define "demo.fullname" -}}
{{ .Release.Name }}-{{ .Chart.Name }}
{{- end -}}
name: {{ include "demo.fullname" . }}
"#;
        let out = render(source, "{}");
        assert_eq!(out, "name: my-release-demo\n");
    }

    #[test]
    fn to_yaml_and_nindent() {
        let out = render(
            "resources:\n  {{- toYaml .Values.resources | nindent 2 }}\n",
            "resources:\n  limits:\n    cpu: 100m\n    memory: 128Mi\n",
        );
        assert!(out.contains("resources:\n  limits:\n    cpu: 100m\n    memory: 128Mi"));
    }

    #[test]
    fn eq_and_boolean_operators() {
        let template =
            "{{- if and .Values.enabled (eq .Values.kind \"web\") }}ok{{- else }}no{{- end }}";
        assert_eq!(render(template, "enabled: true\nkind: web\n"), "ok");
        assert_eq!(render(template, "enabled: true\nkind: db\n"), "no");
        assert_eq!(render(template, "enabled: false\nkind: web\n"), "no");
    }

    #[test]
    fn unknown_function_is_an_error() {
        let values = Value::empty_map();
        let chart = crate::ChartMetadata::new("demo", "1.0.0");
        let release = ReleaseInfo::new("r", "default");
        let context = build_context(&values, &release, &chart);
        let engine = TemplateEngine::new();
        let err = engine
            .render("{{ mystery .Values }}", "bad.yaml", &context)
            .unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn missing_values_render_as_empty() {
        let out = render("value: {{ .Values.not.there }}\n", "{}");
        assert_eq!(out, "value: \n");
    }

    #[test]
    fn printf_and_trunc() {
        let out = render(
            "name: {{ printf \"%s-%s\" .Release.Name .Chart.Name | trunc 10 }}\n",
            "{}",
        );
        assert_eq!(out, "name: my-release\n");
    }
}
