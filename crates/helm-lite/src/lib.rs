//! # helm-lite — Helm chart model and template engine
//!
//! KubeFence derives its security policies from the Helm charts of Kubernetes
//! Operators: the chart's default `values.yaml` defines the configuration
//! space, and the chart's templates define how those values turn into
//! Kubernetes manifests. The paper uses the stock `helm template` command for
//! the rendering step; this crate provides the equivalent functionality for
//! the charts shipped with this reproduction.
//!
//! The crate has three layers:
//!
//! * [`Chart`] / [`ValuesFile`] / [`TemplateFile`] — the chart model,
//!   including the enumeration annotations that KubeFence extracts from the
//!   values file (Figure 7 of the paper);
//! * [`template`] — a Go-template-subset engine (actions, pipelines,
//!   `if`/`else`, `range`, `define`/`include`, the common helper functions);
//! * [`render_chart`] — the `helm template` equivalent: combine a chart with
//!   a values document and return the rendered Kubernetes manifests.
//!
//! ```
//! use helm_lite::{Chart, ChartMetadata, TemplateFile, ValuesFile, render_chart};
//!
//! # fn main() -> Result<(), helm_lite::Error> {
//! let chart = Chart::new(
//!     ChartMetadata::new("demo", "1.0.0"),
//!     ValuesFile::parse("replicas: 2\n")?,
//!     vec![TemplateFile::new(
//!         "deployment.yaml",
//!         "kind: Deployment\nmetadata:\n  name: {{ .Release.Name }}\nspec:\n  replicas: {{ .Values.replicas }}\n",
//!     )],
//! );
//! let manifests = render_chart(&chart, None, "demo-release")?;
//! assert_eq!(manifests.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chart;
mod error;
mod render;
pub mod template;
mod values;

pub use chart::{Chart, ChartMetadata, TemplateFile};
pub use error::Error;
pub use render::{render_chart, render_chart_in_namespace, RenderedManifest};
pub use template::{ReleaseInfo, TemplateEngine};
pub use values::{EnumAnnotation, ValuesFile};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
