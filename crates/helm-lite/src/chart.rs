//! The chart model: metadata, templates and default values.

use serde::{Deserialize, Serialize};

use crate::values::ValuesFile;

/// Chart metadata (the relevant subset of `Chart.yaml`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChartMetadata {
    /// Chart name (e.g. `nginx`).
    pub name: String,
    /// Chart version.
    pub version: String,
    /// Application version packaged by the chart.
    pub app_version: String,
    /// One-line description.
    pub description: String,
}

impl ChartMetadata {
    /// Metadata with a name and version; description and app version default
    /// to the name and version respectively.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        let name = name.into();
        let version = version.into();
        ChartMetadata {
            description: format!("{name} chart"),
            app_version: version.clone(),
            name,
            version,
        }
    }

    /// Set the application version, builder style.
    pub fn with_app_version(mut self, app_version: impl Into<String>) -> Self {
        self.app_version = app_version.into();
        self
    }

    /// Set the description, builder style.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }
}

/// One template file of a chart (`templates/*.yaml` or `templates/_helpers.tpl`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateFile {
    /// File name relative to the chart's `templates/` directory.
    pub name: String,
    /// Template source text.
    pub source: String,
}

impl TemplateFile {
    /// Build a template file from its name and source.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        TemplateFile {
            name: name.into(),
            source: source.into(),
        }
    }

    /// Whether the file is a helper file (only `define` blocks, no rendered
    /// output), following the Helm convention of a leading underscore.
    pub fn is_helper(&self) -> bool {
        self.name.starts_with('_')
    }
}

/// A Helm chart: metadata, default values and templates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chart {
    metadata: ChartMetadata,
    values: ValuesFile,
    templates: Vec<TemplateFile>,
}

impl Chart {
    /// Assemble a chart from its parts.
    pub fn new(metadata: ChartMetadata, values: ValuesFile, templates: Vec<TemplateFile>) -> Self {
        Chart {
            metadata,
            values,
            templates,
        }
    }

    /// Chart metadata.
    pub fn metadata(&self) -> &ChartMetadata {
        &self.metadata
    }

    /// The default values file.
    pub fn values(&self) -> &ValuesFile {
        &self.values
    }

    /// All template files (helpers included).
    pub fn templates(&self) -> &[TemplateFile] {
        &self.templates
    }

    /// The template files that produce manifests (helpers excluded).
    pub fn manifest_templates(&self) -> impl Iterator<Item = &TemplateFile> {
        self.templates.iter().filter(|t| !t.is_helper())
    }

    /// The helper template files.
    pub fn helper_templates(&self) -> impl Iterator<Item = &TemplateFile> {
        self.templates.iter().filter(|t| t.is_helper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_builder_fills_defaults() {
        let meta = ChartMetadata::new("nginx", "15.0.1")
            .with_app_version("1.25.3")
            .with_description("web server");
        assert_eq!(meta.name, "nginx");
        assert_eq!(meta.app_version, "1.25.3");
        assert_eq!(meta.description, "web server");
    }

    #[test]
    fn helper_templates_are_separated_from_manifests() {
        let chart = Chart::new(
            ChartMetadata::new("demo", "1.0.0"),
            ValuesFile::from_value(kf_yaml::Value::empty_map()),
            vec![
                TemplateFile::new(
                    "_helpers.tpl",
                    "{{- define \"demo.name\" -}}demo{{- end -}}",
                ),
                TemplateFile::new("service.yaml", "kind: Service"),
                TemplateFile::new("deployment.yaml", "kind: Deployment"),
            ],
        );
        assert_eq!(chart.manifest_templates().count(), 2);
        assert_eq!(chart.helper_templates().count(), 1);
        assert!(chart.templates()[0].is_helper());
    }
}
