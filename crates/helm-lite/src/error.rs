//! Error type for chart parsing and template rendering.

use std::fmt;

/// Error produced while parsing charts or rendering templates.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The values file (or an override document) could not be parsed.
    Values {
        /// Underlying YAML error text.
        message: String,
    },
    /// A template failed to lex or parse.
    TemplateSyntax {
        /// Template file name.
        template: String,
        /// Description of the problem.
        message: String,
    },
    /// A template failed while being evaluated.
    Render {
        /// Template file name.
        template: String,
        /// Description of the problem.
        message: String,
    },
    /// A rendered document is not valid YAML.
    InvalidOutput {
        /// Template file name.
        template: String,
        /// Underlying YAML error text.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Values { message } => write!(f, "invalid values file: {message}"),
            Error::TemplateSyntax { template, message } => {
                write!(f, "template `{template}` has invalid syntax: {message}")
            }
            Error::Render { template, message } => {
                write!(f, "failed to render template `{template}`: {message}")
            }
            Error::InvalidOutput { template, message } => {
                write!(f, "template `{template}` rendered invalid YAML: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}
