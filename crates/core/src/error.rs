//! Error type for policy generation and enforcement.

use std::fmt;

/// Error produced by the KubeFence policy pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A chart could not be parsed or rendered.
    Chart {
        /// Underlying helm-lite error text.
        message: String,
    },
    /// A rendered manifest could not be interpreted as a Kubernetes object.
    Manifest {
        /// Template that produced the manifest.
        template: String,
        /// Underlying model error text.
        message: String,
    },
    /// The generated policy is structurally inconsistent (e.g. the same field
    /// appears both as a mapping and as a scalar across variants).
    PolicyConflict {
        /// Field path at which the conflict was detected.
        path: String,
        /// Description of the conflict.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Chart { message } => write!(f, "chart processing failed: {message}"),
            Error::Manifest { template, message } => {
                write!(f, "manifest from `{template}` is invalid: {message}")
            }
            Error::PolicyConflict { path, message } => {
                write!(f, "policy conflict at `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<helm_lite::Error> for Error {
    fn from(err: helm_lite::Error) -> Self {
        Error::Chart {
            message: err.to_string(),
        }
    }
}
