//! Attack-surface quantification (Figure 9 and Table I of the paper).
//!
//! The analysis counts the configurable fields exposed by every API endpoint
//! (the [`k8s_model::schema`] catalog — the paper's 4,882-field denominator),
//! determines which of them each workload can actually use (from the
//! KubeFence validator generated for that workload), and compares how much of
//! the remaining surface RBAC and KubeFence can each restrict:
//!
//! * RBAC can only remove *entire endpoints* the workload never touches;
//! * KubeFence additionally removes every unused field *within* the endpoints
//!   the workload does touch, making it a strict superset of RBAC.

use serde::{Deserialize, Serialize};

use k8s_model::schema::{catalog, SchemaCatalog};
use k8s_model::ResourceKind;

use crate::validator::Validator;

/// Per-endpoint usage of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointUsage {
    /// The endpoint (resource kind).
    pub kind: ResourceKind,
    /// Total configurable fields of the endpoint.
    pub total_fields: usize,
    /// Fields the workload's configuration space can reach.
    pub used_fields: usize,
}

impl EndpointUsage {
    /// Percentage of the endpoint's fields used by the workload (the cell
    /// values of Figure 9).
    pub fn usage_percent(&self) -> f64 {
        if self.total_fields == 0 {
            0.0
        } else {
            100.0 * self.used_fields as f64 / self.total_fields as f64
        }
    }
}

/// The attack-surface figures of one workload (one row of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSurface {
    /// Workload (operator) name.
    pub workload: String,
    /// Per-endpoint usage, in Figure 9 column order.
    pub endpoints: Vec<EndpointUsage>,
    /// Total configurable fields across all endpoints.
    pub total_fields: usize,
    /// Fields restrictable by RBAC (all fields of fully-unused endpoints).
    pub rbac_restrictable: usize,
    /// Fields restrictable by KubeFence (every field outside the workload's
    /// configuration space).
    pub kubefence_restrictable: usize,
}

impl WorkloadSurface {
    /// RBAC attack-surface reduction, in percent.
    pub fn rbac_reduction_percent(&self) -> f64 {
        100.0 * self.rbac_restrictable as f64 / self.total_fields as f64
    }

    /// KubeFence attack-surface reduction, in percent.
    pub fn kubefence_reduction_percent(&self) -> f64 {
        100.0 * self.kubefence_restrictable as f64 / self.total_fields as f64
    }

    /// The improvement of KubeFence over RBAC, in percentage points.
    pub fn improvement_percent(&self) -> f64 {
        self.kubefence_reduction_percent() - self.rbac_reduction_percent()
    }

    /// Usage for one endpoint.
    pub fn usage_for(&self, kind: ResourceKind) -> Option<&EndpointUsage> {
        self.endpoints.iter().find(|e| e.kind == kind)
    }
}

/// The full report over all analyzed workloads.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SurfaceReport {
    /// One entry per workload.
    pub workloads: Vec<WorkloadSurface>,
}

impl SurfaceReport {
    /// Average improvement of KubeFence over RBAC across workloads (the paper
    /// reports ≈35%).
    pub fn average_improvement_percent(&self) -> f64 {
        if self.workloads.is_empty() {
            return 0.0;
        }
        self.workloads
            .iter()
            .map(WorkloadSurface::improvement_percent)
            .sum::<f64>()
            / self.workloads.len() as f64
    }

    /// Render Table I as fixed-width text.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>22} {:>22} {:>12} {:>12}\n",
            "Workload", "Restrictable (RBAC)", "Restrictable (KubeFence)", "RBAC %", "KubeFence %"
        ));
        for w in &self.workloads {
            out.push_str(&format!(
                "{:<12} {:>15} / {:>4} {:>15} / {:>4} {:>11.2}% {:>11.2}%\n",
                w.workload,
                w.rbac_restrictable,
                w.total_fields,
                w.kubefence_restrictable,
                w.total_fields,
                w.rbac_reduction_percent(),
                w.kubefence_reduction_percent(),
            ));
        }
        out.push_str(&format!(
            "average improvement of KubeFence over RBAC: {:.2} percentage points\n",
            self.average_improvement_percent()
        ));
        out
    }

    /// Render Figure 9 (percentage of API usage per workload and endpoint) as
    /// fixed-width text.
    pub fn to_heatmap(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12}", "Workload"));
        for kind in ResourceKind::ALL {
            out.push_str(&format!(" {:>7.7}", kind.as_str()));
        }
        out.push('\n');
        for w in &self.workloads {
            out.push_str(&format!("{:<12}", w.workload));
            for kind in ResourceKind::ALL {
                let pct = w
                    .usage_for(kind)
                    .map(EndpointUsage::usage_percent)
                    .unwrap_or(0.0);
                out.push_str(&format!(" {pct:>6.2}%"));
            }
            out.push('\n');
        }
        out
    }
}

/// The attack-surface analyzer.
#[derive(Debug, Clone)]
pub struct AttackSurfaceAnalyzer {
    catalog: &'static SchemaCatalog,
}

impl Default for AttackSurfaceAnalyzer {
    fn default() -> Self {
        AttackSurfaceAnalyzer::new()
    }
}

impl AttackSurfaceAnalyzer {
    /// An analyzer over the built-in field-schema catalog.
    pub fn new() -> Self {
        AttackSurfaceAnalyzer { catalog: catalog() }
    }

    /// Total configurable fields across all endpoints (Table I denominator).
    pub fn total_fields(&self) -> usize {
        self.catalog.total_field_count()
    }

    /// Analyze one workload from its generated validator.
    pub fn analyze(&self, validator: &Validator) -> WorkloadSurface {
        let mut endpoints = Vec::with_capacity(ResourceKind::ALL.len());
        let mut used_total = 0usize;
        let mut unused_endpoint_fields = 0usize;
        for kind in ResourceKind::ALL {
            let schema = self
                .catalog
                .fields_for(kind)
                .expect("catalog covers all kinds");
            let total_fields = schema.field_count();
            let used_fields = if validator.policy_for(kind).is_some() {
                let allowed = validator.field_paths(kind);
                let catalog_paths = schema.field_paths();
                allowed
                    .iter()
                    .filter(|path| catalog_paths.contains(path))
                    .count()
            } else {
                0
            };
            if validator.policy_for(kind).is_none() {
                unused_endpoint_fields += total_fields;
            }
            used_total += used_fields;
            endpoints.push(EndpointUsage {
                kind,
                total_fields,
                used_fields,
            });
        }
        let total_fields = self.total_fields();
        WorkloadSurface {
            workload: validator.workload().to_owned(),
            endpoints,
            total_fields,
            rbac_restrictable: unused_endpoint_fields,
            kubefence_restrictable: total_fields - used_total,
        }
    }

    /// Analyze several workloads into one report.
    pub fn analyze_all(&self, validators: &[Validator]) -> SurfaceReport {
        SurfaceReport {
            workloads: validators.iter().map(|v| self.analyze(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::Validator;

    fn validator_with(manifests: &[&str]) -> Validator {
        let parsed: Vec<_> = manifests
            .iter()
            .map(|m| kf_yaml::parse(m).unwrap())
            .collect();
        Validator::from_manifests("demo", &parsed).unwrap()
    }

    const DEPLOYMENT: &str = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/nginx:1.25
"#;

    const SERVICE: &str = r#"apiVersion: v1
kind: Service
metadata:
  name: web
spec:
  type: ClusterIP
  ports:
    - port: int
"#;

    #[test]
    fn kubefence_is_a_strict_superset_of_rbac() {
        let surface = AttackSurfaceAnalyzer::new().analyze(&validator_with(&[DEPLOYMENT, SERVICE]));
        assert!(surface.kubefence_restrictable > surface.rbac_restrictable);
        assert!(surface.kubefence_reduction_percent() > surface.rbac_reduction_percent());
        assert!(surface.kubefence_reduction_percent() <= 100.0);
    }

    #[test]
    fn unused_endpoints_are_fully_restrictable_by_both() {
        let surface = AttackSurfaceAnalyzer::new().analyze(&validator_with(&[DEPLOYMENT]));
        // Pod endpoint is never used: counted in RBAC's restrictable fields.
        let pod = surface.usage_for(ResourceKind::Pod).unwrap();
        assert_eq!(pod.used_fields, 0);
        assert_eq!(pod.usage_percent(), 0.0);
        assert!(surface.rbac_restrictable >= pod.total_fields);
    }

    #[test]
    fn used_endpoints_report_partial_usage() {
        let surface = AttackSurfaceAnalyzer::new().analyze(&validator_with(&[DEPLOYMENT, SERVICE]));
        let deployment = surface.usage_for(ResourceKind::Deployment).unwrap();
        assert!(deployment.used_fields > 0);
        assert!(deployment.used_fields < deployment.total_fields);
        let pct = deployment.usage_percent();
        assert!(pct > 0.0 && pct < 50.0, "deployment usage = {pct}%");
    }

    #[test]
    fn workloads_using_more_endpoints_have_lower_rbac_reduction() {
        let analyzer = AttackSurfaceAnalyzer::new();
        let narrow = analyzer.analyze(&validator_with(&[DEPLOYMENT]));
        let wide = analyzer.analyze(&validator_with(&[DEPLOYMENT, SERVICE]));
        assert!(wide.rbac_reduction_percent() < narrow.rbac_reduction_percent());
        // KubeFence stays high for both.
        assert!(wide.kubefence_reduction_percent() > 90.0);
        assert!(narrow.kubefence_reduction_percent() > 90.0);
    }

    #[test]
    fn report_renders_table_and_heatmap() {
        let analyzer = AttackSurfaceAnalyzer::new();
        let report = analyzer.analyze_all(&[validator_with(&[DEPLOYMENT, SERVICE])]);
        let table = report.to_table();
        assert!(table.contains("demo"));
        assert!(table.contains("KubeFence"));
        let heatmap = report.to_heatmap();
        assert!(heatmap.contains("Workload"));
        assert!(report.average_improvement_percent() > 0.0);
    }
}
