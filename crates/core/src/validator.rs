//! Phases 3–4 — the policy validator: generation from rendered manifests and
//! tree-based validation of incoming API requests (Figure 8 of the paper).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use k8s_model::{K8sObject, ResourceKind};
use kf_yaml::{Mapping, Value};

use crate::compile::{compile, CompiledValidator};
use crate::schema_gen::{looks_like_ip, placeholder};
use crate::security::SecurityLocks;
use crate::{Error, Result};

/// Type placeholders a validator can require for a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeTag {
    /// Any string.
    String,
    /// Any integer.
    Int,
    /// Any floating point number (integers widen).
    Float,
    /// A boolean.
    Bool,
    /// An IPv4 address literal.
    Ip,
}

impl TypeTag {
    /// The placeholder token for this type.
    pub fn placeholder(&self) -> &'static str {
        match self {
            TypeTag::String => placeholder::STRING,
            TypeTag::Int => placeholder::INT,
            TypeTag::Float => placeholder::FLOAT,
            TypeTag::Bool => "bool",
            TypeTag::Ip => placeholder::IP,
        }
    }

    /// Parse a placeholder token.
    pub fn from_placeholder(text: &str) -> Option<TypeTag> {
        match text {
            placeholder::STRING => Some(TypeTag::String),
            placeholder::INT => Some(TypeTag::Int),
            placeholder::FLOAT => Some(TypeTag::Float),
            placeholder::IP => Some(TypeTag::Ip),
            "bool" => Some(TypeTag::Bool),
            _ => None,
        }
    }

    /// Whether a concrete value satisfies this type.
    ///
    /// Numeric types also accept their quoted (string) forms: Kubernetes
    /// manifests routinely quote numbers (environment variable values, ports
    /// in annotations), and YAML round-trips through `kubectl` preserve the
    /// quoting.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            TypeTag::String => value.as_str().is_some(),
            TypeTag::Int => {
                value.as_i64().is_some()
                    || value
                        .as_str()
                        .map(|s| s.parse::<i64>().is_ok())
                        .unwrap_or(false)
            }
            TypeTag::Float => {
                value.as_f64().is_some()
                    || value
                        .as_str()
                        .map(|s| s.parse::<f64>().is_ok())
                        .unwrap_or(false)
            }
            TypeTag::Bool => value.as_bool().is_some(),
            TypeTag::Ip => value.as_str().map(looks_like_ip).unwrap_or(false),
        }
    }
}

/// One node of a policy validator tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyNode {
    /// The field must equal this exact value (fixed chart constants and
    /// security-locked fields).
    Const(Value),
    /// The field may take any value of the given type.
    Type(TypeTag),
    /// The field must be a string matching a rendered template with embedded
    /// placeholders (e.g. `docker.io/bitnami/nginx:string`, where the tag is
    /// free but registry and repository are locked).
    Pattern(String),
    /// The field must equal one of the listed values (enumerations
    /// consolidated across manifests).
    Enum(Vec<Value>),
    /// A mapping; only the listed keys are allowed.
    Map(BTreeMap<String, PolicyNode>),
    /// A sequence; every element must satisfy the element policy.
    Seq(Box<PolicyNode>),
    /// Anything is allowed (conflict fallback; also the element policy of
    /// empty sequences).
    Any,
}

impl PolicyNode {
    /// Derive a policy node from a rendered manifest value, interpreting the
    /// placeholder tokens left by the values schema.
    pub fn from_manifest_value(value: &Value) -> PolicyNode {
        match value {
            Value::Str(text) => match TypeTag::from_placeholder(text) {
                Some(tag) => PolicyNode::Type(tag),
                // Placeholders that went through `b64enc` in a Secret template
                // come out as the base64 encoding of the token; they still
                // denote "any (encoded) string value".
                None if BASE64_PLACEHOLDERS.contains(&text.as_str()) => {
                    PolicyNode::Type(TypeTag::String)
                }
                None if pattern_pieces(text).is_some() => PolicyNode::Pattern(text.clone()),
                None => PolicyNode::Const(value.clone()),
            },
            Value::Map(map) => PolicyNode::Map(
                map.iter()
                    .map(|(k, v)| (k.to_owned(), PolicyNode::from_manifest_value(v)))
                    .collect(),
            ),
            Value::Seq(items) => {
                let element = items
                    .iter()
                    .map(PolicyNode::from_manifest_value)
                    .reduce(|a, b| a.merge(b))
                    .unwrap_or(PolicyNode::Any);
                PolicyNode::Seq(Box::new(element))
            }
            scalar => PolicyNode::Const(scalar.clone()),
        }
    }

    /// Merge two policy nodes derived from different manifests/variants:
    /// identical constants stay constants, diverging constants become
    /// enumerations, placeholders absorb matching constants, and mappings
    /// merge key-by-key. Structurally conflicting nodes widen to
    /// [`PolicyNode::Any`].
    pub fn merge(self, other: PolicyNode) -> PolicyNode {
        use PolicyNode::*;
        let merged = match (self, other) {
            (Any, _) | (_, Any) => Any,
            (Map(mut a), Map(b)) => {
                for (key, node) in b {
                    let merged = match a.remove(&key) {
                        Some(existing) => existing.merge(node),
                        None => node,
                    };
                    a.insert(key, merged);
                }
                Map(a)
            }
            (Seq(a), Seq(b)) => Seq(Box::new(a.merge(*b))),
            (Const(a), Const(b)) => {
                if a.loosely_equals(&b) {
                    Const(a)
                } else {
                    Enum(vec![a, b])
                }
            }
            (Enum(mut a), Const(c)) | (Const(c), Enum(mut a)) => {
                if !a.iter().any(|v| v.loosely_equals(&c)) {
                    a.push(c);
                }
                Enum(a)
            }
            (Enum(mut a), Enum(b)) => {
                for v in b {
                    if !a.iter().any(|existing| existing.loosely_equals(&v)) {
                        a.push(v);
                    }
                }
                Enum(a)
            }
            (Type(t), Type(u)) => {
                if t == u {
                    Type(t)
                } else {
                    Any
                }
            }
            (Type(t), Const(c)) | (Const(c), Type(t)) => {
                if t.matches(&c) {
                    Type(t)
                } else {
                    Any
                }
            }
            (Type(t), Enum(e)) | (Enum(e), Type(t)) => {
                if e.iter().all(|v| t.matches(v)) {
                    Type(t)
                } else {
                    Any
                }
            }
            (Pattern(a), Pattern(b)) => {
                if a == b {
                    Pattern(a)
                } else {
                    Type(TypeTag::String)
                }
            }
            (Pattern(p), Const(c)) | (Const(c), Pattern(p)) => match c.as_str() {
                Some(text) if pattern_matches(&p, text) => Pattern(p),
                Some(_) => Type(TypeTag::String),
                None => Any,
            },
            (Pattern(_), Type(TypeTag::String)) | (Type(TypeTag::String), Pattern(_)) => {
                Type(TypeTag::String)
            }
            (Pattern(_), _) | (_, Pattern(_)) => Any,
            // Structural conflicts (mapping vs scalar, sequence vs scalar):
            // widen rather than fail, matching the paper's "include all
            // possible options" conflict resolution.
            _ => Any,
        };
        merged.normalized()
    }

    /// Normalize enumerations: a two-value boolean enumeration is the `bool`
    /// type placeholder.
    fn normalized(self) -> PolicyNode {
        match self {
            PolicyNode::Enum(values)
                if values.len() == 2
                    && values.iter().any(|v| v == &Value::Bool(true))
                    && values.iter().any(|v| v == &Value::Bool(false)) =>
            {
                PolicyNode::Type(TypeTag::Bool)
            }
            other => other,
        }
    }

    /// The collapsed field paths allowed under this node, prefixed by
    /// `prefix`. Mapping keys contribute a path each; sequences contribute the
    /// `[]` marker.
    pub fn field_paths(&self, prefix: &str, out: &mut Vec<String>) {
        match self {
            PolicyNode::Map(children) => {
                for (key, child) in children {
                    let path = if prefix.is_empty() {
                        key.clone()
                    } else {
                        format!("{prefix}.{key}")
                    };
                    out.push(path.clone());
                    child.field_paths(&path, out);
                }
            }
            PolicyNode::Seq(element) => {
                element.field_paths(&format!("{prefix}[]"), out);
            }
            _ => {}
        }
    }

    /// Convert the policy node into the YAML representation used by the
    /// paper's validator files (placeholders as strings, enumerations as
    /// lists).
    pub fn to_value(&self) -> Value {
        match self {
            PolicyNode::Const(v) => v.clone(),
            PolicyNode::Pattern(p) => Value::from(p.clone()),
            PolicyNode::Type(tag) => Value::from(tag.placeholder()),
            PolicyNode::Enum(values) => Value::Seq(values.clone()),
            PolicyNode::Map(children) => {
                let mut map = Mapping::new();
                for (key, child) in children {
                    map.insert(key.clone(), child.to_value());
                }
                Value::Map(map)
            }
            PolicyNode::Seq(element) => Value::Seq(vec![element.to_value()]),
            PolicyNode::Any => Value::from("<any>"),
        }
    }
}

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViolationReason {
    /// The request targets a resource kind the workload never uses.
    UnknownKind,
    /// The request uses a field the workload's configuration space never
    /// produces.
    UnknownField,
    /// The field value has the wrong type.
    TypeMismatch {
        /// Expected placeholder type.
        expected: String,
        /// Type actually found.
        found: String,
    },
    /// The field value is outside the allowed constant/enumeration set.
    ValueNotAllowed {
        /// Allowed values (rendered).
        allowed: String,
        /// Value actually found.
        found: String,
    },
    /// A structural mismatch (e.g. a scalar where a mapping is required).
    StructureMismatch {
        /// Expected structure.
        expected: String,
        /// Structure actually found.
        found: String,
    },
}

/// One violation: the offending field plus the reason, as logged by the proxy
/// for auditing and forensics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Path of the offending field.
    pub path: String,
    /// Why it was rejected.
    pub reason: ViolationReason,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            ViolationReason::UnknownKind => {
                write!(f, "resource kind `{}` is not allowed", self.path)
            }
            ViolationReason::UnknownField => write!(f, "field `{}` is not allowed", self.path),
            ViolationReason::TypeMismatch { expected, found } => write!(
                f,
                "field `{}` must be of type {expected}, found {found}",
                self.path
            ),
            ViolationReason::ValueNotAllowed { allowed, found } => write!(
                f,
                "field `{}` must be one of [{allowed}], found `{found}`",
                self.path
            ),
            ViolationReason::StructureMismatch { expected, found } => write!(
                f,
                "field `{}` must be a {expected}, found {found}",
                self.path
            ),
        }
    }
}

/// A workload's policy validator: one policy tree per resource kind the
/// workload is allowed to manage.
///
/// The tree ([`PolicyNode`]) is the authoring representation: manifests merge
/// into it and security locks rewrite it. Enforcement runs on the compiled
/// form (see [`crate::compile`]), built lazily on first use and invalidated
/// whenever the tree is mutated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Validator {
    workload: String,
    kinds: BTreeMap<ResourceKind, PolicyNode>,
    /// Lazily compiled enforcement form of `kinds`. Never serialized or
    /// compared; rebuilt on demand after mutation.
    #[serde(skip)]
    compiled: OnceLock<CompiledValidator>,
}

impl PartialEq for Validator {
    fn eq(&self, other: &Self) -> bool {
        // The compiled arena is a cache of `kinds`; equality is defined on
        // the authoring representation alone.
        self.workload == other.workload && self.kinds == other.kinds
    }
}

impl Validator {
    /// An empty validator (allows nothing).
    pub fn empty(workload: &str) -> Self {
        Validator {
            workload: workload.to_owned(),
            kinds: BTreeMap::new(),
            compiled: OnceLock::new(),
        }
    }

    /// Build a validator by consolidating rendered manifests, grouped by
    /// resource kind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Manifest`] when a manifest cannot be interpreted as a
    /// Kubernetes object of a known kind.
    pub fn from_manifests(workload: &str, manifests: &[Value]) -> Result<Self> {
        let mut kinds: BTreeMap<ResourceKind, PolicyNode> = BTreeMap::new();
        for manifest in manifests {
            let object = K8sObject::from_value(manifest.clone()).map_err(|e| Error::Manifest {
                template: workload.to_owned(),
                message: e.to_string(),
            })?;
            let node = PolicyNode::from_manifest_value(object.body());
            let merged = match kinds.remove(&object.kind()) {
                Some(existing) => existing.merge(node),
                None => node,
            };
            kinds.insert(object.kind(), merged);
        }
        Ok(Validator {
            workload: workload.to_owned(),
            kinds,
            compiled: OnceLock::new(),
        })
    }

    /// Workload name the validator was generated for.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// A validator restored from a pre-compiled arena (the ahead-of-time
    /// policy cache; see [`crate::aot`]). The compiled form is primed
    /// directly, so enforcement starts without ever touching the authoring
    /// tree — which is empty for such a validator. Tree-side operations
    /// ([`Validator::validate_tree`], [`Validator::apply_security_locks`],
    /// [`Validator::to_yaml`]) see that empty tree; arena-restored
    /// validators are an enforcement-only form.
    pub fn from_arena(workload: &str, compiled: CompiledValidator) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(compiled);
        Validator {
            workload: workload.to_owned(),
            kinds: BTreeMap::new(),
            compiled: cell,
        }
    }

    /// The resource kinds the validator allows. For an arena-restored
    /// validator (empty authoring tree) this falls back to the compiled
    /// coverage table, so kind routing works identically for both forms.
    pub fn kinds(&self) -> Vec<ResourceKind> {
        if self.kinds.is_empty() {
            if let Some(compiled) = self.compiled.get() {
                return compiled.kinds();
            }
        }
        self.kinds.keys().copied().collect()
    }

    /// The policy tree for a kind.
    pub fn policy_for(&self, kind: ResourceKind) -> Option<&PolicyNode> {
        self.kinds.get(&kind)
    }

    /// Apply the security locks: for every kind that carries a pod
    /// specification, locked fields are pinned to their safe constants (and
    /// added when `add_if_missing` is set and the surrounding structure
    /// exists).
    pub fn apply_security_locks(&mut self, locks: &SecurityLocks) {
        for (kind, node) in self.kinds.iter_mut() {
            let Some(prefix) = k8s_model::FieldRef::pod_spec_prefix(*kind) else {
                continue;
            };
            for lock in locks.locks() {
                let absolute = format!("{prefix}.{}", lock.field);
                let segments: Vec<&str> = absolute.split('.').collect();
                apply_lock(node, &segments, &lock.locked_value, lock.add_if_missing);
            }
        }
        // The policy trees changed; drop the compiled cache so enforcement
        // recompiles against the locked trees.
        self.compiled = OnceLock::new();
    }

    /// The compiled (flat-arena) form of this validator, built on first use.
    /// This is what the enforcement hot path evaluates.
    pub fn compiled(&self) -> &CompiledValidator {
        self.compiled
            .get_or_init(|| compile(self.kinds.iter().map(|(kind, node)| (*kind, node))))
    }

    /// Validate an object against the policy; an empty vector means the
    /// request complies. Runs on the compiled form.
    pub fn validate(&self, object: &K8sObject) -> Vec<Violation> {
        self.compiled().validate(object)
    }

    /// Validate by walking the authoring tree directly. Kept as the reference
    /// implementation: differential and fuzz tests assert the compiled plane
    /// produces identical verdicts, and ablation benchmarks measure the gap.
    pub fn validate_tree(&self, object: &K8sObject) -> Vec<Violation> {
        let Some(policy) = self.kinds.get(&object.kind()) else {
            return vec![Violation {
                path: object.kind().as_str().to_owned(),
                reason: ViolationReason::UnknownKind,
            }];
        };
        let mut violations = Vec::new();
        validate_node(policy, object.body(), "", &mut violations);
        violations
    }

    /// Whether the object complies with the policy. Short-circuits on the
    /// compiled form without allocating.
    pub fn allows(&self, object: &K8sObject) -> bool {
        self.compiled().allows(object)
    }

    /// The collapsed field paths allowed for a kind (used by the
    /// attack-surface analysis).
    pub fn field_paths(&self, kind: ResourceKind) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(node) = self.kinds.get(&kind) {
            node.field_paths("", &mut out);
        }
        out.sort();
        out.dedup();
        out
    }

    /// Serialize the validator to YAML, one document per kind.
    pub fn to_yaml(&self) -> String {
        let mut out = String::new();
        for (kind, node) in &self.kinds {
            out.push_str("---\n");
            let mut doc = Mapping::new();
            doc.insert("kind", Value::from(kind.as_str()));
            doc.insert("policy", node.to_value());
            out.push_str(&kf_yaml::to_yaml(&Value::Map(doc)));
        }
        out
    }
}

/// A set of validators (one per protected workload); a request is allowed if
/// any member validator allows it.
///
/// Dispatch is kind-indexed: a precomputed routing table maps every
/// [`ResourceKind`] to the member validators that cover it, so a request only
/// ever consults validators that could possibly admit it instead of scanning
/// the whole set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValidatorSet {
    validators: Vec<Validator>,
    /// `routes[kind.index()]` lists the indices of validators covering that
    /// kind, in insertion order. Built lazily; invalidated by `push`.
    #[serde(skip)]
    routes: OnceLock<Vec<Vec<u32>>>,
}

impl PartialEq for ValidatorSet {
    fn eq(&self, other: &Self) -> bool {
        // The routing table is a cache; equality is membership equality.
        self.validators == other.validators
    }
}

impl ValidatorSet {
    /// An empty set (allows nothing).
    pub fn new() -> Self {
        ValidatorSet::default()
    }

    /// A set with a single validator.
    pub fn single(validator: Validator) -> Self {
        ValidatorSet {
            validators: vec![validator],
            routes: OnceLock::new(),
        }
    }

    /// Add a validator.
    pub fn push(&mut self, validator: Validator) {
        self.validators.push(validator);
        // Membership changed; the routing table is rebuilt on next use.
        self.routes = OnceLock::new();
    }

    /// The member validators.
    pub fn validators(&self) -> &[Validator] {
        &self.validators
    }

    /// The kind-routing table: for each kind index, the member validators
    /// (by index, in insertion order) whose policies cover that kind.
    fn routes(&self) -> &Vec<Vec<u32>> {
        self.routes.get_or_init(|| {
            let mut routes = vec![Vec::new(); ResourceKind::COUNT];
            for (index, validator) in self.validators.iter().enumerate() {
                for kind in validator.kinds() {
                    routes[kind.index()].push(index as u32);
                }
            }
            routes
        })
    }

    /// The member validators (by index) that cover a kind.
    pub fn validators_for(&self, kind: ResourceKind) -> &[u32] {
        &self.routes()[kind.index()]
    }

    /// Validate an object: returns `Ok(())` when some member validator allows
    /// it, otherwise the violations reported by the closest matching
    /// *covering* validator (fewest violations), which is what the proxy
    /// logs.
    ///
    /// Dispatch is two-tier: the kind-routing table narrows the candidate
    /// validators to those covering the object's kind (an O(1) indexed
    /// lookup), and the admit decision runs each candidate's compiled
    /// fast path, which neither allocates nor builds violation reports.
    /// Violations are collected only after all candidates denied — the
    /// denial path is the rare one.
    pub fn validate(&self, object: &K8sObject) -> std::result::Result<(), Vec<Violation>> {
        self.validate_kind_body(object.kind(), object.body())
    }

    /// [`ValidatorSet::validate`] over a borrowed body — the proxy's
    /// zero-copy entry point.
    pub fn validate_kind_body(
        &self,
        kind: ResourceKind,
        body: &Value,
    ) -> std::result::Result<(), Vec<Violation>> {
        let route = self.validators_for(kind);
        // Fast path: any covering validator that admits ends the request.
        for &index in route {
            if self.validators[index as usize]
                .compiled()
                .allows_kind_body(kind, body)
            {
                return Ok(());
            }
        }
        if route.is_empty() {
            return Err(vec![Violation {
                path: kind.as_str().to_owned(),
                reason: ViolationReason::UnknownKind,
            }]);
        }
        // Denial path: collect per-validator violations and report the
        // closest match among the validators that actually cover the kind.
        let mut best: Option<Vec<Violation>> = None;
        for &index in route {
            let violations = self.validators[index as usize]
                .compiled()
                .validate_kind_body(kind, body);
            match &best {
                Some(existing) if existing.len() <= violations.len() => {}
                _ => best = Some(violations),
            }
        }
        Err(best.expect("route is non-empty"))
    }

    /// The pre-compilation reference semantics: try every member validator in
    /// turn with the tree-walking validator. Differential tests assert the
    /// kind-indexed [`ValidatorSet::validate`] admits and denies identically.
    pub fn validate_tree_scan(
        &self,
        object: &K8sObject,
    ) -> std::result::Result<(), Vec<Violation>> {
        let mut best: Option<Vec<Violation>> = None;
        for validator in &self.validators {
            let violations = validator.validate_tree(object);
            if violations.is_empty() {
                return Ok(());
            }
            match &best {
                Some(existing) if existing.len() <= violations.len() => {}
                _ => best = Some(violations),
            }
        }
        Err(best.unwrap_or_else(|| {
            vec![Violation {
                path: object.kind().as_str().to_owned(),
                reason: ViolationReason::UnknownKind,
            }]
        }))
    }
}

/// Walk the policy tree applying a lock along a dotted path with `[]` markers.
fn apply_lock(node: &mut PolicyNode, segments: &[&str], value: &Value, add_if_missing: bool) {
    let Some((head, rest)) = segments.split_first() else {
        *node = PolicyNode::Const(value.clone());
        return;
    };
    let (key, fanout) = match head.strip_suffix("[]") {
        Some(stripped) => (stripped, true),
        None => (*head, false),
    };
    let PolicyNode::Map(children) = node else {
        return;
    };
    let child = match children.get_mut(key) {
        Some(child) => child,
        None => {
            if !add_if_missing || fanout {
                return;
            }
            children.insert(key.to_owned(), PolicyNode::Map(BTreeMap::new()));
            children.get_mut(key).expect("just inserted")
        }
    };
    if fanout {
        if let PolicyNode::Seq(element) = child {
            descend_lock(element, rest, value, add_if_missing);
        }
    } else {
        descend_lock(child, rest, value, add_if_missing);
    }
}

fn descend_lock(node: &mut PolicyNode, rest: &[&str], value: &Value, add_if_missing: bool) {
    if rest.is_empty() {
        *node = PolicyNode::Const(value.clone());
    } else {
        // Intermediate structures that are not mappings yet (e.g. a missing
        // securityContext added on demand) are created as empty maps.
        if add_if_missing && !matches!(node, PolicyNode::Map(_) | PolicyNode::Seq(_)) {
            *node = PolicyNode::Map(BTreeMap::new());
        }
        apply_lock(node, rest, value, add_if_missing);
    }
}

/// The base64 encodings of the placeholder tokens (`string`, `int`, `float`,
/// `bool`, `IP`): what a placeholder looks like after a chart's `b64enc`
/// helper has processed it inside a Secret template.
const BASE64_PLACEHOLDERS: [&str; 5] = ["c3RyaW5n", "aW50", "ZmxvYXQ=", "Ym9vbA==", "SVA="];

/// One piece of a string pattern with embedded placeholders. Shared with the
/// compiled plane, which pre-splits patterns at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PatternPiece {
    /// Literal text that must appear verbatim.
    Literal(String),
    /// A placeholder wildcard (at least one character).
    Wildcard,
}

/// Split a rendered string into pattern pieces if it embeds placeholder
/// tokens (`string`, `int`, `float`, `IP`, `bool`) delimited by
/// non-alphanumeric characters. Returns `None` when the string contains no
/// embedded placeholder and should be treated as a constant.
pub(crate) fn pattern_pieces(text: &str) -> Option<Vec<PatternPiece>> {
    const TOKENS: [&str; 5] = ["string", "int", "float", "bool", "IP"];
    let bytes = text.as_bytes();
    let mut pieces = Vec::new();
    let mut literal = String::new();
    let mut i = 0;
    let mut found = false;
    while i < bytes.len() {
        let mut matched = None;
        for token in TOKENS {
            if text[i..].starts_with(token) {
                let before_ok = i == 0 || !(bytes[i - 1] as char).is_ascii_alphanumeric();
                let after = i + token.len();
                let after_ok =
                    after == bytes.len() || !(bytes[after] as char).is_ascii_alphanumeric();
                if before_ok && after_ok {
                    matched = Some(token.len());
                    break;
                }
            }
        }
        match matched {
            Some(len) => {
                if !literal.is_empty() {
                    pieces.push(PatternPiece::Literal(std::mem::take(&mut literal)));
                }
                pieces.push(PatternPiece::Wildcard);
                found = true;
                i += len;
            }
            None => {
                literal.push(text[i..].chars().next().expect("in bounds"));
                i += text[i..].chars().next().expect("in bounds").len_utf8();
            }
        }
    }
    if !literal.is_empty() {
        pieces.push(PatternPiece::Literal(literal));
    }
    // A bare placeholder (all wildcards, no literal) is handled as a Type
    // node, not as a pattern.
    if found && pieces.iter().any(|p| matches!(p, PatternPiece::Literal(_))) {
        Some(pieces)
    } else {
        None
    }
}

/// Whether a concrete string matches a pattern with embedded placeholders.
/// Splits the pattern on every call; the compiled plane avoids the re-split
/// by caching the pieces (see [`crate::compile::CompiledPattern`]).
fn pattern_matches(pattern: &str, text: &str) -> bool {
    let Some(pieces) = pattern_pieces(pattern) else {
        return pattern == text;
    };
    pieces_match(&pieces, text)
}

/// Whether a concrete string matches an already-split piece list.
pub(crate) fn pieces_match(pieces: &[PatternPiece], text: &str) -> bool {
    let mut pos = 0usize;
    let mut pending_wildcard = false;
    for (index, piece) in pieces.iter().enumerate() {
        match piece {
            PatternPiece::Wildcard => pending_wildcard = true,
            PatternPiece::Literal(literal) => {
                if index == 0 {
                    if !text.starts_with(literal.as_str()) {
                        return false;
                    }
                    pos = literal.len();
                } else {
                    // A wildcard before this literal must consume at least one
                    // character.
                    let search_from = if pending_wildcard { pos + 1 } else { pos };
                    if search_from > text.len() {
                        return false;
                    }
                    match text[search_from..].find(literal.as_str()) {
                        Some(offset) => {
                            if !pending_wildcard && offset != 0 {
                                return false;
                            }
                            pos = search_from + offset + literal.len();
                        }
                        None => return false,
                    }
                }
                pending_wildcard = false;
            }
        }
    }
    if pending_wildcard {
        pos < text.len()
    } else {
        pos == text.len()
    }
}

fn validate_node(policy: &PolicyNode, value: &Value, path: &str, violations: &mut Vec<Violation>) {
    match policy {
        PolicyNode::Any => {}
        PolicyNode::Const(expected) => {
            if !value.loosely_equals(expected) {
                violations.push(Violation {
                    path: path.to_owned(),
                    reason: ViolationReason::ValueNotAllowed {
                        allowed: expected.scalar_to_string(),
                        found: value.scalar_to_string(),
                    },
                });
            }
        }
        PolicyNode::Type(tag) => {
            if !tag.matches(value) {
                violations.push(Violation {
                    path: path.to_owned(),
                    reason: ViolationReason::TypeMismatch {
                        expected: tag.placeholder().to_owned(),
                        found: value.type_name().to_owned(),
                    },
                });
            }
        }
        PolicyNode::Pattern(pattern) => {
            let ok = value
                .as_str()
                .map(|text| pattern_matches(pattern, text))
                .unwrap_or(false);
            if !ok {
                violations.push(Violation {
                    path: path.to_owned(),
                    reason: ViolationReason::ValueNotAllowed {
                        allowed: pattern.clone(),
                        found: value.scalar_to_string(),
                    },
                });
            }
        }
        PolicyNode::Enum(options) => {
            if !options.iter().any(|o| value.loosely_equals(o)) {
                violations.push(Violation {
                    path: path.to_owned(),
                    reason: ViolationReason::ValueNotAllowed {
                        allowed: options
                            .iter()
                            .map(Value::scalar_to_string)
                            .collect::<Vec<_>>()
                            .join(", "),
                        found: value.scalar_to_string(),
                    },
                });
            }
        }
        PolicyNode::Map(children) => match value {
            Value::Map(map) => {
                for (key, child_value) in map.iter() {
                    let child_path = if path.is_empty() {
                        key.to_owned()
                    } else {
                        format!("{path}.{key}")
                    };
                    match children.get(key) {
                        Some(child_policy) => {
                            validate_node(child_policy, child_value, &child_path, violations)
                        }
                        None => violations.push(Violation {
                            path: child_path,
                            reason: ViolationReason::UnknownField,
                        }),
                    }
                }
            }
            other => violations.push(Violation {
                path: path.to_owned(),
                reason: ViolationReason::StructureMismatch {
                    expected: "mapping".to_owned(),
                    found: other.type_name().to_owned(),
                },
            }),
        },
        PolicyNode::Seq(element) => match value {
            Value::Seq(items) => {
                for (i, item) in items.iter().enumerate() {
                    validate_node(element, item, &format!("{path}[{i}]"), violations);
                }
            }
            other => violations.push(Violation {
                path: path.to_owned(),
                reason: ViolationReason::StructureMismatch {
                    expected: "sequence".to_owned(),
                    found: other.type_name().to_owned(),
                },
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(yaml: &str) -> Value {
        kf_yaml::parse(yaml).unwrap()
    }

    /// A manifest as rendered by the policy pipeline: type placeholders where
    /// the chart lets users choose values.
    fn deployment_manifest(image_policy: &str) -> Value {
        manifest(&format!(
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:1.25
          imagePullPolicy: {image_policy}
          ports:
            - containerPort: int
          securityContext:
            runAsNonRoot: true
"#
        ))
    }

    /// A concrete request manifest, as a client would submit it.
    fn request_manifest(image_policy: &str) -> Value {
        manifest(&format!(
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 3
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:1.25
          imagePullPolicy: {image_policy}
          ports:
            - containerPort: 8080
          securityContext:
            runAsNonRoot: true
"#
        ))
    }

    fn validator() -> Validator {
        Validator::from_manifests(
            "demo",
            &[
                deployment_manifest("IfNotPresent"),
                deployment_manifest("Always"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn placeholders_become_type_nodes_and_constants_stay_constant() {
        let v = validator();
        let policy = v.policy_for(ResourceKind::Deployment).unwrap();
        let PolicyNode::Map(root) = policy else {
            panic!("expected a map policy");
        };
        let PolicyNode::Map(spec) = &root["spec"] else {
            panic!("expected spec map");
        };
        assert_eq!(spec["replicas"], PolicyNode::Type(TypeTag::Int));
    }

    #[test]
    fn diverging_constants_merge_into_enumerations() {
        let v = validator();
        let paths = v.field_paths(ResourceKind::Deployment);
        assert!(paths.contains(&"spec.template.spec.containers[].imagePullPolicy".to_string()));
        // The two manifests differ only in imagePullPolicy; both options must
        // be allowed and anything else rejected.
        let ok = K8sObject::from_value(request_manifest("Always")).unwrap();
        assert!(v.allows(&ok));
        let bad = K8sObject::from_value(request_manifest("Never")).unwrap();
        let violations = v.validate(&bad);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0].reason,
            ViolationReason::ValueNotAllowed { .. }
        ));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let v = validator();
        let mut body = request_manifest("Always");
        body.set_path(
            &kf_yaml::Path::parse("spec.template.spec.hostNetwork").unwrap(),
            Value::Bool(true),
        )
        .unwrap();
        let object = K8sObject::from_value(body).unwrap();
        let violations = v.validate(&object);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].path, "spec.template.spec.hostNetwork");
        assert!(matches!(
            violations[0].reason,
            ViolationReason::UnknownField
        ));
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let v = validator();
        let secret = K8sObject::minimal(ResourceKind::Secret, "s", "default");
        let violations = v.validate(&secret);
        assert!(matches!(violations[0].reason, ViolationReason::UnknownKind));
    }

    #[test]
    fn type_placeholders_validate_by_type() {
        let v = validator();
        let mut body = request_manifest("Always");
        body.set_path(
            &kf_yaml::Path::parse("spec.replicas").unwrap(),
            Value::from(7),
        )
        .unwrap();
        assert!(v.allows(&K8sObject::from_value(body.clone()).unwrap()));
        body.set_path(
            &kf_yaml::Path::parse("spec.replicas").unwrap(),
            Value::from("a lot"),
        )
        .unwrap();
        let violations = v.validate(&K8sObject::from_value(body).unwrap());
        assert!(matches!(
            violations[0].reason,
            ViolationReason::TypeMismatch { .. }
        ));
    }

    #[test]
    fn nested_sequences_validate_each_element() {
        let v = validator();
        let mut body = request_manifest("Always");
        // Add a second container with a disallowed extra field.
        let containers = body
            .get_path_mut(&kf_yaml::Path::parse("spec.template.spec.containers").unwrap())
            .unwrap()
            .as_seq_mut()
            .unwrap();
        let mut second = containers[0].clone();
        second
            .set_path(
                &kf_yaml::Path::parse("securityContext.privileged").unwrap(),
                Value::Bool(true),
            )
            .unwrap();
        containers.push(second);
        let violations = v.validate(&K8sObject::from_value(body).unwrap());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].path.contains("containers[1]"));
    }

    #[test]
    fn security_locks_pin_fields_to_safe_constants() {
        let mut v = validator();
        v.apply_security_locks(&SecurityLocks::best_practices());
        // runAsNonRoot was `true` in the manifests and stays locked to true.
        let mut body = request_manifest("Always");
        body.set_path(
            &kf_yaml::Path::parse("spec.template.spec.containers[0].securityContext.runAsNonRoot")
                .unwrap(),
            Value::Bool(false),
        )
        .unwrap();
        let violations = v.validate(&K8sObject::from_value(body).unwrap());
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0].reason,
            ViolationReason::ValueNotAllowed { .. }
        ));
        // allowPrivilegeEscalation was absent from the chart but is added by
        // the lock table (add_if_missing), locked to false.
        let mut body = request_manifest("Always");
        body.set_path(
            &kf_yaml::Path::parse(
                "spec.template.spec.containers[0].securityContext.allowPrivilegeEscalation",
            )
            .unwrap(),
            Value::Bool(false),
        )
        .unwrap();
        assert!(v.allows(&K8sObject::from_value(body.clone()).unwrap()));
        body.set_path(
            &kf_yaml::Path::parse(
                "spec.template.spec.containers[0].securityContext.allowPrivilegeEscalation",
            )
            .unwrap(),
            Value::Bool(true),
        )
        .unwrap();
        assert!(!v.allows(&K8sObject::from_value(body).unwrap()));
    }

    #[test]
    fn boolean_enumerations_normalize_to_the_bool_type() {
        let a = PolicyNode::Const(Value::Bool(true));
        let b = PolicyNode::Const(Value::Bool(false));
        assert_eq!(a.merge(b), PolicyNode::Type(TypeTag::Bool));
    }

    #[test]
    fn structural_conflicts_widen_to_any() {
        let map = PolicyNode::Map(BTreeMap::new());
        let scalar = PolicyNode::Const(Value::from("x"));
        assert_eq!(map.merge(scalar), PolicyNode::Any);
    }

    #[test]
    fn validator_set_allows_when_any_member_allows() {
        let set_validator = validator();
        let mut set = ValidatorSet::new();
        set.push(Validator::empty("other"));
        set.push(set_validator);
        let ok = K8sObject::from_value(request_manifest("Always")).unwrap();
        assert!(set.validate(&ok).is_ok());
        let secret = K8sObject::minimal(ResourceKind::Secret, "s", "default");
        assert!(set.validate(&secret).is_err());
    }

    #[test]
    fn yaml_export_contains_placeholders_and_kinds() {
        let v = validator();
        let yaml = v.to_yaml();
        assert!(yaml.contains("kind: Deployment"));
        assert!(yaml.contains("replicas: int"));
    }
}
