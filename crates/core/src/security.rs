//! Security best-practice locks.
//!
//! The paper's schema-generation phase "locks predefined safe constants to
//! fields critical to security, according to best practices for K8s resource
//! specifications" (e.g. `securityContext.runAsNonRoot: true`), and adds
//! missing critical fields explicitly. The lock table below follows the
//! NSA/CISA Kubernetes Hardening Guide and the Pod Security Standards the
//! paper cites, and covers every misconfiguration of the catalog (M1–M7).

use serde::{Deserialize, Serialize};

use kf_yaml::Value;

/// One security lock: a pod-spec-relative field (collapsed notation) pinned to
/// a safe constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityLock {
    /// Pod-spec-relative field path in collapsed notation
    /// (e.g. `containers[].securityContext.runAsNonRoot`).
    pub field: String,
    /// The only allowed value for the field.
    pub locked_value: Value,
    /// Whether the field should be added to the schema even when the chart
    /// never mentions it ("any missing critical field is explicitly added").
    pub add_if_missing: bool,
    /// Which catalog entry or guideline motivates the lock (documentation
    /// only).
    pub rationale: String,
}

impl SecurityLock {
    fn new(field: &str, locked_value: Value, add_if_missing: bool, rationale: &str) -> Self {
        SecurityLock {
            field: field.to_owned(),
            locked_value,
            add_if_missing,
            rationale: rationale.to_owned(),
        }
    }
}

/// The set of security locks applied during policy generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityLocks {
    locks: Vec<SecurityLock>,
}

impl Default for SecurityLocks {
    fn default() -> Self {
        SecurityLocks::best_practices()
    }
}

impl SecurityLocks {
    /// An empty lock set (used by the ablation benchmarks).
    pub fn none() -> Self {
        SecurityLocks { locks: Vec::new() }
    }

    /// The built-in best-practice lock table.
    pub fn best_practices() -> Self {
        let locks = vec![
            SecurityLock::new(
                "hostNetwork",
                Value::Bool(false),
                false,
                "M1/E1: sharing the host network namespace exposes node services (CVE-2020-15257)",
            ),
            SecurityLock::new(
                "hostPID",
                Value::Bool(false),
                false,
                "M2: sharing the host PID namespace allows process inspection and signaling",
            ),
            SecurityLock::new(
                "hostIPC",
                Value::Bool(false),
                false,
                "M1: sharing the host IPC namespace leaks shared memory",
            ),
            SecurityLock::new(
                "containers[].securityContext.runAsNonRoot",
                Value::Bool(true),
                true,
                "M4: containers must not run as root (Pod Security Standards, restricted)",
            ),
            SecurityLock::new(
                "containers[].securityContext.privileged",
                Value::Bool(false),
                false,
                "E8: privileged containers disable isolation (CVE-2021-21334)",
            ),
            SecurityLock::new(
                "containers[].securityContext.allowPrivilegeEscalation",
                Value::Bool(false),
                true,
                "M6: child processes must not gain more privileges than their parent",
            ),
            SecurityLock::new(
                "containers[].securityContext.readOnlyRootFilesystem",
                Value::Bool(true),
                false,
                "M3: writable root filesystems enable persistence after compromise",
            ),
            SecurityLock::new(
                "initContainers[].securityContext.runAsNonRoot",
                Value::Bool(true),
                false,
                "M4 applied to init containers",
            ),
            SecurityLock::new(
                "initContainers[].securityContext.privileged",
                Value::Bool(false),
                false,
                "E8 applied to init containers",
            ),
            SecurityLock::new(
                "shareProcessNamespace",
                Value::Bool(false),
                false,
                "process namespace sharing weakens container isolation",
            ),
            SecurityLock::new(
                "automountServiceAccountToken",
                Value::Bool(false),
                false,
                "default service-account tokens grant API access in every namespace",
            ),
        ];
        SecurityLocks { locks }
    }

    /// All locks.
    pub fn locks(&self) -> &[SecurityLock] {
        &self.locks
    }

    /// Number of locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Add a custom lock.
    pub fn with_lock(mut self, lock: SecurityLock) -> Self {
        self.locks.push(lock);
        self
    }

    /// The lock for a given pod-spec-relative field, if any.
    pub fn lock_for(&self, field: &str) -> Option<&SecurityLock> {
        self.locks.iter().find(|l| l.field == field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_practices_cover_the_catalog_misconfigurations() {
        let locks = SecurityLocks::best_practices();
        for field in [
            "hostNetwork",
            "hostPID",
            "hostIPC",
            "containers[].securityContext.runAsNonRoot",
            "containers[].securityContext.privileged",
            "containers[].securityContext.allowPrivilegeEscalation",
            "containers[].securityContext.readOnlyRootFilesystem",
        ] {
            assert!(locks.lock_for(field).is_some(), "missing lock for {field}");
        }
    }

    #[test]
    fn locked_values_are_the_safe_ones() {
        let locks = SecurityLocks::best_practices();
        assert_eq!(
            locks
                .lock_for("containers[].securityContext.runAsNonRoot")
                .unwrap()
                .locked_value,
            Value::Bool(true)
        );
        assert_eq!(
            locks.lock_for("hostNetwork").unwrap().locked_value,
            Value::Bool(false)
        );
    }

    #[test]
    fn run_as_non_root_is_added_even_when_absent_from_the_chart() {
        let locks = SecurityLocks::best_practices();
        assert!(
            locks
                .lock_for("containers[].securityContext.runAsNonRoot")
                .unwrap()
                .add_if_missing
        );
    }

    #[test]
    fn custom_locks_can_be_appended() {
        let locks = SecurityLocks::none().with_lock(SecurityLock {
            field: "priorityClassName".into(),
            locked_value: Value::from("standard"),
            add_if_missing: false,
            rationale: "test".into(),
        });
        assert_eq!(locks.len(), 1);
        assert!(locks.lock_for("priorityClassName").is_some());
    }
}
