//! Runtime enforcement: the KubeFence proxy.
//!
//! The paper deploys mitmproxy between clients and the API server, with a
//! plugin that extracts the Kubernetes object from each intercepted request,
//! validates it against the workload's validator and either forwards it
//! unchanged or rejects it with an HTTP error and an audit entry. The
//! [`EnforcementProxy`] reproduces that behaviour in front of any
//! [`RequestHandler`] (normally the simulated [`k8s_apiserver::ApiServer`]),
//! and implements [`RequestHandler`] itself so clients cannot tell the
//! difference — complete mediation by construction.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use k8s_apiserver::{ApiRequest, ApiResponse, RequestHandler, ResponseStatus};
use k8s_model::ResourceKind;

use crate::validator::{Validator, ValidatorSet, Violation};

/// One denied request, as logged by the proxy for auditing and forensics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenialRecord {
    /// User whose request was denied.
    pub user: String,
    /// Resource kind of the request.
    pub kind: ResourceKind,
    /// Object name targeted by the request.
    pub object_name: String,
    /// The violations that caused the denial (offending field and reason).
    pub violations: Vec<Violation>,
}

/// Aggregate statistics kept by the proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Requests forwarded to the API server.
    pub forwarded: u64,
    /// Requests rejected by validation.
    pub denied: u64,
    /// Requests forwarded without validation (no body to inspect).
    pub passthrough: u64,
    /// Total time spent inside request validation, in microseconds — the
    /// measured component of the proxy's overhead (Table IV).
    pub validation_time_us: u64,
}

impl ProxyStats {
    /// Total requests seen by the proxy.
    pub fn total(&self) -> u64 {
        self.forwarded + self.denied + self.passthrough
    }

    /// The cumulative validation time.
    pub fn validation_time(&self) -> Duration {
        Duration::from_micros(self.validation_time_us)
    }
}

/// The KubeFence enforcement proxy.
#[derive(Debug)]
pub struct EnforcementProxy<H> {
    upstream: H,
    validators: ValidatorSet,
    denials: Mutex<Vec<DenialRecord>>,
    stats: Mutex<ProxyStats>,
}

impl<H: RequestHandler> EnforcementProxy<H> {
    /// A proxy protecting a single workload.
    pub fn new(upstream: H, validator: Validator) -> Self {
        Self::with_validators(upstream, ValidatorSet::single(validator))
    }

    /// A proxy protecting several workloads at once (their validators are
    /// checked in turn; any match admits the request).
    pub fn with_validators(upstream: H, validators: ValidatorSet) -> Self {
        EnforcementProxy {
            upstream,
            validators,
            denials: Mutex::new(Vec::new()),
            stats: Mutex::new(ProxyStats::default()),
        }
    }

    /// The upstream handler (the protected API server).
    pub fn upstream(&self) -> &H {
        &self.upstream
    }

    /// The validators enforced by the proxy.
    pub fn validators(&self) -> &ValidatorSet {
        &self.validators
    }

    /// The denials recorded so far.
    pub fn denials(&self) -> Vec<DenialRecord> {
        self.denials.lock().clone()
    }

    /// Clear recorded denials and statistics (between experiment phases).
    pub fn reset(&self) {
        self.denials.lock().clear();
        *self.stats.lock() = ProxyStats::default();
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ProxyStats {
        *self.stats.lock()
    }
}

impl<H: RequestHandler> RequestHandler for EnforcementProxy<H> {
    fn handle(&self, request: &ApiRequest) -> ApiResponse {
        // Only mutating requests carry specifications to validate; reads are
        // forwarded untouched (RBAC still applies upstream).
        let Some(_) = &request.body else {
            self.stats.lock().passthrough += 1;
            return self.upstream.handle(request);
        };
        let started = Instant::now();
        let object = match request.object() {
            Some(object) => object,
            None => {
                // An unparsable or unknown-kind body can never match a
                // validator; block it outright.
                self.stats.lock().denied += 1;
                return ApiResponse::error(
                    ResponseStatus::Forbidden,
                    "KubeFence: request body is not a recognizable Kubernetes object",
                );
            }
        };
        let verdict = self.validators.validate(&object);
        let elapsed = started.elapsed();
        {
            let mut stats = self.stats.lock();
            stats.validation_time_us += elapsed.as_micros() as u64;
        }
        match verdict {
            Ok(()) => {
                self.stats.lock().forwarded += 1;
                self.upstream.handle(request)
            }
            Err(violations) => {
                self.stats.lock().denied += 1;
                let message = format!(
                    "KubeFence: request denied by workload policy: {}",
                    violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; ")
                );
                self.denials.lock().push(DenialRecord {
                    user: request.user.clone(),
                    kind: request.kind,
                    object_name: request.name.clone(),
                    violations,
                });
                ApiResponse::error(ResponseStatus::Forbidden, message)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::Validator;
    use k8s_apiserver::ApiServer;
    use k8s_model::K8sObject;

    fn allowed_manifest() -> String {
        r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:1.25
          securityContext:
            runAsNonRoot: true
"#
        .to_owned()
    }

    fn proxy() -> EnforcementProxy<ApiServer> {
        let manifests = vec![kf_yaml::parse(&allowed_manifest()).unwrap()];
        let validator = Validator::from_manifests("demo", &manifests).unwrap();
        EnforcementProxy::new(ApiServer::new(), validator)
    }

    #[test]
    fn compliant_requests_are_forwarded_and_persisted() {
        let proxy = proxy();
        let object = K8sObject::from_yaml(&allowed_manifest().replace("replicas: int", "replicas: 3"))
            .unwrap();
        let response = proxy.handle(&ApiRequest::create("operator", &object));
        assert!(response.is_success());
        assert_eq!(proxy.upstream().store().len(), 1);
        assert_eq!(proxy.stats().forwarded, 1);
        assert!(proxy.denials().is_empty());
    }

    #[test]
    fn non_compliant_requests_are_denied_and_logged() {
        let proxy = proxy();
        let evil_yaml = allowed_manifest()
            .replace("replicas: int", "replicas: 3")
            .replace("    spec:\n      containers:", "    spec:\n      hostNetwork: true\n      containers:");
        let object = K8sObject::from_yaml(&evil_yaml).unwrap();
        let response = proxy.handle(&ApiRequest::create("operator", &object));
        assert!(response.is_denied());
        assert!(response.message.contains("hostNetwork"));
        // Nothing reaches the API server, so nothing is stored and no CVE is
        // exercised.
        assert_eq!(proxy.upstream().store().len(), 0);
        assert!(proxy.upstream().exploits().is_empty());
        let denials = proxy.denials();
        assert_eq!(denials.len(), 1);
        assert_eq!(denials[0].user, "operator");
        assert_eq!(denials[0].violations.len(), 1);
    }

    #[test]
    fn reads_pass_through_without_validation() {
        let proxy = proxy();
        let response = proxy.handle(&ApiRequest::list("operator", ResourceKind::Deployment, "default"));
        assert!(response.is_success());
        assert_eq!(proxy.stats().passthrough, 1);
        assert_eq!(proxy.stats().validation_time_us, 0);
    }

    #[test]
    fn requests_for_unknown_kinds_are_denied() {
        let proxy = proxy();
        let secret = K8sObject::minimal(ResourceKind::Secret, "stolen", "default");
        let response = proxy.handle(&ApiRequest::create("operator", &secret));
        assert!(response.is_denied());
        assert_eq!(proxy.stats().denied, 1);
    }

    #[test]
    fn reset_clears_denials_and_stats() {
        let proxy = proxy();
        let secret = K8sObject::minimal(ResourceKind::Secret, "stolen", "default");
        proxy.handle(&ApiRequest::create("operator", &secret));
        assert_eq!(proxy.denials().len(), 1);
        proxy.reset();
        assert!(proxy.denials().is_empty());
        assert_eq!(proxy.stats().total(), 0);
    }
}
