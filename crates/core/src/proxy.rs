//! Runtime enforcement: the KubeFence proxy.
//!
//! The paper deploys mitmproxy between clients and the API server, with a
//! plugin that extracts the Kubernetes object from each intercepted request,
//! validates it against the workload's validator and either forwards it
//! unchanged or rejects it with an HTTP error and an audit entry. The
//! [`EnforcementProxy`] reproduces that behaviour in front of any
//! [`RequestHandler`] (normally the simulated [`k8s_apiserver::ApiServer`]),
//! and implements [`RequestHandler`] itself so clients cannot tell the
//! difference — complete mediation by construction.
//!
//! The enforcement hot path is contention-free: statistics are per-field
//! atomics and the denial audit trail is a bounded, sharded ring buffer, so
//! concurrent admissions never serialize on proxy bookkeeping. The
//! pre-refactor implementation (mutex-guarded stats and denial vector,
//! tree-walking validation) is preserved as [`BaselineProxy`] for the
//! ablation benchmarks and differential tests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use k8s_apiserver::{ApiRequest, ApiResponse, RequestBody, RequestHandler, ResponseStatus};
use k8s_model::ResourceKind;
use kf_yaml::{BodyFormat, Value};

use crate::stream::{RawVerdict, SourceLocation};
use crate::validator::{Validator, ValidatorSet, Violation, ViolationReason};

/// One denied request, as logged by the proxy for auditing and forensics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenialRecord {
    /// User whose request was denied.
    pub user: String,
    /// Resource kind of the request.
    pub kind: ResourceKind,
    /// Object name targeted by the request.
    pub object_name: String,
    /// The violations that caused the denial (offending field and reason).
    pub violations: Vec<Violation>,
    /// For raw (wire-bytes) bodies: the line/byte offset of the violating
    /// field or parse error in the payload. `None` on the legacy tree path.
    pub location: Option<SourceLocation>,
}

/// Aggregate statistics kept by the proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Requests forwarded to the API server.
    pub forwarded: u64,
    /// Requests rejected by validation.
    pub denied: u64,
    /// Requests forwarded without validation (no body to inspect).
    pub passthrough: u64,
    /// Total time spent inside request validation, in microseconds — the
    /// measured component of the proxy's overhead (Table IV).
    pub validation_time_us: u64,
}

impl ProxyStats {
    /// Total requests seen by the proxy.
    pub fn total(&self) -> u64 {
        self.forwarded + self.denied + self.passthrough
    }

    /// The cumulative validation time.
    pub fn validation_time(&self) -> Duration {
        Duration::from_micros(self.validation_time_us)
    }
}

/// An atomic counter padded to its own cache line, so RMW traffic on one
/// counter never steals line ownership from the others (no false sharing).
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

impl PaddedCounter {
    fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Per-field atomic counters behind [`ProxyStats`]: each counter owns a
/// full cache line, so concurrent requests update genuinely disjoint lines
/// without taking any lock.
#[derive(Debug, Default)]
struct AtomicStats {
    forwarded: PaddedCounter,
    denied: PaddedCounter,
    passthrough: PaddedCounter,
    /// Accumulated in **nanoseconds** (per-request µs accumulation would
    /// truncate sub-µs validations to zero); reported in µs.
    validation_time_ns: PaddedCounter,
}

impl AtomicStats {
    fn snapshot(&self) -> ProxyStats {
        ProxyStats {
            forwarded: self.forwarded.get(),
            denied: self.denied.get(),
            passthrough: self.passthrough.get(),
            validation_time_us: self.validation_time_ns.get() / 1_000,
        }
    }

    fn reset(&self) {
        self.forwarded.reset();
        self.denied.reset();
        self.passthrough.reset();
        self.validation_time_ns.reset();
    }
}

/// Default total capacity of the denial ring (records kept across shards).
pub const DEFAULT_DENIAL_CAPACITY: usize = 4096;

/// Number of independently locked shards in the denial ring.
const DENIAL_SHARDS: usize = 8;

/// A bounded, sharded ring buffer of [`DenialRecord`]s.
///
/// Writers are spread over up to [`DENIAL_SHARDS`] independently locked
/// rings by a global sequence counter, so concurrent denials contend only
/// 1/N of the time and the common (admit) path never touches the log at
/// all. When a shard is full the oldest record in that shard is evicted —
/// enforcement never blocks or grows without bound because of audit
/// bookkeeping. The requested total capacity is distributed exactly across
/// the shards (small capacities get fewer shards), so the retained count
/// never exceeds it. Snapshots are reassembled in global admission order
/// via the sequence stamps.
#[derive(Debug)]
struct DenialLog {
    shards: Vec<Mutex<VecDeque<(u64, DenialRecord)>>>,
    /// Per-shard record bounds; sums to the requested total capacity.
    shard_capacities: Vec<usize>,
    /// Global order stamp; also selects the shard for each record.
    seq: AtomicU64,
    /// Records evicted because a shard reached capacity.
    dropped: AtomicU64,
}

impl DenialLog {
    fn new(total_capacity: usize) -> Self {
        let capacity = total_capacity.max(1);
        let shard_count = DENIAL_SHARDS.min(capacity);
        let shard_capacities: Vec<usize> = (0..shard_count)
            .map(|i| capacity / shard_count + usize::from(i < capacity % shard_count))
            .collect();
        DenialLog {
            shards: (0..shard_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            shard_capacities,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn record(&self, record: DenialRecord) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let index = (seq as usize) % self.shards.len();
        let mut shard = self.shards[index].lock();
        if shard.len() == self.shard_capacities[index] {
            shard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back((seq, record));
    }

    /// All retained records, in global admission order.
    fn snapshot(&self) -> Vec<DenialRecord> {
        let mut stamped: Vec<(u64, DenialRecord)> = self
            .shards
            .iter()
            .flat_map(|shard| shard.lock().iter().cloned().collect::<Vec<_>>())
            .collect();
        stamped.sort_unstable_by_key(|(seq, _)| *seq);
        stamped.into_iter().map(|(_, record)| record).collect()
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The violation the proxy records for a body that does not parse as a
/// Kubernetes object of a known kind. When the tokenizer reported a precise
/// defect (position + reason), it is threaded into the record.
fn unparsable_body_violation(detail: Option<&str>) -> Violation {
    Violation {
        path: "<request body>".to_owned(),
        reason: ViolationReason::StructureMismatch {
            expected: "recognizable Kubernetes object".to_owned(),
            found: match detail {
                Some(detail) => format!("unparsable or unknown-kind body ({detail})"),
                None => "unparsable or unknown-kind body".to_owned(),
            },
        },
    }
}

/// The denial message for an unparsable body, with the parse defect when
/// known.
fn unparsable_body_message(detail: Option<&str>) -> String {
    match detail {
        Some(detail) => {
            format!("KubeFence: request body is not a recognizable Kubernetes object ({detail})")
        }
        None => "KubeFence: request body is not a recognizable Kubernetes object".to_owned(),
    }
}

/// The KubeFence enforcement proxy.
#[derive(Debug)]
pub struct EnforcementProxy<H> {
    upstream: H,
    validators: ValidatorSet,
    denials: DenialLog,
    stats: AtomicStats,
}

impl<H: RequestHandler> EnforcementProxy<H> {
    /// A proxy protecting a single workload.
    pub fn new(upstream: H, validator: Validator) -> Self {
        Self::with_validators(upstream, ValidatorSet::single(validator))
    }

    /// A proxy protecting several workloads at once (requests are routed to
    /// the validators covering their resource kind; any match admits).
    pub fn with_validators(upstream: H, validators: ValidatorSet) -> Self {
        Self::with_denial_capacity(upstream, validators, DEFAULT_DENIAL_CAPACITY)
    }

    /// A proxy with an explicit bound on the retained denial records.
    pub fn with_denial_capacity(upstream: H, validators: ValidatorSet, capacity: usize) -> Self {
        EnforcementProxy {
            upstream,
            validators,
            denials: DenialLog::new(capacity),
            stats: AtomicStats::default(),
        }
    }

    /// The upstream handler (the protected API server).
    pub fn upstream(&self) -> &H {
        &self.upstream
    }

    /// The validators enforced by the proxy.
    pub fn validators(&self) -> &ValidatorSet {
        &self.validators
    }

    /// The denials retained by the ring buffer, in admission order.
    pub fn denials(&self) -> Vec<DenialRecord> {
        self.denials.snapshot()
    }

    /// Denial records evicted because the ring was full.
    pub fn dropped_denials(&self) -> u64 {
        self.denials.dropped()
    }

    /// Clear recorded denials and statistics (between experiment phases).
    pub fn reset(&self) {
        self.denials.clear();
        self.stats.reset();
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ProxyStats {
        self.stats.snapshot()
    }

    fn deny(
        &self,
        request: &ApiRequest,
        violations: Vec<Violation>,
        message: String,
        location: Option<SourceLocation>,
    ) -> ApiResponse {
        self.stats.denied.add(1);
        self.denials.record(DenialRecord {
            user: request.user.clone(),
            kind: request.kind,
            object_name: request.name.clone(),
            violations,
            location,
        });
        ApiResponse::error(ResponseStatus::Forbidden, message)
    }

    fn deny_policy(
        &self,
        request: &ApiRequest,
        violations: Vec<Violation>,
        location: Option<SourceLocation>,
    ) -> ApiResponse {
        let message = format!(
            "KubeFence: request denied by workload policy: {}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        self.deny(request, violations, message, location)
    }

    /// The legacy path: a pre-parsed tree body. Probes validity without
    /// materializing (deep-cloning) an object; the compiled plane validates
    /// the borrowed body in place.
    fn handle_tree(&self, request: &ApiRequest, body: &Value) -> ApiResponse {
        let started = Instant::now();
        let kind = match k8s_model::K8sObject::peek_kind(body) {
            Ok(kind) => kind,
            Err(_) => {
                // An unparsable or unknown-kind body can never match a
                // validator; block it outright. The time spent discovering
                // that is validation work, and the denial belongs in the
                // audit trail like any other.
                self.stats
                    .validation_time_ns
                    .add(started.elapsed().as_nanos() as u64);
                return self.deny(
                    request,
                    vec![unparsable_body_violation(None)],
                    unparsable_body_message(None),
                    None,
                );
            }
        };
        let verdict = self.validators.validate_kind_body(kind, body);
        self.stats
            .validation_time_ns
            .add(started.elapsed().as_nanos() as u64);
        match verdict {
            Ok(()) => {
                self.stats.forwarded.add(1);
                self.upstream.handle(request)
            }
            Err(violations) => self.deny_policy(request, violations, None),
        }
    }

    /// The wire-faithful path: raw bytes — YAML or JSON, per the request's
    /// declared [`BodyFormat`] — are validated **while parsing**; no
    /// document tree is allocated on the accept path, and denial reports
    /// are synthesized from matcher state by a second tokenizer pass (no
    /// tree parse; see `kubefence::stream` for the two-phase design).
    fn handle_raw(&self, request: &ApiRequest, bytes: &[u8], format: BodyFormat) -> ApiResponse {
        let started = Instant::now();
        let verdict = match std::str::from_utf8(bytes) {
            Ok(text) => self.validators.validate_raw_format(text, format),
            Err(_) => RawVerdict::Unparsable {
                reason: "request body is not valid UTF-8".to_owned(),
                location: None,
            },
        };
        self.stats
            .validation_time_ns
            .add(started.elapsed().as_nanos() as u64);
        match verdict {
            RawVerdict::Admitted => {
                self.stats.forwarded.add(1);
                self.upstream.handle(request)
            }
            RawVerdict::Denied {
                violations,
                location,
            } => self.deny_policy(request, violations, location),
            RawVerdict::Unparsable { reason, location } => self.deny(
                request,
                vec![unparsable_body_violation(Some(&reason))],
                unparsable_body_message(Some(&reason)),
                location,
            ),
        }
    }
}

impl<H: RequestHandler> RequestHandler for EnforcementProxy<H> {
    fn handle(&self, request: &ApiRequest) -> ApiResponse {
        // Only mutating requests carry specifications to validate; reads are
        // forwarded untouched (RBAC still applies upstream). Raw bodies are
        // validated under the **negotiated** wire format: the request's
        // `Content-Type` when it names an encoding, the body tag otherwise.
        match &request.body {
            RequestBody::None => {
                self.stats.passthrough.add(1);
                self.upstream.handle(request)
            }
            RequestBody::Tree(body) => self.handle_tree(request, body),
            RequestBody::Raw(bytes, format) => {
                self.handle_raw(request, bytes, request.wire_format().unwrap_or(*format))
            }
        }
    }
}

/// The pre-refactor proxy, kept verbatim as the measurement baseline: one
/// mutex around the aggregate statistics, one around an unbounded denial
/// vector, and tree-walking validation via
/// [`ValidatorSet::validate_tree_scan`]. Raw bodies take the
/// *parse-then-validate* route — the full document tree is materialized
/// before the first policy check, which is exactly what the streaming plane
/// avoids. The concurrency and `streaming_admission` benchmarks quantify
/// what the compiled plane, the atomic bookkeeping and validate-while-parse
/// buy over this implementation; differential tests assert both proxies
/// reach identical verdicts.
#[derive(Debug)]
pub struct BaselineProxy<H> {
    upstream: H,
    validators: ValidatorSet,
    denials: Mutex<Vec<DenialRecord>>,
    stats: Mutex<ProxyStats>,
}

impl<H: RequestHandler> BaselineProxy<H> {
    /// A baseline proxy over a validator set.
    pub fn with_validators(upstream: H, validators: ValidatorSet) -> Self {
        BaselineProxy {
            upstream,
            validators,
            denials: Mutex::new(Vec::new()),
            stats: Mutex::new(ProxyStats::default()),
        }
    }

    /// The upstream handler.
    pub fn upstream(&self) -> &H {
        &self.upstream
    }

    /// The denials recorded so far.
    pub fn denials(&self) -> Vec<DenialRecord> {
        self.denials.lock().clone()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ProxyStats {
        *self.stats.lock()
    }
}

impl<H: RequestHandler> RequestHandler for BaselineProxy<H> {
    fn handle(&self, request: &ApiRequest) -> ApiResponse {
        if request.body.is_none() {
            self.stats.lock().passthrough += 1;
            return self.upstream.handle(request);
        }
        let started = Instant::now();
        let object = match request.object() {
            Some(object) => object,
            None => {
                let mut stats = self.stats.lock();
                stats.validation_time_us += started.elapsed().as_micros() as u64;
                stats.denied += 1;
                drop(stats);
                self.denials.lock().push(DenialRecord {
                    user: request.user.clone(),
                    kind: request.kind,
                    object_name: request.name.clone(),
                    violations: vec![unparsable_body_violation(None)],
                    location: None,
                });
                return ApiResponse::error(
                    ResponseStatus::Forbidden,
                    unparsable_body_message(None),
                );
            }
        };
        let verdict = self.validators.validate_tree_scan(&object);
        let elapsed = started.elapsed();
        {
            let mut stats = self.stats.lock();
            stats.validation_time_us += elapsed.as_micros() as u64;
        }
        match verdict {
            Ok(()) => {
                self.stats.lock().forwarded += 1;
                self.upstream.handle(request)
            }
            Err(violations) => {
                self.stats.lock().denied += 1;
                let message = format!(
                    "KubeFence: request denied by workload policy: {}",
                    violations
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; ")
                );
                self.denials.lock().push(DenialRecord {
                    user: request.user.clone(),
                    kind: request.kind,
                    object_name: request.name.clone(),
                    violations,
                    location: None,
                });
                ApiResponse::error(ResponseStatus::Forbidden, message)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::Validator;
    use k8s_apiserver::ApiServer;
    use k8s_model::{K8sObject, Verb};

    fn allowed_manifest() -> String {
        r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:1.25
          securityContext:
            runAsNonRoot: true
"#
        .to_owned()
    }

    fn proxy() -> EnforcementProxy<ApiServer> {
        let manifests = vec![kf_yaml::parse(&allowed_manifest()).unwrap()];
        let validator = Validator::from_manifests("demo", &manifests).unwrap();
        EnforcementProxy::new(ApiServer::new(), validator)
    }

    #[test]
    fn compliant_requests_are_forwarded_and_persisted() {
        let proxy = proxy();
        let object =
            K8sObject::from_yaml(&allowed_manifest().replace("replicas: int", "replicas: 3"))
                .unwrap();
        let response = proxy.handle(&ApiRequest::create("operator", &object));
        assert!(response.is_success());
        assert_eq!(proxy.upstream().store().len(), 1);
        assert_eq!(proxy.stats().forwarded, 1);
        assert!(proxy.denials().is_empty());
    }

    #[test]
    fn non_compliant_requests_are_denied_and_logged() {
        let proxy = proxy();
        let evil_yaml = allowed_manifest()
            .replace("replicas: int", "replicas: 3")
            .replace(
                "    spec:\n      containers:",
                "    spec:\n      hostNetwork: true\n      containers:",
            );
        let object = K8sObject::from_yaml(&evil_yaml).unwrap();
        let response = proxy.handle(&ApiRequest::create("operator", &object));
        assert!(response.is_denied());
        assert!(response.message.contains("hostNetwork"));
        // Nothing reaches the API server, so nothing is stored and no CVE is
        // exercised.
        assert_eq!(proxy.upstream().store().len(), 0);
        assert!(proxy.upstream().exploits().is_empty());
        let denials = proxy.denials();
        assert_eq!(denials.len(), 1);
        assert_eq!(denials[0].user, "operator");
        assert_eq!(denials[0].violations.len(), 1);
    }

    #[test]
    fn reads_pass_through_without_validation() {
        let proxy = proxy();
        let response = proxy.handle(&ApiRequest::list(
            "operator",
            ResourceKind::Deployment,
            "default",
        ));
        assert!(response.is_success());
        assert_eq!(proxy.stats().passthrough, 1);
        assert_eq!(proxy.stats().validation_time_us, 0);
    }

    #[test]
    fn requests_for_unknown_kinds_are_denied() {
        let proxy = proxy();
        let secret = K8sObject::minimal(ResourceKind::Secret, "stolen", "default");
        let response = proxy.handle(&ApiRequest::create("operator", &secret));
        assert!(response.is_denied());
        assert_eq!(proxy.stats().denied, 1);
    }

    #[test]
    fn reset_clears_denials_and_stats() {
        let proxy = proxy();
        let secret = K8sObject::minimal(ResourceKind::Secret, "stolen", "default");
        proxy.handle(&ApiRequest::create("operator", &secret));
        assert_eq!(proxy.denials().len(), 1);
        proxy.reset();
        assert!(proxy.denials().is_empty());
        assert_eq!(proxy.stats().total(), 0);
    }

    #[test]
    fn unparsable_bodies_are_denied_logged_and_timed() {
        let proxy = proxy();
        // A body that is YAML but not a recognizable Kubernetes object.
        let request = ApiRequest {
            user: "mallory".to_owned(),
            verb: Verb::Create,
            kind: ResourceKind::Deployment,
            namespace: "default".to_owned(),
            name: "mystery".to_owned(),
            content_type: None,
            resource_version: None,
            body: kf_yaml::parse("replicas: 3\n").unwrap().into(),
        };
        let response = proxy.handle(&request);
        assert!(response.is_denied());
        assert_eq!(proxy.stats().denied, 1);
        // The denial is in the audit trail with the request's coordinates…
        let denials = proxy.denials();
        assert_eq!(denials.len(), 1);
        assert_eq!(denials[0].user, "mallory");
        assert_eq!(denials[0].kind, ResourceKind::Deployment);
        assert_eq!(denials[0].object_name, "mystery");
        assert!(matches!(
            denials[0].violations[0].reason,
            ViolationReason::StructureMismatch { .. }
        ));
        // …and the time spent rejecting it is accounted as validation work
        // (accumulated in nanoseconds, so even sub-µs rejections register).
        for _ in 0..50 {
            proxy.handle(&request);
        }
        let stats = proxy.stats();
        assert_eq!(stats.denied, 51);
        assert!(
            stats.validation_time_us > 0,
            "denial-path validation time must be accounted"
        );
    }

    #[test]
    fn denial_ring_is_bounded_and_keeps_the_newest_records() {
        let manifests = vec![kf_yaml::parse(&allowed_manifest()).unwrap()];
        let validator = Validator::from_manifests("demo", &manifests).unwrap();
        let proxy = EnforcementProxy::with_denial_capacity(
            ApiServer::new(),
            ValidatorSet::single(validator),
            16,
        );
        for i in 0..100 {
            let secret = K8sObject::minimal(ResourceKind::Secret, &format!("s{i}"), "default");
            proxy.handle(&ApiRequest::create("operator", &secret));
        }
        let denials = proxy.denials();
        assert_eq!(proxy.stats().denied, 100);
        assert!(
            denials.len() <= 16,
            "ring must stay bounded, got {}",
            denials.len()
        );
        assert_eq!(proxy.dropped_denials(), 100 - denials.len() as u64);
        // The newest denial is always retained.
        assert!(denials.iter().any(|d| d.object_name == "s99"));
        // Records come back in admission order.
        let names: Vec<u32> = denials
            .iter()
            .map(|d| d.object_name[1..].parse().unwrap())
            .collect();
        assert!(names.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_admissions_keep_exact_counts() {
        let proxy = proxy();
        let ok = K8sObject::from_yaml(&allowed_manifest().replace("replicas: int", "replicas: 3"))
            .unwrap();
        let bad = K8sObject::minimal(ResourceKind::Secret, "s", "default");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        proxy.handle(&ApiRequest::update("operator", &ok));
                        proxy.handle(&ApiRequest::create("operator", &bad));
                    }
                });
            }
        });
        let stats = proxy.stats();
        assert_eq!(stats.denied, 400);
        assert_eq!(stats.forwarded, 400);
        assert_eq!(stats.total(), 800);
    }

    #[test]
    fn baseline_proxy_reaches_identical_verdicts() {
        let manifests = vec![kf_yaml::parse(&allowed_manifest()).unwrap()];
        let validator = Validator::from_manifests("demo", &manifests).unwrap();
        let fast = EnforcementProxy::new(ApiServer::new(), validator.clone());
        let slow =
            BaselineProxy::with_validators(ApiServer::new(), ValidatorSet::single(validator));
        let ok = K8sObject::from_yaml(&allowed_manifest().replace("replicas: int", "replicas: 3"))
            .unwrap();
        let bad = K8sObject::minimal(ResourceKind::Secret, "s", "default");
        for request in [
            ApiRequest::create("operator", &ok),
            ApiRequest::create("operator", &bad),
            ApiRequest::list("operator", ResourceKind::Deployment, "default"),
        ] {
            let a = fast.handle(&request);
            let b = slow.handle(&request);
            assert_eq!(
                a.status,
                b.status,
                "verdict diverged for {}",
                request.path()
            );
        }
        assert_eq!(fast.stats().total(), slow.stats().total());
        assert_eq!(fast.denials().len(), slow.denials().len());
    }

    #[test]
    fn raw_bodies_stream_through_the_proxy() {
        let proxy = proxy();
        let ok = K8sObject::from_yaml(&allowed_manifest().replace("replicas: int", "replicas: 3"))
            .unwrap();
        let response = proxy.handle(&ApiRequest::create_raw("operator", &ok));
        assert!(response.is_success());
        assert_eq!(proxy.upstream().store().len(), 1);
        // A hostile raw body is denied with the violating field's location.
        let evil_yaml = allowed_manifest()
            .replace("replicas: int", "replicas: 3")
            .replace(
                "    spec:\n      containers:",
                "    spec:\n      hostNetwork: true\n      containers:",
            );
        let evil = K8sObject::from_yaml(&evil_yaml).unwrap();
        let request = ApiRequest::create_raw("operator", &evil);
        let response = proxy.handle(&request);
        assert!(response.is_denied());
        assert!(response.message.contains("hostNetwork"));
        let denials = proxy.denials();
        assert_eq!(denials.len(), 1);
        let location = denials[0]
            .location
            .expect("raw denials carry the violating field's location");
        let text = String::from_utf8(request.payload().to_vec()).unwrap();
        let offset = location
            .offset
            .expect("stream-decided denial has an offset");
        assert!(text[offset..].starts_with("hostNetwork"));
    }

    #[test]
    fn raw_unparsable_bodies_report_position_and_reason() {
        // Both wire formats: the tokenizer's position and reason must reach
        // the response message and the denial record.
        for (payload, format, line) in [
            (
                "kind: Deployment\nmetadata:\n  name: x\n   badly: indented\n",
                BodyFormat::Yaml,
                4,
            ),
            (
                "{\"kind\": \"Deployment\",\n \"metadata\": {\"name\": \"x\"},\n broken}",
                BodyFormat::Json,
                3,
            ),
        ] {
            let proxy = proxy();
            let request = ApiRequest {
                user: "mallory".to_owned(),
                verb: Verb::Create,
                kind: ResourceKind::Deployment,
                namespace: "default".to_owned(),
                name: "mystery".to_owned(),
                content_type: None,
                resource_version: None,
                body: k8s_apiserver::RequestBody::Raw(payload.into(), format),
            };
            let response = proxy.handle(&request);
            assert!(response.is_denied());
            assert!(
                response.message.contains(&format!("line {line}")),
                "{} message must carry the parse position: {}",
                format.name(),
                response.message
            );
            let denials = proxy.denials();
            assert_eq!(denials.len(), 1);
            // The violation text carries the tokenizer's reason…
            let ViolationReason::StructureMismatch { found, .. } = &denials[0].violations[0].reason
            else {
                panic!("expected a structure mismatch violation");
            };
            assert!(
                found.contains(&format!("line {line}")),
                "{} violation was: {found}",
                format.name()
            );
            // …and the record carries the parse position.
            assert_eq!(denials[0].location.unwrap().line, line);
        }
    }

    #[test]
    fn raw_json_bodies_stream_through_the_proxy() {
        let proxy = proxy();
        let ok = K8sObject::from_yaml(&allowed_manifest().replace("replicas: int", "replicas: 3"))
            .unwrap();
        let response = proxy.handle(&ApiRequest::create_raw_json("operator", &ok));
        assert!(response.is_success());
        assert_eq!(proxy.upstream().store().len(), 1);
        // A hostile raw JSON body is denied with the violating field's
        // location pointing into the JSON buffer.
        let evil_yaml = allowed_manifest()
            .replace("replicas: int", "replicas: 3")
            .replace(
                "    spec:\n      containers:",
                "    spec:\n      hostNetwork: true\n      containers:",
            );
        let evil = K8sObject::from_yaml(&evil_yaml).unwrap();
        let request = ApiRequest::create_raw_json("operator", &evil);
        let response = proxy.handle(&request);
        assert!(response.is_denied());
        assert!(response.message.contains("hostNetwork"));
        let denials = proxy.denials();
        assert_eq!(denials.len(), 1);
        let location = denials[0]
            .location
            .expect("raw denials carry the violating field's location");
        let text = String::from_utf8(request.payload().to_vec()).unwrap();
        let offset = location
            .offset
            .expect("stream-decided denial has an offset");
        assert!(text[offset..].starts_with("\"hostNetwork\""));
    }

    #[test]
    fn content_type_governs_raw_validation() {
        let proxy = proxy();
        let ok = K8sObject::from_yaml(&allowed_manifest().replace("replicas: int", "replicas: 3"))
            .unwrap();
        // An Auto-tagged JSON body with an explicit JSON content type (the
        // watch-stream variant) validates on the JSON front end.
        let json = proxy.handle(
            &ApiRequest {
                body: k8s_apiserver::RequestBody::Raw(
                    kf_yaml::to_json(ok.body()).into(),
                    BodyFormat::Auto,
                ),
                ..ApiRequest::create("operator", &ok)
            }
            .with_content_type("application/json;stream=watch"),
        );
        assert!(json.is_success());
        // A YAML body mis-declared as JSON is parsed per the header — and
        // rejected, exactly as a real negotiating server would.
        let mislabeled = proxy
            .handle(&ApiRequest::create_raw("operator", &ok).with_content_type("application/json"));
        assert!(mislabeled.is_denied());
        // An unrecognized media type falls back to the body tag; the same
        // YAML body goes through the YAML front end and is admitted.
        let unknown = proxy.handle(
            &ApiRequest::create_raw("operator", &ok)
                .with_content_type("application/vnd.kubernetes.protobuf"),
        );
        assert!(unknown.is_success());
    }

    #[test]
    fn raw_and_tree_bodies_reach_identical_verdicts() {
        let proxy = proxy();
        let ok = K8sObject::from_yaml(&allowed_manifest().replace("replicas: int", "replicas: 3"))
            .unwrap();
        let bad = K8sObject::minimal(ResourceKind::Secret, "s", "default");
        for object in [&ok, &bad] {
            // Repeated creates hit apply semantics (201 then 200), so compare
            // the admit/deny verdict, not the exact status class.
            let tree = proxy.handle(&ApiRequest::create("operator", object));
            let raw = proxy.handle(&ApiRequest::create_raw("operator", object));
            assert_eq!(
                tree.is_success(),
                raw.is_success(),
                "verdict diverged for {}",
                object.name()
            );
            assert_eq!(tree.is_denied(), raw.is_denied());
        }
    }

    #[test]
    fn denial_ring_honors_capacities_that_are_not_shard_multiples() {
        let manifests = vec![kf_yaml::parse(&allowed_manifest()).unwrap()];
        let validator = Validator::from_manifests("demo", &manifests).unwrap();
        for capacity in [1usize, 3, 12, 17] {
            let proxy = EnforcementProxy::with_denial_capacity(
                ApiServer::new(),
                ValidatorSet::single(validator.clone()),
                capacity,
            );
            for i in 0..50 {
                let secret = K8sObject::minimal(ResourceKind::Secret, &format!("s{i}"), "default");
                proxy.handle(&ApiRequest::create("operator", &secret));
            }
            let retained = proxy.denials().len();
            assert!(
                retained <= capacity,
                "capacity {capacity}: retained {retained} exceeds the requested bound"
            );
            assert_eq!(retained as u64 + proxy.dropped_denials(), 50);
        }
    }

    #[test]
    fn concurrent_overflow_keeps_exact_denial_accounting() {
        // Satellite: N threads force the sharded denial ring past capacity;
        // retained + dropped must equal the total denials with no
        // double-counting.
        let manifests = vec![kf_yaml::parse(&allowed_manifest()).unwrap()];
        let validator = Validator::from_manifests("demo", &manifests).unwrap();
        let proxy = EnforcementProxy::with_denial_capacity(
            ApiServer::new(),
            ValidatorSet::single(validator),
            32,
        );
        const THREADS: usize = 8;
        const DENIALS_PER_THREAD: usize = 200;
        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let proxy = &proxy;
                scope.spawn(move || {
                    for i in 0..DENIALS_PER_THREAD {
                        let secret = K8sObject::minimal(
                            ResourceKind::Secret,
                            &format!("s-{thread}-{i}"),
                            "default",
                        );
                        let response = proxy.handle(&ApiRequest::create("operator", &secret));
                        assert!(response.is_denied());
                    }
                });
            }
        });
        let total = (THREADS * DENIALS_PER_THREAD) as u64;
        assert_eq!(proxy.stats().denied, total);
        let retained = proxy.denials().len() as u64;
        assert!(retained <= 32, "ring must stay bounded, got {retained}");
        assert_eq!(
            retained + proxy.dropped_denials(),
            total,
            "every denial is either retained or counted as dropped, exactly once"
        );
    }
}
