//! Ahead-of-time policy cache: persist compiled validator arenas so a cold
//! start loads enforcement state from disk instead of re-running the
//! chart-to-validator pipeline and the arena compiler.
//!
//! The cache file holds one record per [`ValidatorSet`] member — the
//! workload name plus the serialized arena
//! ([`CompiledValidator::to_bytes`]) — behind a magic header and a CRC-32
//! of the payload. Loading restores each member with
//! [`Validator::from_arena`], which primes the compiled form directly; the
//! authoring trees are not stored (they are a policy-*generation* artifact,
//! not an enforcement one).
//!
//! A stale or corrupt cache is never trusted: magic, CRC, per-arena
//! decoding and cross-reference checks all fail closed with
//! [`std::io::ErrorKind::InvalidData`], and the caller falls back to
//! regenerating policies. See `docs/persistence.md` for where this file
//! sits in the recovery sequence.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use kf_yaml::binary;

use crate::compile::CompiledValidator;
use crate::validator::{Validator, ValidatorSet};

/// Magic header of the AOT arena cache file.
pub const AOT_MAGIC: &[u8; 8] = b"KFAOT1\0\0";

/// The cache file's conventional location inside a persistence directory
/// (the same directory the store snapshot and WAL live in).
pub fn aot_path(dir: &Path) -> PathBuf {
    dir.join(k8s_apiserver::persist::AOT_ARENA_FILE)
}

/// Atomically write the compiled arenas of `set` to `path`
/// (temp file + rename, both fsync'd — same discipline as the store
/// snapshot).
///
/// # Errors
///
/// Filesystem errors from writing or renaming.
pub fn save_validator_set(path: &Path, set: &ValidatorSet) -> io::Result<()> {
    let mut payload = Vec::new();
    binary::put_u32(&mut payload, set.validators().len() as u32);
    for validator in set.validators() {
        binary::put_str(&mut payload, validator.workload());
        let arena = validator.compiled().to_bytes();
        binary::put_u32(&mut payload, arena.len() as u32);
        payload.extend_from_slice(&arena);
    }
    let mut framed = Vec::with_capacity(AOT_MAGIC.len() + 4 + payload.len());
    framed.extend_from_slice(AOT_MAGIC);
    framed.extend_from_slice(&binary::crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&framed)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            dir.sync_all().ok();
        }
    }
    Ok(())
}

/// Load a validator set from an AOT cache written by
/// [`save_validator_set`]. Returns `Ok(None)` when no cache exists.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for any corruption — bad magic, CRC
/// mismatch, malformed arena bytes or dangling arena indices — and plain
/// I/O errors from reading the file.
pub fn load_validator_set(path: &Path) -> io::Result<Option<ValidatorSet>> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if bytes.len() < AOT_MAGIC.len() + 4 {
        return Err(invalid(format!(
            "AOT cache too short: {} bytes",
            bytes.len()
        )));
    }
    if &bytes[..AOT_MAGIC.len()] != AOT_MAGIC {
        return Err(invalid("AOT cache magic mismatch".to_owned()));
    }
    let crc_stored = u32::from_le_bytes(
        bytes[AOT_MAGIC.len()..AOT_MAGIC.len() + 4]
            .try_into()
            .expect("4 bytes"),
    );
    let payload = &bytes[AOT_MAGIC.len() + 4..];
    let crc_actual = binary::crc32(payload);
    if crc_stored != crc_actual {
        return Err(invalid(format!(
            "AOT cache CRC mismatch: stored {crc_stored:#010x}, actual {crc_actual:#010x}"
        )));
    }
    let mut cursor = binary::Cursor::new(payload);
    fn read<T>(r: Result<T, binary::BinaryError>) -> io::Result<T> {
        r.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
    let count = read(cursor.get_u32())? as usize;
    let mut set = ValidatorSet::new();
    for _ in 0..count {
        let workload = read(cursor.get_str())?;
        let arena_len = read(cursor.get_u32())? as usize;
        if arena_len > cursor.remaining() {
            return Err(invalid(format!(
                "arena for {workload:?} announces {arena_len} bytes, {} remain",
                cursor.remaining()
            )));
        }
        let arena_bytes = cursor.skip(arena_len).map_err(|e| invalid(e.to_string()))?;
        let arena = CompiledValidator::from_bytes(arena_bytes)
            .map_err(|e| invalid(format!("arena for {workload:?}: {e}")))?;
        set.push(Validator::from_arena(&workload, arena));
    }
    if !cursor.is_empty() {
        return Err(invalid(format!(
            "{} trailing bytes after the last arena",
            cursor.remaining()
        )));
    }
    Ok(Some(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{K8sObject, ResourceKind};

    fn sample_set() -> ValidatorSet {
        let manifests = vec![kf_yaml::parse(
            "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web\nspec:\n  replicas: int\n",
        )
        .unwrap()];
        let mut set = ValidatorSet::new();
        set.push(Validator::from_manifests("demo", &manifests).unwrap());
        set
    }

    fn temp_file(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kf-aot-{label}-{}.kfaot", std::process::id()))
    }

    fn deployment(replicas: &str) -> K8sObject {
        K8sObject::from_yaml(&format!(
            "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web\nspec:\n  replicas: {replicas}\n"
        ))
        .unwrap()
    }

    #[test]
    fn saved_set_loads_and_enforces_identically() {
        let path = temp_file("roundtrip");
        let set = sample_set();
        save_validator_set(&path, &set).unwrap();
        let loaded = load_validator_set(&path).unwrap().expect("cache present");
        assert_eq!(loaded.validators().len(), 1);
        assert_eq!(loaded.validators()[0].workload(), "demo");
        // Kind routing works off the compiled coverage of the restored arena.
        assert_eq!(loaded.validators_for(ResourceKind::Deployment).len(), 1);
        assert!(loaded.validate(&deployment("3")).is_ok());
        assert!(loaded.validate(&deployment("\"three\"")).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_cache_is_none_and_corruption_is_invalid_data() {
        let path = temp_file("corrupt");
        std::fs::remove_file(&path).ok();
        assert!(load_validator_set(&path).unwrap().is_none());
        save_validator_set(&path, &sample_set()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_validator_set(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
