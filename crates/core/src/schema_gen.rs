//! Phase 1 — generation of the values schema (Figure 7 of the paper).
//!
//! The chart's default values are transformed into a *values schema*:
//!
//! * static values are replaced by type placeholders (`string`, `int`,
//!   `float`, `IP`);
//! * boolean fields and fields with `# @options:` annotations become
//!   enumerations (each valid option will be covered by at least one variant
//!   during exploration);
//! * security-critical value paths (trusted registries, image repositories,
//!   …) are locked to their default constants instead of being generalized,
//!   mitigating typosquatting-style abuses.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use helm_lite::ValuesFile;
use kf_yaml::{Mapping, Value};

/// Placeholder tokens used inside values schemas and rendered manifests.
pub mod placeholder {
    /// Free-form string.
    pub const STRING: &str = "string";
    /// Integer.
    pub const INT: &str = "int";
    /// Floating point number.
    pub const FLOAT: &str = "float";
    /// IP address.
    pub const IP: &str = "IP";

    /// All placeholder tokens.
    pub const ALL: [&str; 4] = [STRING, INT, FLOAT, IP];

    /// Whether a string is one of the placeholder tokens.
    pub fn is_placeholder(text: &str) -> bool {
        ALL.contains(&text)
    }
}

/// The generalized values document plus the enumerations to explore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValuesSchema {
    tree: Value,
    enums: BTreeMap<String, Vec<Value>>,
}

impl ValuesSchema {
    /// The generalized values tree (placeholders + locked constants; enum
    /// fields hold their first option).
    pub fn tree(&self) -> &Value {
        &self.tree
    }

    /// The enumerative fields, keyed by dotted path, with their options.
    pub fn enums(&self) -> &BTreeMap<String, Vec<Value>> {
        &self.enums
    }

    /// The number of variants required so that every enumeration option is
    /// covered at least once (the length of the longest option list, at least
    /// one).
    pub fn variant_count(&self) -> usize {
        self.enums.values().map(Vec::len).max().unwrap_or(1).max(1)
    }

    /// Serialize the schema tree as YAML (for documentation and debugging).
    pub fn to_yaml(&self) -> String {
        kf_yaml::to_yaml(&self.tree)
    }
}

/// Configuration of the schema generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaGeneratorConfig {
    /// Exact dotted values paths locked to their default constants.
    pub locked_value_paths: Vec<String>,
    /// Path suffixes (final key names) locked to their default constants —
    /// by default `registry` and `repository`, restricting images to trusted
    /// sources.
    pub locked_value_suffixes: Vec<String>,
    /// Treat boolean values as two-option enumerations so that both branches
    /// of chart conditionals are explored (on by default).
    pub explore_booleans: bool,
}

impl Default for SchemaGeneratorConfig {
    fn default() -> Self {
        SchemaGeneratorConfig {
            locked_value_paths: Vec::new(),
            locked_value_suffixes: vec!["registry".to_owned(), "repository".to_owned()],
            explore_booleans: true,
        }
    }
}

/// Phase-1 generator: values file → values schema.
#[derive(Debug, Clone, Default)]
pub struct ValuesSchemaGenerator {
    config: SchemaGeneratorConfig,
}

impl ValuesSchemaGenerator {
    /// Generator with the given configuration.
    pub fn new(config: SchemaGeneratorConfig) -> Self {
        ValuesSchemaGenerator { config }
    }

    /// Generate the values schema for a chart's values file.
    pub fn generate(&self, values: &ValuesFile) -> ValuesSchema {
        let mut enums = BTreeMap::new();
        let tree = self.generalize(values.defaults(), values, "", &mut enums);
        ValuesSchema { tree, enums }
    }

    fn is_locked(&self, path: &str) -> bool {
        if self.config.locked_value_paths.iter().any(|p| p == path) {
            return true;
        }
        let last = path.rsplit('.').next().unwrap_or(path);
        self.config
            .locked_value_suffixes
            .iter()
            .any(|suffix| suffix == last)
    }

    fn generalize(
        &self,
        value: &Value,
        values: &ValuesFile,
        path: &str,
        enums: &mut BTreeMap<String, Vec<Value>>,
    ) -> Value {
        match value {
            Value::Map(map) => {
                let mut out = Mapping::new();
                for (key, child) in map.iter() {
                    let child_path = if path.is_empty() {
                        key.to_owned()
                    } else {
                        format!("{path}.{key}")
                    };
                    out.insert(
                        key.to_owned(),
                        self.generalize(child, values, &child_path, enums),
                    );
                }
                Value::Map(out)
            }
            Value::Seq(items) => Value::Seq(
                items
                    .iter()
                    .map(|item| self.generalize(item, values, path, enums))
                    .collect(),
            ),
            scalar => self.generalize_scalar(scalar, values, path, enums),
        }
    }

    fn generalize_scalar(
        &self,
        scalar: &Value,
        values: &ValuesFile,
        path: &str,
        enums: &mut BTreeMap<String, Vec<Value>>,
    ) -> Value {
        // Security-locked paths keep their default constants.
        if self.is_locked(path) {
            return scalar.clone();
        }
        // Annotated enumerations: record the options, keep the first one in
        // the tree (each variant substitutes a different option).
        if let Some(options) = values.options_for(path) {
            if !options.is_empty() {
                enums.insert(path.to_owned(), options.to_vec());
                return options[0].clone();
            }
        }
        match scalar {
            Value::Bool(current) => {
                if self.config.explore_booleans {
                    enums.insert(
                        path.to_owned(),
                        vec![Value::Bool(*current), Value::Bool(!current)],
                    );
                }
                Value::Bool(*current)
            }
            Value::Int(_) => Value::from(placeholder::INT),
            Value::Float(_) => Value::from(placeholder::FLOAT),
            Value::Str(text) => {
                if looks_like_ip(text) {
                    Value::from(placeholder::IP)
                } else {
                    Value::from(placeholder::STRING)
                }
            }
            Value::Null => Value::Null,
            container => container.clone(),
        }
    }
}

/// Whether a string looks like an IPv4 address (the placeholder heuristic the
/// paper applies to fields such as `host: "0.0.0.0"`).
pub fn looks_like_ip(text: &str) -> bool {
    let octets: Vec<&str> = text.split('.').collect();
    octets.len() == 4
        && octets
            .iter()
            .all(|o| !o.is_empty() && o.len() <= 3 && o.chars().all(|c| c.is_ascii_digit()))
        && octets
            .iter()
            .all(|o| o.parse::<u16>().map(|v| v <= 255).unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_yaml::Path;

    const VALUES: &str = r#"image:
  registry: docker.io
  repository: bitnami/mlflow
  pullSecrets:
    - name: secret-1
    - name: secret-2
tracking:
  enabled: true
  replicaCount: 1
  host: "0.0.0.0"
  containerSecurityContext:
    runAsNonRoot: true
postgreSQL:
  # @options: standalone | repl
  arch: standalone
"#;

    fn schema() -> ValuesSchema {
        let values = ValuesFile::parse(VALUES).unwrap();
        ValuesSchemaGenerator::default().generate(&values)
    }

    fn at(schema: &ValuesSchema, path: &str) -> Value {
        schema
            .tree()
            .get_path(&Path::parse(path).unwrap())
            .cloned()
            .unwrap_or(Value::Null)
    }

    #[test]
    fn static_values_become_type_placeholders() {
        let schema = schema();
        assert_eq!(at(&schema, "tracking.replicaCount"), Value::from("int"));
        assert_eq!(at(&schema, "tracking.host"), Value::from("IP"));
        assert_eq!(
            at(&schema, "image.pullSecrets[0].name"),
            Value::from("string")
        );
    }

    #[test]
    fn trusted_registry_and_repository_stay_locked() {
        let schema = schema();
        assert_eq!(at(&schema, "image.registry"), Value::from("docker.io"));
        assert_eq!(
            at(&schema, "image.repository"),
            Value::from("bitnami/mlflow")
        );
    }

    #[test]
    fn annotations_become_enumerations() {
        let schema = schema();
        let options = schema.enums().get("postgreSQL.arch").unwrap();
        assert_eq!(
            options,
            &vec![Value::from("standalone"), Value::from("repl")]
        );
        // The tree keeps the first option for rendering.
        assert_eq!(at(&schema, "postgreSQL.arch"), Value::from("standalone"));
    }

    #[test]
    fn booleans_are_explored_as_two_option_enums() {
        let schema = schema();
        let options = schema.enums().get("tracking.enabled").unwrap();
        assert_eq!(options.len(), 2);
        assert!(options.contains(&Value::Bool(true)));
        assert!(options.contains(&Value::Bool(false)));
        assert_eq!(schema.variant_count(), 2);
    }

    #[test]
    fn boolean_exploration_can_be_disabled() {
        let values = ValuesFile::parse("enabled: true\n").unwrap();
        let generator = ValuesSchemaGenerator::new(SchemaGeneratorConfig {
            explore_booleans: false,
            ..SchemaGeneratorConfig::default()
        });
        let schema = generator.generate(&values);
        assert!(schema.enums().is_empty());
        assert_eq!(schema.variant_count(), 1);
    }

    #[test]
    fn custom_locked_paths_are_respected() {
        let values = ValuesFile::parse("priorityClass: high\nname: demo\n").unwrap();
        let generator = ValuesSchemaGenerator::new(SchemaGeneratorConfig {
            locked_value_paths: vec!["priorityClass".to_owned()],
            ..SchemaGeneratorConfig::default()
        });
        let schema = generator.generate(&values);
        assert_eq!(
            schema.tree().get("priorityClass").unwrap(),
            &Value::from("high")
        );
        assert_eq!(schema.tree().get("name").unwrap(), &Value::from("string"));
    }

    #[test]
    fn ip_detection_is_conservative() {
        assert!(looks_like_ip("0.0.0.0"));
        assert!(looks_like_ip("192.168.1.254"));
        assert!(!looks_like_ip("1.2.3"));
        assert!(!looks_like_ip("1.2.3.999"));
        assert!(!looks_like_ip("bitnami/nginx"));
        assert!(!looks_like_ip("v1.2.3.4suffix"));
    }
}
