//! The end-to-end policy generation pipeline (offline phase of Figure 6).

use serde::{Deserialize, Serialize};

use helm_lite::{render_chart_in_namespace, Chart};
use kf_yaml::Value;

use crate::explore::ConfigurationExplorer;
use crate::schema_gen::{SchemaGeneratorConfig, ValuesSchemaGenerator};
use crate::security::SecurityLocks;
use crate::validator::Validator;
use crate::Result;

/// Configuration of the policy generation pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Release name used when rendering the chart (the operator deploys with
    /// the same release name, so generated constants line up).
    pub release_name: String,
    /// Target namespace used when rendering.
    pub namespace: String,
    /// Values-schema generation options.
    pub schema: SchemaGeneratorConfig,
    /// Security best-practice locks applied to the generated validator.
    pub security_locks: SecurityLocks,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            release_name: "release".to_owned(),
            namespace: "default".to_owned(),
            schema: SchemaGeneratorConfig::default(),
            security_locks: SecurityLocks::best_practices(),
        }
    }
}

impl GeneratorConfig {
    /// A configuration using the given release name (everything else default).
    pub fn for_release(release_name: &str) -> Self {
        GeneratorConfig {
            release_name: release_name.to_owned(),
            ..GeneratorConfig::default()
        }
    }
}

/// The KubeFence policy generator: chart in, validator out.
#[derive(Debug, Clone, Default)]
pub struct PolicyGenerator {
    config: GeneratorConfig,
}

impl PolicyGenerator {
    /// A generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        PolicyGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Run the full pipeline: values schema → variants → rendered manifests →
    /// consolidated validator with security locks applied.
    ///
    /// Locks that conflict with the chart's *default* configuration (the
    /// workload legitimately requires the unsafe value) are skipped for this
    /// workload rather than breaking it; that interface remains a residual
    /// risk, as discussed in Section VIII of the paper.
    ///
    /// # Errors
    ///
    /// Propagates chart rendering failures and manifest interpretation
    /// failures.
    pub fn generate(&self, chart: &Chart) -> Result<Validator> {
        let manifests = self.rendered_manifests(chart)?;
        let mut validator = Validator::from_manifests(&chart.metadata().name, &manifests)?;
        let default_manifests = render_chart_in_namespace(
            chart,
            None,
            &self.config.release_name,
            &self.config.namespace,
        )?;
        let defaults: Vec<Value> = default_manifests.into_iter().map(|m| m.document).collect();
        let locks = self.effective_locks(&defaults);
        validator.apply_security_locks(&locks);
        Ok(validator)
    }

    /// The security locks that do not conflict with the chart's default
    /// configuration. A lock conflicts when some default manifest sets the
    /// locked field to a different value — the workload needs that feature,
    /// so KubeFence leaves it enabled (residual risk).
    fn effective_locks(&self, default_manifests: &[Value]) -> SecurityLocks {
        let mut effective = SecurityLocks::none();
        'locks: for lock in self.config.security_locks.locks() {
            for manifest in default_manifests {
                let Ok(object) = k8s_model::K8sObject::from_value(manifest.clone()) else {
                    continue;
                };
                let Some(prefix) = k8s_model::FieldRef::pod_spec_prefix(object.kind()) else {
                    continue;
                };
                let path = format!("{prefix}.{}", lock.field);
                let conflicting = k8s_model::condition::lookup_collapsed(object.body(), &path)
                    .iter()
                    .any(|value| !value.loosely_equals(&lock.locked_value));
                if conflicting {
                    continue 'locks;
                }
            }
            effective = effective.with_lock(lock.clone());
        }
        effective
    }

    /// The rendered manifests for every values variant (exposed separately
    /// for the ablation benchmarks and for Figure 9's usage analysis).
    ///
    /// # Errors
    ///
    /// Propagates chart rendering failures.
    pub fn rendered_manifests(&self, chart: &Chart) -> Result<Vec<Value>> {
        let schema =
            ValuesSchemaGenerator::new(self.config.schema.clone()).generate(chart.values());
        let variants = ConfigurationExplorer::new().variants(&schema);
        let mut manifests = Vec::new();
        for variant in &variants {
            let rendered = render_chart_in_namespace(
                chart,
                Some(variant),
                &self.config.release_name,
                &self.config.namespace,
            )?;
            manifests.extend(rendered.into_iter().map(|m| m.document));
        }
        Ok(manifests)
    }

    /// Number of values variants the chart's configuration space requires.
    pub fn variant_count(&self, chart: &Chart) -> usize {
        ValuesSchemaGenerator::new(self.config.schema.clone())
            .generate(chart.values())
            .variant_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helm_lite::{ChartMetadata, TemplateFile, ValuesFile};
    use k8s_model::{K8sObject, ResourceKind};

    fn chart() -> Chart {
        let values = ValuesFile::parse(
            r#"replicaCount: 1
image:
  registry: docker.io
  repository: bitnami/nginx
  tag: 1.25.3
service:
  # @options: ClusterIP, LoadBalancer
  type: ClusterIP
  port: 8080
metrics:
  enabled: false
containerSecurityContext:
  runAsNonRoot: true
"#,
        )
        .unwrap();
        let deployment = TemplateFile::new(
            "deployment.yaml",
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: {{ .Release.Name }}-nginx
spec:
  replicas: {{ .Values.replicaCount }}
  template:
    spec:
      containers:
        - name: nginx
          image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
          ports:
            - containerPort: {{ .Values.service.port }}
          securityContext:
            runAsNonRoot: {{ .Values.containerSecurityContext.runAsNonRoot }}
"#,
        );
        let service = TemplateFile::new(
            "service.yaml",
            r#"apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-nginx
spec:
  type: {{ .Values.service.type }}
  ports:
    - port: {{ .Values.service.port }}
"#,
        );
        let metrics = TemplateFile::new(
            "metrics-service.yaml",
            r#"{{- if .Values.metrics.enabled }}
apiVersion: v1
kind: Service
metadata:
  name: {{ .Release.Name }}-nginx-metrics
spec:
  ports:
    - port: 9113
{{- end }}
"#,
        );
        Chart::new(
            ChartMetadata::new("nginx", "15.0.0"),
            values,
            vec![deployment, service, metrics],
        )
    }

    #[test]
    fn pipeline_produces_a_validator_for_the_used_kinds() {
        let validator = PolicyGenerator::new(GeneratorConfig::for_release("web"))
            .generate(&chart())
            .unwrap();
        let mut kinds = validator.kinds();
        kinds.sort();
        assert_eq!(kinds, vec![ResourceKind::Deployment, ResourceKind::Service]);
    }

    #[test]
    fn enumerations_and_conditionals_are_covered() {
        let generator = PolicyGenerator::new(GeneratorConfig::for_release("web"));
        // service.type has two options, metrics.enabled is a boolean: two
        // variants cover the whole space.
        assert_eq!(generator.variant_count(&chart()), 2);
        let validator = generator.generate(&chart()).unwrap();
        // Both service types are allowed…
        for service_type in ["ClusterIP", "LoadBalancer"] {
            let manifest = format!(
                "apiVersion: v1\nkind: Service\nmetadata:\n  name: web-nginx\nspec:\n  type: {service_type}\n  ports:\n    - port: 8080\n"
            );
            let object = K8sObject::from_yaml(&manifest).unwrap();
            assert!(validator.allows(&object), "{service_type} must be allowed");
        }
        // …but a type outside the enumeration is not.
        let node_port = K8sObject::from_yaml(
            "apiVersion: v1\nkind: Service\nmetadata:\n  name: web-nginx\nspec:\n  type: NodePort\n  ports:\n    - port: 8080\n",
        )
        .unwrap();
        assert!(!validator.allows(&node_port));
        // The metrics service (rendered only in the enabled variant) is part
        // of the allowed configuration space.
        let metrics = K8sObject::from_yaml(
            "apiVersion: v1\nkind: Service\nmetadata:\n  name: web-nginx-metrics\nspec:\n  ports:\n    - port: 9113\n",
        )
        .unwrap();
        assert!(validator.allows(&metrics));
    }

    #[test]
    fn generated_validator_blocks_fields_outside_the_chart() {
        let validator = PolicyGenerator::new(GeneratorConfig::for_release("web"))
            .generate(&chart())
            .unwrap();
        let exploit = K8sObject::from_yaml(
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web-nginx
spec:
  replicas: 2
  template:
    spec:
      hostNetwork: true
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:1.25.3
          ports:
            - containerPort: 8080
          securityContext:
            runAsNonRoot: true
"#,
        )
        .unwrap();
        let violations = validator.validate(&exploit);
        assert!(violations
            .iter()
            .any(|v| v.path == "spec.template.spec.hostNetwork"));
    }

    #[test]
    fn legitimate_deployments_pass_validation() {
        let validator = PolicyGenerator::new(GeneratorConfig::for_release("web"))
            .generate(&chart())
            .unwrap();
        let legitimate = K8sObject::from_yaml(
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web-nginx
spec:
  replicas: 3
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:1.25.3
          ports:
            - containerPort: 8080
          securityContext:
            runAsNonRoot: true
"#,
        )
        .unwrap();
        assert!(validator.validate(&legitimate).is_empty());
    }
}
