//! # KubeFence — workload-specific, field-level Kubernetes API filtering
//!
//! This crate implements the primary contribution of *"KubeFence: Security
//! Hardening of the Kubernetes Attack Surface"* (DSN 2025): automatic
//! generation of fine-grained API security policies from the Helm charts of
//! Kubernetes Operators, and runtime enforcement of those policies by a proxy
//! interposed between clients and the API server.
//!
//! The pipeline follows the four phases of Section V of the paper:
//!
//! 1. **Values-schema generation** ([`schema_gen`]) — the chart's default
//!    values are generalized into type placeholders, enumerations (from
//!    `# @options:` annotations) and security-locked constants.
//! 2. **Configuration-space exploration** ([`explore`]) — values *variants*
//!    are generated so that every option of every enumerative field is covered
//!    by at least one variant.
//! 3. **Manifest rendering** — every variant is rendered through the chart
//!    templates (via [`helm_lite`]), producing the set of permissible
//!    manifests.
//! 4. **Validator generation** ([`validator`]) — the manifests are merged,
//!    per resource kind, into a single *validator*: a tree of constants, type
//!    placeholders and enumerations used to check incoming API requests.
//!
//! Enforcement ([`proxy`]) wraps the (simulated) API server behind an
//! [`EnforcementProxy`] that validates every mutating request against the
//! workload's validator, forwards compliant requests and rejects everything
//! else with an HTTP 403 plus an audit record — the same complete-mediation
//! deployment the paper builds with mitmproxy.
//!
//! The attack-surface analysis of the paper's evaluation (Figure 9, Table I)
//! is implemented in [`surface`].
//!
//! ```
//! use kubefence::{PolicyGenerator, GeneratorConfig};
//! use helm_lite::{Chart, ChartMetadata, TemplateFile, ValuesFile};
//!
//! # fn main() -> Result<(), kubefence::Error> {
//! let chart = Chart::new(
//!     ChartMetadata::new("demo", "1.0.0"),
//!     ValuesFile::parse("replicas: 2\n").map_err(kubefence::Error::from)?,
//!     vec![TemplateFile::new(
//!         "deployment.yaml",
//!         "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: demo\nspec:\n  replicas: {{ .Values.replicas }}\n",
//!     )],
//! );
//! let validator = PolicyGenerator::new(GeneratorConfig::default()).generate(&chart)?;
//! assert_eq!(validator.kinds().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aot;
pub mod compile;
mod error;
pub mod explore;
mod pipeline;
pub mod proxy;
pub mod schema_gen;
pub mod security;
pub mod stream;
pub mod surface;
pub mod validator;

pub use aot::{aot_path, load_validator_set, save_validator_set};
pub use compile::{ArenaDecodeError, CompiledNode, CompiledValidator};
pub use error::Error;
pub use explore::ConfigurationExplorer;
pub use kf_yaml::BodyFormat;
pub use pipeline::{GeneratorConfig, PolicyGenerator};
pub use proxy::{BaselineProxy, DenialRecord, EnforcementProxy, ProxyStats};
pub use schema_gen::{ValuesSchema, ValuesSchemaGenerator};
pub use security::{SecurityLock, SecurityLocks};
pub use stream::{RawVerdict, SourceLocation};
pub use surface::{AttackSurfaceAnalyzer, SurfaceReport, WorkloadSurface};
pub use validator::{PolicyNode, TypeTag, Validator, ValidatorSet, Violation, ViolationReason};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
