//! Phase 2 — exploration of the configuration space.
//!
//! The values schema cannot be rendered directly: enumerative fields must be
//! resolved to one concrete option per rendering. KubeFence avoids the
//! combinatorial explosion of the full cross product by generating just enough
//! *values variants* that every option of every enumerative field appears in
//! at least one variant: at iteration `i`, each enumerative field takes its
//! `i`-th option (its last option once the list is exhausted), and the process
//! runs up to the length of the longest option list.

use kf_yaml::{Path, Value};

use crate::schema_gen::ValuesSchema;

/// Generates values variants from a values schema.
#[derive(Debug, Clone, Default)]
pub struct ConfigurationExplorer;

impl ConfigurationExplorer {
    /// An explorer with the paper's coverage strategy.
    pub fn new() -> Self {
        ConfigurationExplorer
    }

    /// The values variants covering every enumeration option at least once.
    pub fn variants(&self, schema: &ValuesSchema) -> Vec<Value> {
        let count = schema.variant_count();
        (0..count).map(|i| self.variant(schema, i)).collect()
    }

    /// The `i`-th variant (used by tests and the ablation benchmarks).
    pub fn variant(&self, schema: &ValuesSchema, iteration: usize) -> Value {
        let mut tree = schema.tree().clone();
        for (path, options) in schema.enums() {
            let option = options
                .get(iteration.min(options.len().saturating_sub(1)))
                .cloned()
                .unwrap_or(Value::Null);
            if let Ok(parsed) = Path::parse(path) {
                // Enumerations always sit on mapping fields of the values
                // tree, so the set cannot fail structurally; ignore paths that
                // disappeared (defensive).
                let _ = tree.set_path(&parsed, option);
            }
        }
        tree
    }

    /// The full cartesian product of all enumerations — exponentially larger,
    /// implemented only as the comparison point for the
    /// `ablation_variant_strategy` benchmark.
    pub fn exhaustive_variants(&self, schema: &ValuesSchema) -> Vec<Value> {
        let enums: Vec<(&String, &Vec<Value>)> = schema.enums().iter().collect();
        if enums.is_empty() {
            return vec![schema.tree().clone()];
        }
        let total: usize = enums
            .iter()
            .map(|(_, options)| options.len().max(1))
            .product();
        let mut variants = Vec::with_capacity(total);
        for mut index in 0..total {
            let mut tree = schema.tree().clone();
            for (path, options) in &enums {
                let len = options.len().max(1);
                let choice = index % len;
                index /= len;
                if let Ok(parsed) = Path::parse(path) {
                    let _ = tree.set_path(&parsed, options[choice].clone());
                }
            }
            variants.push(tree);
        }
        variants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::ValuesSchemaGenerator;
    use helm_lite::ValuesFile;

    fn schema_from(values: &str) -> ValuesSchema {
        ValuesSchemaGenerator::default().generate(&ValuesFile::parse(values).unwrap())
    }

    #[test]
    fn no_enums_yields_a_single_variant() {
        let schema = schema_from("name: demo\nreplicas: 2\n");
        let variants = ConfigurationExplorer::new().variants(&schema);
        assert_eq!(variants.len(), 1);
        assert_eq!(variants[0].get("replicas").unwrap(), &Value::from("int"));
    }

    #[test]
    fn variant_count_follows_the_longest_enumeration() {
        let schema = schema_from(
            "# @options: a | b | c\nmode: a\nservice:\n  # @options: ClusterIP, NodePort\n  type: ClusterIP\n",
        );
        let explorer = ConfigurationExplorer::new();
        let variants = explorer.variants(&schema);
        assert_eq!(variants.len(), 3);
        // Shorter lists reuse their last option once exhausted.
        assert_eq!(
            variants[2]
                .get_path(&Path::parse("service.type").unwrap())
                .unwrap(),
            &Value::from("NodePort")
        );
        assert_eq!(variants[2].get("mode").unwrap(), &Value::from("c"));
    }

    #[test]
    fn every_option_appears_in_at_least_one_variant() {
        let schema = schema_from("# @options: a | b | c\nmode: a\nfeature:\n  enabled: true\n");
        let variants = ConfigurationExplorer::new().variants(&schema);
        for option in ["a", "b", "c"] {
            assert!(
                variants
                    .iter()
                    .any(|v| v.get("mode").unwrap() == &Value::from(option)),
                "option {option} not covered"
            );
        }
        for flag in [true, false] {
            assert!(variants.iter().any(|v| {
                v.get_path(&Path::parse("feature.enabled").unwrap())
                    .unwrap()
                    == &Value::Bool(flag)
            }));
        }
    }

    #[test]
    fn exhaustive_exploration_is_the_cross_product() {
        let schema = schema_from("# @options: a | b | c\nmode: a\nfeature:\n  enabled: true\n");
        let explorer = ConfigurationExplorer::new();
        assert_eq!(explorer.variants(&schema).len(), 3);
        assert_eq!(explorer.exhaustive_variants(&schema).len(), 6);
    }
}
