//! Validate-while-parse enforcement: the streaming admission plane.
//!
//! The compiled arena ([`crate::compile`]) removed tree walks from
//! *validation*; this module removes the tree from *parsing*. A raw request
//! body is tokenized once by the pull-based [`kf_yaml::events::Tokenizer`]
//! and a small state machine per candidate validator (the
//! [`StreamMatcher`]) advances arena node ids as events arrive:
//!
//! * the object's `kind:` is discovered during tokenization (no separate
//!   `peek_kind` pre-pass over a parsed tree);
//! * on the accept path **no document tree is ever allocated** — keys and
//!   scalars borrow from the wire buffer and are checked directly against
//!   the compiled nodes;
//! * the first event at which every candidate matcher has failed decides the
//!   denial (*early deny*): tokenization stops there, and the event's source
//!   position is reported in the denial record;
//! * the rare constructs the stream cannot decide (root-level fields seen
//!   before `kind:` whose values are containers, and constant/enumeration
//!   policies over container values) fall back to the tree path —
//!   [`ValidatorSet::validate_raw_tree`], which is also the reference
//!   implementation the parity fuzz tests pin the streaming verdicts to.
//!
//! Only the *admit* verdict and the policy-denial *decision* are computed
//! in-stream; every report (denial violations, envelope defects,
//! multi-document and parse errors) is produced by re-running the
//! reference path over the payload, so `validate_raw` and
//! `validate_raw_tree` return byte-identical outcomes — the stream only
//! *adds* the deciding event's source location to policy denials. The
//! admit path — the overwhelmingly common one — never leaves the stream.
//! See `docs/streaming-admission.md`.

use k8s_model::{K8sObject, ResourceKind};
use kf_yaml::events::{Event, Pos, ScalarToken, Tokenizer};
use kf_yaml::Value;

use crate::compile::{CompiledNode, CompiledValidator};
use crate::schema_gen::looks_like_ip;
use crate::validator::{TypeTag, ValidatorSet, Violation};

/// Source position attached to raw-body denials: the line (and, when the
/// stream decided, the byte offset) of the violating field or parse error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceLocation {
    /// 1-based line in the request body.
    pub line: usize,
    /// 0-based byte offset in the request body, when known.
    pub offset: Option<usize>,
}

impl From<Pos> for SourceLocation {
    fn from(pos: Pos) -> Self {
        SourceLocation {
            line: pos.line,
            offset: Some(pos.offset),
        }
    }
}

/// The verdict on a raw (wire-bytes) request body.
#[derive(Debug, Clone, PartialEq)]
pub enum RawVerdict {
    /// Some covering validator admits the object.
    Admitted,
    /// Every covering validator rejects the object.
    Denied {
        /// The violations of the closest-matching covering validator
        /// (identical to the tree path's report).
        violations: Vec<Violation>,
        /// Position of the event that decided the denial, when the stream
        /// decided it.
        location: Option<SourceLocation>,
    },
    /// The body is not a single, well-formed, recognizable Kubernetes
    /// object (YAML error, multi-document payload, missing/unknown `kind`,
    /// missing `metadata.name`).
    Unparsable {
        /// Why the body was rejected before policy evaluation.
        reason: String,
        /// Position of the parse error, when known.
        location: Option<SourceLocation>,
    },
}

impl RawVerdict {
    /// Whether the verdict admits the request.
    pub fn is_admitted(&self) -> bool {
        matches!(self, RawVerdict::Admitted)
    }
}

fn unparsable_error(error: &kf_yaml::Error) -> RawVerdict {
    let location = match error {
        kf_yaml::Error::Parse { line, .. } => Some(SourceLocation {
            line: *line,
            offset: None,
        }),
        _ => None,
    };
    RawVerdict::Unparsable {
        reason: error.to_string(),
        location,
    }
}

impl ValidatorSet {
    /// Validate a raw request body **while parsing it**: the streaming
    /// entry point of the enforcement proxy. Admission allocates no
    /// document tree; denials stop tokenizing at the deciding event and
    /// report the tree path's exact violation list.
    pub fn validate_raw(&self, text: &str) -> RawVerdict {
        match streaming_verdict(self, text) {
            Some(verdict) => verdict,
            // Constructs the stream cannot decide: authoritative tree path.
            None => self.validate_raw_tree(text),
        }
    }

    /// The tree-path reference semantics for raw bodies: parse the full
    /// document, pre-check the object envelope, then validate the tree.
    /// [`ValidatorSet::validate_raw`] reaches exactly these verdicts
    /// (adding only the deciding event's location to stream-decided
    /// denials); the parity fuzz tests and the `streaming_admission`
    /// benchmark both run this form.
    pub fn validate_raw_tree(&self, text: &str) -> RawVerdict {
        let docs = match kf_yaml::parse_documents(text) {
            Ok(docs) => docs,
            Err(e) => return unparsable_error(&e),
        };
        if docs.len() != 1 {
            return RawVerdict::Unparsable {
                reason: format!("expected a single YAML document, found {}", docs.len()),
                location: None,
            };
        }
        let body = &docs[0];
        let kind = match K8sObject::peek_kind(body) {
            Ok(kind) => kind,
            Err(e) => {
                return RawVerdict::Unparsable {
                    reason: e.to_string(),
                    location: None,
                }
            }
        };
        match self.validate_kind_body(kind, body) {
            Ok(()) => RawVerdict::Admitted,
            Err(violations) => RawVerdict::Denied {
                violations,
                location: None,
            },
        }
    }
}

/// Produce the report for a stream-decided denial by re-running the full
/// reference semantics ([`ValidatorSet::validate_raw_tree`]) and stamping
/// the deciding event's position onto policy denials. This keeps
/// stream-decided outcomes byte-identical to the tree path — including its
/// precedence of parse errors and envelope defects over policy violations.
fn deny_report(set: &ValidatorSet, text: &str, pos: Pos) -> RawVerdict {
    match set.validate_raw_tree(text) {
        // The tree path is authoritative; a disagreement here would be a
        // matcher bug, so trust the tree.
        RawVerdict::Admitted => RawVerdict::Admitted,
        RawVerdict::Denied { violations, .. } => RawVerdict::Denied {
            violations,
            location: Some(pos.into()),
        },
        unparsable => unparsable,
    }
}

/// Run the streaming matchers over the token stream. `None` means the
/// stream hit a construct it cannot decide and the caller must fall back to
/// the tree path.
fn streaming_verdict(set: &ValidatorSet, text: &str) -> Option<RawVerdict> {
    let mut tokenizer = match Tokenizer::new(text) {
        Ok(t) => t,
        Err(e) => return Some(unparsable_error(&e)),
    };

    let mut depth = 0usize;
    let mut started = false;
    let mut doc_done = false;
    // Root-level key whose value has not started yet.
    let mut pending_root_key: Option<(std::borrow::Cow<'_, str>, Pos)> = None;
    // Root-level scalar entries seen before `kind:` was discovered; replayed
    // into the matchers once the policy root is known.
    let mut prekind: Vec<(std::borrow::Cow<'_, str>, Pos, ScalarToken<'_>, Pos)> = Vec::new();
    let mut kind: Option<ResourceKind> = None;
    let mut matchers: Vec<StreamMatcher<'_>> = Vec::new();
    // Envelope tracking: `metadata.name` must be a non-empty string.
    let mut metadata_open: Option<usize> = None;
    let mut pending_name = false;
    let mut name_ok = false;

    while !doc_done {
        let event = match tokenizer.next_event() {
            Ok(Some(event)) => event,
            Ok(None) => break,
            Err(e) => return Some(unparsable_error(&e)),
        };
        // The event that resolves `kind:` is fed to the matchers by the
        // replay below, not by the regular per-event feed.
        let mut feed_event = kind.is_some();
        match &event {
            Event::MappingStart { .. } | Event::SequenceStart { .. } => {
                if !started {
                    if matches!(event, Event::SequenceStart { .. }) {
                        // Not an object envelope: reference semantics.
                        return Some(set.validate_raw_tree(text));
                    }
                    started = true;
                } else if depth == 1 {
                    if let Some((key, _)) = pending_root_key.take() {
                        if kind.is_none() {
                            if key == "kind" {
                                // `kind` is not a string: reference semantics.
                                return Some(set.validate_raw_tree(text));
                            }
                            // A container value before `kind:` is known
                            // cannot be validated in-stream.
                            return None;
                        }
                        if key == "metadata" && matches!(event, Event::MappingStart { .. }) {
                            metadata_open = Some(depth + 1);
                        }
                    }
                } else if metadata_open == Some(depth) && pending_name {
                    pending_name = false; // name is not a string
                }
                depth += 1;
            }
            Event::Key { name, pos } => {
                if !started {
                    return Some(set.validate_raw_tree(text));
                }
                if depth == 1 {
                    pending_root_key = Some((name.clone(), *pos));
                } else if metadata_open == Some(depth) {
                    pending_name = name == "name";
                }
            }
            Event::Scalar { value, pos } => {
                if !started {
                    // A bare-scalar document: reference semantics.
                    return Some(set.validate_raw_tree(text));
                }
                if depth == 1 {
                    if let Some((key, key_pos)) = pending_root_key.take() {
                        if key == "kind" && kind.is_none() {
                            let Some(kind_text) = value.as_str() else {
                                return Some(set.validate_raw_tree(text));
                            };
                            let Some(resolved) = ResourceKind::parse(kind_text) else {
                                return Some(set.validate_raw_tree(text));
                            };
                            let route = set.validators_for(resolved);
                            if route.is_empty() {
                                // No validator covers the kind. The denial
                                // itself is certain, but the reference
                                // ranks envelope/multi-document defects
                                // above the UnknownKind violation, so let
                                // it produce the report.
                                return Some(deny_report(set, text, *pos));
                            }
                            kind = Some(resolved);
                            for &index in route {
                                let compiled = set.validators()[index as usize].compiled();
                                let root = compiled
                                    .kind_root(resolved)
                                    .expect("routing table lists only covering validators");
                                matchers.push(StreamMatcher::new(compiled, root));
                            }
                            // Replay the envelope into the fresh matchers:
                            // the root mapping, every buffered pre-kind
                            // scalar entry, then `kind` itself. The replay
                            // checks matcher health after every event so
                            // an early deny is stamped with the position of
                            // the replayed field that decided it, not the
                            // `kind:` value's.
                            let mut replay: Vec<Event<'_>> =
                                Vec::with_capacity(2 * prekind.len() + 3);
                            replay.push(Event::MappingStart {
                                pos: Pos::default(),
                            });
                            for (bkey, bkey_pos, bvalue, bvalue_pos) in &prekind {
                                replay.push(Event::Key {
                                    name: bkey.clone(),
                                    pos: *bkey_pos,
                                });
                                replay.push(Event::Scalar {
                                    value: bvalue.clone(),
                                    pos: *bvalue_pos,
                                });
                            }
                            replay.push(Event::Key {
                                name: std::borrow::Cow::Borrowed("kind"),
                                pos: key_pos,
                            });
                            replay.push(Event::Scalar {
                                value: value.clone(),
                                pos: *pos,
                            });
                            for replay_event in &replay {
                                for matcher in &mut matchers {
                                    matcher.feed(replay_event);
                                }
                                if matchers.iter().any(StreamMatcher::needs_tree) {
                                    return None;
                                }
                                if matchers.iter().all(|m| !m.alive()) {
                                    return Some(deny_report(set, text, event_pos(replay_event)));
                                }
                            }
                            feed_event = false;
                        } else if kind.is_none() {
                            prekind.push((key, key_pos, value.clone(), *pos));
                        }
                    }
                } else if metadata_open == Some(depth) && pending_name {
                    pending_name = false;
                    if let ScalarToken::Str(s) = value {
                        if !s.is_empty() {
                            name_ok = true;
                        }
                    }
                }
            }
            Event::End => {
                depth = depth.saturating_sub(1);
                if let Some(open) = metadata_open {
                    if depth < open {
                        metadata_open = None;
                    }
                }
            }
            Event::DocumentEnd => {
                doc_done = true;
                feed_event = false;
            }
        }
        if feed_event && !matchers.is_empty() {
            for matcher in &mut matchers {
                matcher.feed(&event);
            }
            if matchers.iter().any(StreamMatcher::needs_tree) {
                return None;
            }
            if matchers.iter().all(|m| !m.alive()) {
                // Early deny: every candidate failed. Stop tokenizing here
                // and produce the tree path's exact report.
                return Some(deny_report(set, text, event_pos(&event)));
            }
        }
    }

    if !started {
        // Empty or comment-only body: reference semantics.
        return Some(set.validate_raw_tree(text));
    }
    // A request body must be exactly one document, and the reference ranks
    // multi-document (and any later parse) defects above envelope defects —
    // `parse_documents` sees the whole stream before `peek_kind` runs. Drain
    // the tokenizer (building no trees) to reproduce its outcome: the
    // earliest parse error anywhere in the stream, else the document count.
    match tokenizer.next_event() {
        Ok(None) => {}
        Ok(Some(_)) => loop {
            match tokenizer.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => {
                    return Some(RawVerdict::Unparsable {
                        reason: format!(
                            "expected a single YAML document, found {}",
                            tokenizer.document_count()
                        ),
                        location: None,
                    })
                }
                Err(e) => return Some(unparsable_error(&e)),
            }
        },
        Err(e) => return Some(unparsable_error(&e)),
    }
    if kind.is_none() || !name_ok {
        // Envelope defect (missing `kind` / `metadata.name`): cold path,
        // defer to the reference for its exact report.
        return Some(set.validate_raw_tree(text));
    }
    debug_assert!(matchers.iter().any(StreamMatcher::alive));
    Some(RawVerdict::Admitted)
}

fn event_pos(event: &Event<'_>) -> Pos {
    match event {
        Event::MappingStart { pos }
        | Event::SequenceStart { pos }
        | Event::Key { pos, .. }
        | Event::Scalar { pos, .. } => *pos,
        Event::End | Event::DocumentEnd => Pos::default(),
    }
}

/// An open container frame of a [`StreamMatcher`].
#[derive(Debug, Clone, Copy)]
enum MFrame {
    /// Inside a mapping whose compiled entry run is `entries[start..start+len]`.
    Map { entries_start: u32, len: u32 },
    /// Inside a sequence whose elements check against `element`.
    Seq { element: u32 },
    /// Inside a subtree the policy allows unconditionally (`Any`).
    Skip,
}

/// Where the next value event lands.
enum Target {
    Skip,
    Node(u32),
}

/// A state machine that advances compiled-arena node ids as tokenizer events
/// arrive, reaching the same admit/deny verdict as
/// [`CompiledValidator::allows_kind_body`](crate::compile::CompiledValidator::allows_kind_body)
/// without a document tree.
#[derive(Debug)]
pub(crate) struct StreamMatcher<'c> {
    compiled: &'c CompiledValidator,
    stack: Vec<MFrame>,
    /// The node the next value event must satisfy (set by `Key` events and
    /// by the root).
    pending: Option<u32>,
    alive: bool,
    needs_tree: bool,
}

impl<'c> StreamMatcher<'c> {
    fn new(compiled: &'c CompiledValidator, root: u32) -> Self {
        StreamMatcher {
            compiled,
            stack: Vec::with_capacity(16),
            pending: Some(root),
            alive: true,
            needs_tree: false,
        }
    }

    fn alive(&self) -> bool {
        self.alive
    }

    fn needs_tree(&self) -> bool {
        self.needs_tree
    }

    fn value_target(&mut self) -> Target {
        if matches!(self.stack.last(), Some(MFrame::Skip)) {
            return Target::Skip;
        }
        if let Some(id) = self.pending.take() {
            return Target::Node(id);
        }
        if let Some(MFrame::Seq { element }) = self.stack.last() {
            return Target::Node(*element);
        }
        // A value event with no expectation cannot occur in a well-formed
        // event stream; defer to the tree rather than guess.
        self.needs_tree = true;
        Target::Skip
    }

    /// A mapping or sequence opens where the current expectation points.
    fn enter_container(&mut self, is_mapping: bool) {
        match self.value_target() {
            Target::Skip => self.stack.push(MFrame::Skip),
            Target::Node(id) => match self.compiled.node(id) {
                CompiledNode::Map { entries_start, len } if is_mapping => {
                    self.stack.push(MFrame::Map { entries_start, len });
                }
                CompiledNode::Seq { element } if !is_mapping => {
                    self.stack.push(MFrame::Seq { element });
                }
                CompiledNode::Any => self.stack.push(MFrame::Skip),
                CompiledNode::Const { value } => {
                    // A constant policy over a container value needs a
                    // structural comparison the stream cannot perform —
                    // unless the constant is a scalar, in which case any
                    // container trivially mismatches.
                    if self.compiled.value(value).is_scalar() {
                        self.alive = false;
                    } else {
                        self.needs_tree = true;
                    }
                }
                CompiledNode::Enum { start, len } => {
                    if self
                        .compiled
                        .values_slice(start, len)
                        .iter()
                        .all(Value::is_scalar)
                    {
                        self.alive = false;
                    } else {
                        self.needs_tree = true;
                    }
                }
                // Structure mismatch: a scalar/pattern/type policy (or the
                // other container shape) cannot accept this container.
                _ => self.alive = false,
            },
        }
    }

    fn feed(&mut self, event: &Event<'_>) {
        if !self.alive || self.needs_tree {
            return;
        }
        match event {
            Event::MappingStart { .. } => self.enter_container(true),
            Event::SequenceStart { .. } => self.enter_container(false),
            Event::Key { name, .. } => match self.stack.last() {
                Some(MFrame::Skip) => {}
                Some(MFrame::Map { entries_start, len }) => {
                    let entries = self.compiled.entries(*entries_start, *len);
                    match self.compiled.lookup(entries, name.as_ref()) {
                        Some(entry) => self.pending = Some(entry.child),
                        None => self.alive = false, // unknown field
                    }
                }
                _ => self.needs_tree = true,
            },
            Event::Scalar { value, .. } => match self.value_target() {
                Target::Skip => {}
                Target::Node(id) => {
                    if !self.scalar_complies(id, value) {
                        self.alive = false;
                    }
                }
            },
            Event::End => {
                self.stack.pop();
            }
            Event::DocumentEnd => {}
        }
    }

    fn scalar_complies(&self, id: u32, token: &ScalarToken<'_>) -> bool {
        match self.compiled.node(id) {
            CompiledNode::Any => true,
            CompiledNode::Type(tag) => token_matches_tag(tag, token),
            CompiledNode::Const { value } => {
                token_loosely_equals(token, self.compiled.value(value))
            }
            CompiledNode::Enum { start, len } => self
                .compiled
                .values_slice(start, len)
                .iter()
                .any(|option| token_loosely_equals(token, option)),
            CompiledNode::Pattern { pattern } => token
                .as_str()
                .map(|text| self.compiled.pattern(pattern).matches(text))
                .unwrap_or(false),
            CompiledNode::Map { .. } | CompiledNode::Seq { .. } => false,
        }
    }
}

/// [`TypeTag::matches`] over a scalar token instead of a tree node.
fn token_matches_tag(tag: TypeTag, token: &ScalarToken<'_>) -> bool {
    match tag {
        TypeTag::String => matches!(token, ScalarToken::Str(_)),
        TypeTag::Int => {
            matches!(token, ScalarToken::Int(_))
                || token
                    .as_str()
                    .map(|s| s.parse::<i64>().is_ok())
                    .unwrap_or(false)
        }
        TypeTag::Float => {
            matches!(token, ScalarToken::Float(_) | ScalarToken::Int(_))
                || token
                    .as_str()
                    .map(|s| s.parse::<f64>().is_ok())
                    .unwrap_or(false)
        }
        TypeTag::Bool => matches!(token, ScalarToken::Bool(_)),
        TypeTag::Ip => token.as_str().map(looks_like_ip).unwrap_or(false),
    }
}

/// [`Value::loosely_equals`] between a scalar token and a (scalar) tree
/// node: integer/float representations of the same number are equal.
fn token_loosely_equals(token: &ScalarToken<'_>, value: &Value) -> bool {
    match (token, value) {
        (ScalarToken::Int(a), Value::Float(b)) => (*a as f64 - *b).abs() < f64::EPSILON,
        (ScalarToken::Float(a), Value::Int(b)) => (*b as f64 - *a).abs() < f64::EPSILON,
        (ScalarToken::Null, Value::Null) => true,
        (ScalarToken::Bool(a), Value::Bool(b)) => a == b,
        (ScalarToken::Int(a), Value::Int(b)) => a == b,
        (ScalarToken::Float(a), Value::Float(b)) => a == b,
        (ScalarToken::Str(a), Value::Str(b)) => a.as_ref() == b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::{Validator, ViolationReason};

    fn validator() -> Validator {
        let manifests = vec![
            kf_yaml::parse(
                r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:string
          imagePullPolicy: IfNotPresent
"#,
            )
            .unwrap(),
            kf_yaml::parse(
                r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:string
          imagePullPolicy: Always
"#,
            )
            .unwrap(),
        ];
        Validator::from_manifests("demo", &manifests).unwrap()
    }

    fn set() -> ValidatorSet {
        ValidatorSet::single(validator())
    }

    fn request(image: &str, policy: &str, replicas: &str) -> String {
        format!(
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: {replicas}
  template:
    spec:
      containers:
        - name: nginx
          image: {image}
          imagePullPolicy: {policy}
"#
        )
    }

    #[test]
    fn streaming_admits_compliant_bodies_and_matches_tree() {
        let set = set();
        let text = request("docker.io/bitnami/nginx:1.25", "Always", "3");
        assert_eq!(set.validate_raw(&text), RawVerdict::Admitted);
        assert_eq!(set.validate_raw_tree(&text), RawVerdict::Admitted);
    }

    #[test]
    fn streaming_denies_with_the_tree_report_and_a_location() {
        let set = set();
        let text = request("evil.example/pwn:latest", "Always", "3");
        let RawVerdict::Denied {
            violations,
            location,
        } = set.validate_raw(&text)
        else {
            panic!("expected denial");
        };
        let RawVerdict::Denied {
            violations: tree_violations,
            ..
        } = set.validate_raw_tree(&text)
        else {
            panic!("expected tree denial");
        };
        assert_eq!(violations, tree_violations);
        let location = location.expect("stream-decided denial carries a location");
        // The violating field (`image:`) sits on line 11 of the body.
        assert_eq!(location.line, 11);
        let offset = location.offset.expect("stream denial has a byte offset");
        assert!(text[offset..].starts_with("evil.example/pwn:latest"));
    }

    #[test]
    fn early_deny_stops_before_later_syntax_errors() {
        let set = set();
        // The violation (line 2) precedes a syntax error (line 4): the
        // stream denies without ever tokenizing the broken tail. The report
        // falls back to an unparsable-body denial because the reference
        // parse cannot complete — but the request is still denied.
        let text = "kind: Deployment\nhostNetwork: true\nmetadata:\n  name: x\n  {broken\n";
        let verdict = set.validate_raw(text);
        assert!(
            !verdict.is_admitted(),
            "early-deny traffic must stay denied: {verdict:?}"
        );
    }

    #[test]
    fn unparsable_bodies_report_position_and_reason() {
        let set = set();
        let RawVerdict::Unparsable { reason, location } = set.validate_raw("a: 1\n   b: 2\n")
        else {
            panic!("expected unparsable");
        };
        assert!(reason.contains("line 2"), "reason was: {reason}");
        assert_eq!(location.unwrap().line, 2);
    }

    #[test]
    fn multi_document_bodies_are_rejected_by_both_paths() {
        let set = set();
        let doc = request("docker.io/bitnami/nginx:1.25", "Always", "3");
        let text = format!("{doc}---\n{doc}");
        assert!(!set.validate_raw(&text).is_admitted());
        assert!(!set.validate_raw_tree(&text).is_admitted());
    }

    #[test]
    fn missing_envelope_fields_are_unparsable() {
        let set = set();
        for text in [
            "",
            "just a scalar\n",
            "- a\n- b\n",
            "replicas: 3\n",
            "kind: Deployment\nmetadata: {}\n",
            "kind: NotAKind\nmetadata:\n  name: x\n",
        ] {
            let stream = set.validate_raw(text);
            let tree = set.validate_raw_tree(text);
            assert!(
                matches!(stream, RawVerdict::Unparsable { .. }),
                "`{text}` should be unparsable, got {stream:?}"
            );
            assert_eq!(
                stream, tree,
                "`{text}`: streaming and reference outcomes must be identical"
            );
        }
    }

    #[test]
    fn kind_discovered_after_other_scalars() {
        let set = set();
        // `apiVersion` precedes `kind`; the pre-kind scalar buffer replays
        // it into the matchers.
        let text = request("docker.io/bitnami/nginx:1.25", "IfNotPresent", "2");
        assert!(text.starts_with("apiVersion"));
        assert_eq!(set.validate_raw(&text), RawVerdict::Admitted);
    }

    #[test]
    fn containers_before_kind_fall_back_to_the_tree_path() {
        let set = set();
        // `metadata` (a container) precedes `kind`: the stream cannot
        // decide and must defer — verdicts still match the tree path.
        let compliant =
            "apiVersion: apps/v1\nmetadata:\n  name: web\nkind: Deployment\nspec:\n  replicas: 3\n";
        assert_eq!(
            set.validate_raw(compliant),
            set.validate_raw_tree(compliant)
        );
        let hostile = "metadata:\n  name: web\nkind: Deployment\nspec:\n  hostNetwork: true\n";
        assert_eq!(set.validate_raw(hostile), set.validate_raw_tree(hostile));
        assert!(!set.validate_raw(hostile).is_admitted());
    }

    #[test]
    fn replayed_prekind_denials_stamp_the_violating_field() {
        let set = set();
        // `hostNetwork` precedes `kind:` — it is buffered and replayed once
        // the policy root is known; the denial location must point at it,
        // not at the `kind:` value that triggered the replay.
        let text = "hostNetwork: true\nkind: Deployment\nmetadata:\n  name: x\n";
        let RawVerdict::Denied { location, .. } = set.validate_raw(text) else {
            panic!("expected denial");
        };
        let location = location.expect("stream-decided denial carries a location");
        assert_eq!(location.line, 1);
        assert!(text[location.offset.unwrap()..].starts_with("hostNetwork"));
    }

    #[test]
    fn stream_denials_follow_reference_precedence() {
        let set = set();
        // Policy violation present but `metadata.name` missing: the
        // reference ranks the envelope defect higher; the stream agrees.
        let text = "kind: Deployment\nhostNetwork: true\n";
        assert_eq!(set.validate_raw(text), set.validate_raw_tree(text));
        assert!(matches!(
            set.validate_raw(text),
            RawVerdict::Unparsable { .. }
        ));
        // A hostile first document followed by a second one: the
        // multi-document defect outranks the policy violations.
        let text = "kind: Deployment\nhostNetwork: true\nmetadata:\n  name: x\n---\nkind: Pod\nmetadata:\n  name: y\n";
        assert_eq!(set.validate_raw(text), set.validate_raw_tree(text));
        assert!(matches!(
            set.validate_raw(text),
            RawVerdict::Unparsable { .. }
        ));
    }

    #[test]
    fn unknown_kinds_deny_with_the_unknown_kind_violation() {
        let set = set();
        let text = "kind: Secret\nmetadata:\n  name: stolen\n";
        let RawVerdict::Denied { violations, .. } = set.validate_raw(text) else {
            panic!("expected denial");
        };
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0].reason, ViolationReason::UnknownKind));
        // The tree path reports the same violations (it never carries a
        // stream location, so compare the violation lists).
        let RawVerdict::Denied {
            violations: tree_violations,
            location: tree_location,
        } = set.validate_raw_tree(text)
        else {
            panic!("expected tree denial");
        };
        assert_eq!(violations, tree_violations);
        assert_eq!(tree_location, None);
    }
}
