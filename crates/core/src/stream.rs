//! Validate-while-parse enforcement: the streaming admission plane.
//!
//! The compiled arena ([`crate::compile`]) removed tree walks from
//! *validation*; this module removes the tree from *parsing*. A raw request
//! body — YAML or JSON, per [`BodyFormat`] — is tokenized once by the
//! pull-based [`kf_yaml::events::Tokenizer`] or
//! [`kf_yaml::json::JsonTokenizer`] (both emit the same event stream), and a
//! small state machine per candidate validator (the `StreamMatcher`)
//! advances arena node ids as events arrive:
//!
//! * the object's `kind:` is discovered during tokenization (no separate
//!   `peek_kind` pre-pass over a parsed tree);
//! * on the accept path **no document tree is ever allocated** — keys and
//!   scalars borrow from the wire buffer and are checked directly against
//!   the compiled nodes;
//! * denials are reported **from matcher state**: each matcher records the
//!   exact violations the compiled tree walk would report (paths from a
//!   shared document-position tracker, reasons from the compiled nodes), so
//!   deny traffic no longer re-parses the payload — the stream keeps
//!   tokenizing to the end of the document (still building no tree) to
//!   collect the complete report and to honor the reference precedence of
//!   parse/multi-document/envelope defects over policy violations;
//! * the rare constructs the stream cannot decide (root-level fields seen
//!   before `kind:` whose values are containers, and constant/enumeration
//!   policies over container values) fall back to the tree path —
//!   [`ValidatorSet::validate_raw_tree_format`], which is also the reference
//!   implementation the parity fuzz tests pin the streaming verdicts to. A
//!   handful of verdict-certain denials whose violation *message* needs a
//!   rendered container (e.g. a mapping where a constant scalar is required)
//!   re-run the reference once for the report only.
//!
//! `validate_raw` / `validate_raw_tree` return byte-identical outcomes —
//! the stream only *adds* the deciding event's source location to
//! stream-decided denials. See `docs/streaming-admission.md`.

use std::borrow::Cow;

use k8s_model::{K8sObject, ResourceKind};
use kf_yaml::events::{Event, Pos, ScalarToken, Tokenizer};
use kf_yaml::json::JsonTokenizer;
use kf_yaml::{BodyFormat, Value};

use crate::compile::{CompiledNode, CompiledValidator};
use crate::schema_gen::looks_like_ip;
use crate::validator::{TypeTag, ValidatorSet, Violation, ViolationReason};

/// Source position attached to raw-body denials: the line (and, when the
/// stream decided, the byte offset) of the violating field or parse error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceLocation {
    /// 1-based line in the request body.
    pub line: usize,
    /// 0-based byte offset in the request body, when known.
    pub offset: Option<usize>,
}

impl From<Pos> for SourceLocation {
    fn from(pos: Pos) -> Self {
        SourceLocation {
            line: pos.line,
            offset: Some(pos.offset),
        }
    }
}

/// The verdict on a raw (wire-bytes) request body.
#[derive(Debug, Clone, PartialEq)]
pub enum RawVerdict {
    /// Some covering validator admits the object.
    Admitted,
    /// Every covering validator rejects the object.
    Denied {
        /// The violations of the closest-matching covering validator
        /// (identical to the tree path's report).
        violations: Vec<Violation>,
        /// Position of the event that decided the denial, when the stream
        /// decided it.
        location: Option<SourceLocation>,
    },
    /// The body is not a single, well-formed, recognizable Kubernetes
    /// object (YAML/JSON error, multi-document payload, missing/unknown
    /// `kind`, missing `metadata.name`).
    Unparsable {
        /// Why the body was rejected before policy evaluation.
        reason: String,
        /// Position of the parse error, when known.
        location: Option<SourceLocation>,
    },
}

impl RawVerdict {
    /// Whether the verdict admits the request.
    pub fn is_admitted(&self) -> bool {
        matches!(self, RawVerdict::Admitted)
    }
}

fn unparsable_error(error: &kf_yaml::Error) -> RawVerdict {
    let location = match error {
        kf_yaml::Error::Parse { line, .. } => Some(SourceLocation {
            line: *line,
            offset: None,
        }),
        _ => None,
    };
    RawVerdict::Unparsable {
        reason: error.to_string(),
        location,
    }
}

/// One tokenizer front end behind a common pull interface; which one runs is
/// the only format-specific decision the streaming plane ever makes.
enum WireTokenizer<'a> {
    Yaml(Tokenizer<'a>),
    Json(JsonTokenizer<'a>),
}

impl<'a> WireTokenizer<'a> {
    /// `format` must already be resolved (callers run [`BodyFormat::resolve`]
    /// once at the entry point; re-detecting here would rescan the leading
    /// whitespace on every pass).
    fn new(text: &'a str, format: BodyFormat) -> Result<Self, kf_yaml::Error> {
        debug_assert!(format != BodyFormat::Auto, "callers resolve Auto");
        match format {
            BodyFormat::Json => Ok(WireTokenizer::Json(JsonTokenizer::new(text))),
            _ => Tokenizer::new(text).map(WireTokenizer::Yaml),
        }
    }

    fn next_event(&mut self) -> Result<Option<Event<'a>>, kf_yaml::Error> {
        match self {
            WireTokenizer::Yaml(t) => t.next_event(),
            WireTokenizer::Json(t) => t.next_event(),
        }
    }

    fn document_count(&self) -> usize {
        match self {
            WireTokenizer::Yaml(t) => t.document_count(),
            WireTokenizer::Json(t) => t.document_count(),
        }
    }
}

impl ValidatorSet {
    /// Validate a raw YAML request body **while parsing it**: the streaming
    /// entry point of the enforcement proxy. Admission allocates no
    /// document tree; denials synthesize the tree path's exact violation
    /// list from matcher state. Shorthand for
    /// [`ValidatorSet::validate_raw_format`] with [`BodyFormat::Yaml`].
    pub fn validate_raw(&self, text: &str) -> RawVerdict {
        self.validate_raw_format(text, BodyFormat::Yaml)
    }

    /// [`ValidatorSet::validate_raw`] with an explicit wire format
    /// ([`BodyFormat::Auto`] detects from the first significant byte). Both
    /// formats drive the same `StreamMatcher`s; only the tokenizer
    /// differs.
    ///
    /// Two-phase: a **die-fast** pass runs first — matchers stop at their
    /// first violation, exactly the cost profile of the compiled boolean
    /// fast path, so accepted traffic pays nothing for reporting. Only when
    /// that pass decides a denial does a **collect** pass re-tokenize the
    /// payload (still building no tree) with matchers recording the full
    /// violation lists the reference would report.
    pub fn validate_raw_format(&self, text: &str, format: BodyFormat) -> RawVerdict {
        let format = format.resolve(text);
        match streaming_verdict(self, text, format, Mode::Fast) {
            StreamFlow::Verdict(verdict) => verdict,
            // Constructs the stream cannot decide: authoritative tree path.
            StreamFlow::TreeFallback => self.validate_raw_tree_format(text, format),
            StreamFlow::Report => match streaming_verdict(self, text, format, Mode::Collect) {
                StreamFlow::Verdict(verdict) => verdict,
                StreamFlow::TreeFallback => self.validate_raw_tree_format(text, format),
                StreamFlow::Report => unreachable!("collect mode produces verdicts"),
            },
        }
    }

    /// The tree-path reference semantics for raw YAML bodies. Shorthand for
    /// [`ValidatorSet::validate_raw_tree_format`] with [`BodyFormat::Yaml`].
    pub fn validate_raw_tree(&self, text: &str) -> RawVerdict {
        self.validate_raw_tree_format(text, BodyFormat::Yaml)
    }

    /// The tree-path reference semantics for raw bodies: parse the full
    /// document, pre-check the object envelope, then validate the tree.
    /// [`ValidatorSet::validate_raw_format`] reaches exactly these verdicts
    /// (adding only the deciding event's location to stream-decided
    /// denials); the parity fuzz tests and the `streaming_admission`
    /// benchmark both run this form.
    pub fn validate_raw_tree_format(&self, text: &str, format: BodyFormat) -> RawVerdict {
        let docs = match format.resolve(text) {
            BodyFormat::Json => match kf_yaml::parse_json(text) {
                Ok(doc) => vec![doc],
                Err(e) => return unparsable_error(&e),
            },
            _ => match kf_yaml::parse_documents(text) {
                Ok(docs) => docs,
                Err(e) => return unparsable_error(&e),
            },
        };
        if docs.len() != 1 {
            return RawVerdict::Unparsable {
                reason: format!("expected a single YAML document, found {}", docs.len()),
                location: None,
            };
        }
        let body = &docs[0];
        let kind = match K8sObject::peek_kind(body) {
            Ok(kind) => kind,
            Err(e) => {
                return RawVerdict::Unparsable {
                    reason: e.to_string(),
                    location: None,
                }
            }
        };
        match self.validate_kind_body(kind, body) {
            Ok(()) => RawVerdict::Admitted,
            Err(violations) => RawVerdict::Denied {
                violations,
                location: None,
            },
        }
    }
}

/// Produce the report for a stream-decided denial whose violation messages
/// need rendered container values: re-run the full reference semantics
/// ([`ValidatorSet::validate_raw_tree_format`]) and stamp the deciding
/// event's position onto policy denials. Only the few denials flagged
/// [`StreamMatcher::report_via_tree`] take this path; everything else is
/// synthesized from matcher state without touching the payload again.
fn deny_report(set: &ValidatorSet, text: &str, format: BodyFormat, pos: Pos) -> RawVerdict {
    match set.validate_raw_tree_format(text, format) {
        // The tree path is authoritative; a disagreement here would be a
        // matcher bug, so trust the tree.
        RawVerdict::Admitted => RawVerdict::Admitted,
        RawVerdict::Denied { violations, .. } => RawVerdict::Denied {
            violations,
            location: Some(pos.into()),
        },
        unparsable => unparsable,
    }
}

/// One segment of the document position shared by all matchers: the event
/// stream is a single walk of the document, so "where are we" is tracked
/// once, not per matcher.
#[derive(Debug)]
enum TrackFrame<'a> {
    /// A mapping; `key` is the entry whose value is currently being read.
    Map { key: Option<Cow<'a, str>> },
    /// A sequence; `index` is the element currently being read.
    Seq { index: usize },
}

/// Tracks the dotted path of the value the next event contributes to,
/// rendered in exactly the tree walker's format (`a.b[2].c`).
#[derive(Debug, Default)]
struct PathTracker<'a> {
    frames: Vec<TrackFrame<'a>>,
}

impl<'a> PathTracker<'a> {
    /// Mirror one event into the tracker, *before* matchers consume it (so
    /// a violation recorded at this event sees the path it belongs to).
    /// Container pushes happen after the matchers ran — see
    /// [`PathTracker::after_container_start`].
    fn before_event(&mut self, event: &Event<'a>) {
        if let Event::Key { name, .. } = event {
            if let Some(TrackFrame::Map { key }) = self.frames.last_mut() {
                *key = Some(name.clone());
            }
        }
    }

    /// Mirror the structural effect of an event after the matchers ran.
    fn after_event(&mut self, event: &Event<'a>) {
        match event {
            Event::MappingStart { .. } => self.frames.push(TrackFrame::Map { key: None }),
            Event::SequenceStart { .. } => self.frames.push(TrackFrame::Seq { index: 0 }),
            Event::Scalar { .. } => self.completed_value(),
            Event::End => {
                self.frames.pop();
                self.completed_value();
            }
            Event::Key { .. } | Event::DocumentEnd => {}
        }
    }

    fn completed_value(&mut self) {
        if let Some(TrackFrame::Seq { index }) = self.frames.last_mut() {
            *index += 1;
        }
    }

    /// Render the current path in the tree walker's notation.
    fn render(&self) -> String {
        let mut out = String::new();
        for frame in &self.frames {
            match frame {
                TrackFrame::Map { key: Some(key) } => {
                    if !out.is_empty() {
                        out.push('.');
                    }
                    out.push_str(key);
                }
                TrackFrame::Map { key: None } => {}
                TrackFrame::Seq { index } => {
                    out.push('[');
                    out.push_str(&index.to_string());
                    out.push(']');
                }
            }
        }
        out
    }
}

/// The per-event path, rendered at most once no matter how many matchers
/// record a violation at it. The fast (verdict-only) pass runs without a
/// tracker — no matcher renders a path there, so none is maintained.
struct PathAtEvent<'p, 'a> {
    tracker: Option<&'p PathTracker<'a>>,
    rendered: Option<String>,
}

impl<'p, 'a> PathAtEvent<'p, 'a> {
    fn new(tracker: Option<&'p PathTracker<'a>>) -> Self {
        PathAtEvent {
            tracker,
            rendered: None,
        }
    }

    fn get(&mut self) -> String {
        self.rendered
            .get_or_insert_with(|| match self.tracker {
                Some(tracker) => tracker.render(),
                // Only Mode::Collect matchers render paths, and the collect
                // pass always runs with a tracker.
                None => String::new(),
            })
            .clone()
    }
}

/// The matcher-set health after one event, folded into the feed loop so the
/// caller never re-iterates the matchers to learn it.
struct DriveOutcome {
    /// Some matcher hit a construct the stream cannot decide.
    needs_tree: bool,
    /// Every matcher has rejected the document.
    all_failed: bool,
}

/// Drive one event through the shared path tracker (when one is maintained
/// — the collect pass only) and every matcher, in the order the path
/// semantics require. Used by both the main tokenizer loop and the
/// pre-`kind:` replay.
fn drive<'a>(
    matchers: &mut [StreamMatcher<'_>],
    mut tracker: Option<&mut PathTracker<'a>>,
    event: &Event<'a>,
) -> DriveOutcome {
    // Fast pass (`tracker` is `None`): matchers only reach verdicts, so the
    // document position bookkeeping is skipped entirely.
    if let Some(tracker) = tracker.as_mut() {
        tracker.before_event(event);
    }
    let mut outcome = DriveOutcome {
        needs_tree: false,
        all_failed: true,
    };
    {
        let mut path = PathAtEvent::new(tracker.as_deref());
        for matcher in matchers.iter_mut() {
            matcher.feed(event, &mut path);
            outcome.needs_tree |= matcher.needs_tree;
            outcome.all_failed &= matcher.failed();
        }
    }
    if let Some(tracker) = tracker {
        tracker.after_event(event);
    }
    outcome
}

/// How the matchers run over the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Stop each matcher at its first violation and record nothing — the
    /// cheapest way to reach the admit/deny verdict. Every request starts
    /// here.
    Fast,
    /// Record every violation with full tree-walk fidelity. Runs only after
    /// the fast pass decided a denial, to synthesize the report without
    /// building a tree.
    Collect,
}

/// The outcome of one streaming pass.
enum StreamFlow {
    /// A final verdict.
    Verdict(RawVerdict),
    /// The stream hit a construct it cannot decide; the caller must fall
    /// back to the tree path.
    TreeFallback,
    /// The denial was decided, but the report was not collected
    /// ([`Mode::Fast`] only): run a [`Mode::Collect`] pass, which re-derives
    /// the deciding position along with the report.
    Report,
}

impl StreamFlow {
    fn verdict(verdict: RawVerdict) -> StreamFlow {
        StreamFlow::Verdict(verdict)
    }
}

/// Run the streaming matchers over the token stream. `format` must already
/// be resolved (not `Auto`).
fn streaming_verdict(set: &ValidatorSet, text: &str, format: BodyFormat, mode: Mode) -> StreamFlow {
    let mut tokenizer = match WireTokenizer::new(text, format) {
        Ok(t) => t,
        Err(e) => return StreamFlow::verdict(unparsable_error(&e)),
    };

    let mut depth = 0usize;
    let mut started = false;
    let mut doc_done = false;
    // Root-level key whose value has not started yet.
    let mut pending_root_key: Option<(Cow<'_, str>, Pos)> = None;
    // Root-level scalar entries seen before `kind:` was discovered; replayed
    // into the matchers once the policy root is known.
    let mut prekind: Vec<(Cow<'_, str>, Pos, ScalarToken<'_>, Pos)> = Vec::new();
    let mut kind: Option<ResourceKind> = None;
    let mut matchers: Vec<StreamMatcher<'_>> = Vec::new();
    // Only the collect pass renders document paths; the fast pass skips the
    // position bookkeeping altogether (it can only ever answer admit/deny).
    let mut tracker = (mode == Mode::Collect).then(PathTracker::default);
    // A known kind no validator covers: the denial is certain, pending the
    // reference's precedence checks at end of stream.
    let mut uncovered_kind: Option<(ResourceKind, Pos)> = None;
    // Position of the event at which every candidate matcher had failed.
    let mut decided_at: Option<Pos> = None;
    // Envelope tracking: `metadata.name` must be a non-empty string.
    let mut metadata_open: Option<usize> = None;
    let mut pending_name = false;
    let mut name_ok = false;

    while !doc_done {
        let event = match tokenizer.next_event() {
            Ok(Some(event)) => event,
            Ok(None) => break,
            Err(e) => return StreamFlow::verdict(unparsable_error(&e)),
        };
        // The event that resolves `kind:` is fed to the matchers by the
        // replay below, not by the regular per-event feed.
        let mut feed_event = kind.is_some();
        match &event {
            Event::MappingStart { .. } | Event::SequenceStart { .. } => {
                if !started {
                    if matches!(event, Event::SequenceStart { .. }) {
                        // Not an object envelope: reference semantics.
                        return StreamFlow::TreeFallback;
                    }
                    started = true;
                } else if depth == 1 {
                    if let Some((key, _)) = pending_root_key.take() {
                        if kind.is_none() {
                            if key == "kind" {
                                // `kind` is not a string: reference semantics.
                                return StreamFlow::TreeFallback;
                            }
                            // A container value before `kind:` is known
                            // cannot be validated in-stream.
                            return StreamFlow::TreeFallback;
                        }
                        if key == "metadata" && matches!(event, Event::MappingStart { .. }) {
                            metadata_open = Some(depth + 1);
                        }
                    }
                } else if metadata_open == Some(depth) && pending_name {
                    pending_name = false; // name is not a string
                }
                depth += 1;
            }
            Event::Key { name, pos } => {
                if !started {
                    return StreamFlow::TreeFallback;
                }
                if depth == 1 {
                    pending_root_key = Some((name.clone(), *pos));
                } else if metadata_open == Some(depth) {
                    pending_name = name == "name";
                }
            }
            Event::Scalar { value, pos } => {
                if !started {
                    // A bare-scalar document: reference semantics.
                    return StreamFlow::TreeFallback;
                }
                if depth == 1 {
                    if let Some((key, key_pos)) = pending_root_key.take() {
                        if key == "kind" && kind.is_none() {
                            let Some(kind_text) = value.as_str() else {
                                return StreamFlow::TreeFallback;
                            };
                            let Some(resolved) = ResourceKind::parse(kind_text) else {
                                return StreamFlow::TreeFallback;
                            };
                            kind = Some(resolved);
                            let route = set.validators_for(resolved);
                            if route.is_empty() {
                                // No validator covers the kind. The denial
                                // itself is certain, but the reference ranks
                                // envelope/multi-document defects above the
                                // UnknownKind violation — keep streaming and
                                // decide at end of document.
                                uncovered_kind = Some((resolved, *pos));
                                feed_event = false;
                            } else {
                                for &index in route {
                                    let compiled = set.validators()[index as usize].compiled();
                                    let root = compiled
                                        .kind_root(resolved)
                                        .expect("routing table lists only covering validators");
                                    matchers.push(StreamMatcher::new(compiled, root, mode));
                                }
                                // Replay the envelope into the fresh
                                // matchers: the root mapping, every buffered
                                // pre-kind scalar entry, then `kind` itself.
                                // The replay checks matcher health after
                                // every event so an early deny is stamped
                                // with the position of the replayed field
                                // that decided it, not the `kind:` value's.
                                let mut replay: Vec<Event<'_>> =
                                    Vec::with_capacity(2 * prekind.len() + 3);
                                replay.push(Event::MappingStart {
                                    pos: Pos::default(),
                                });
                                for (bkey, bkey_pos, bvalue, bvalue_pos) in &prekind {
                                    replay.push(Event::Key {
                                        name: bkey.clone(),
                                        pos: *bkey_pos,
                                    });
                                    replay.push(Event::Scalar {
                                        value: bvalue.clone(),
                                        pos: *bvalue_pos,
                                    });
                                }
                                replay.push(Event::Key {
                                    name: Cow::Borrowed("kind"),
                                    pos: key_pos,
                                });
                                replay.push(Event::Scalar {
                                    value: value.clone(),
                                    pos: *pos,
                                });
                                for replay_event in &replay {
                                    let outcome =
                                        drive(&mut matchers, tracker.as_mut(), replay_event);
                                    if outcome.needs_tree {
                                        return StreamFlow::TreeFallback;
                                    }
                                    if decided_at.is_none() && outcome.all_failed {
                                        if mode == Mode::Fast {
                                            // The verdict is decided; stop
                                            // tokenizing and let the collect
                                            // pass produce the report.
                                            return StreamFlow::Report;
                                        }
                                        decided_at = Some(event_pos(replay_event));
                                    }
                                }
                                feed_event = false;
                            }
                        } else if kind.is_none() {
                            prekind.push((key, key_pos, value.clone(), *pos));
                        }
                    }
                } else if metadata_open == Some(depth) && pending_name {
                    pending_name = false;
                    if let ScalarToken::Str(s) = value {
                        if !s.is_empty() {
                            name_ok = true;
                        }
                    }
                }
            }
            Event::End => {
                depth = depth.saturating_sub(1);
                if let Some(open) = metadata_open {
                    if depth < open {
                        metadata_open = None;
                    }
                }
            }
            Event::DocumentEnd => {
                doc_done = true;
                feed_event = false;
            }
        }
        if feed_event && !matchers.is_empty() {
            let outcome = drive(&mut matchers, tracker.as_mut(), &event);
            if outcome.needs_tree {
                return StreamFlow::TreeFallback;
            }
            if decided_at.is_none() && outcome.all_failed {
                if mode == Mode::Fast {
                    // Every candidate has failed: the denial is decided
                    // here and tokenization stops. The collect pass
                    // re-tokenizes (building no tree) for the report and
                    // for the reference precedence of later parse errors.
                    return StreamFlow::Report;
                }
                decided_at = Some(event_pos(&event));
            }
        }
        if !doc_done
            && matchers.is_empty()
            && uncovered_kind.is_some()
            && name_ok
            && metadata_open.is_none()
        {
            // The candidate set is empty (uncovered kind) and the envelope
            // is already satisfied: the rest of the document can only
            // contribute parse defects or a document count. Bail to a
            // scan-only tokenize loop — no per-event bookkeeping at all.
            loop {
                match tokenizer.next_event() {
                    Ok(Some(Event::DocumentEnd)) => {
                        doc_done = true;
                        break;
                    }
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => return StreamFlow::verdict(unparsable_error(&e)),
                }
            }
        }
    }

    if !started {
        // Empty or comment-only body: reference semantics.
        return StreamFlow::TreeFallback;
    }
    // A request body must be exactly one document, and the reference ranks
    // multi-document (and any later parse) defects above envelope defects
    // and policy violations — `parse_documents` sees the whole stream before
    // `peek_kind` runs. Drain the tokenizer (building no trees) to reproduce
    // its outcome: the earliest parse error anywhere in the stream, else the
    // document count.
    match tokenizer.next_event() {
        Ok(None) => {}
        Ok(Some(_)) => loop {
            match tokenizer.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => {
                    return StreamFlow::verdict(RawVerdict::Unparsable {
                        reason: format!(
                            "expected a single YAML document, found {}",
                            tokenizer.document_count()
                        ),
                        location: None,
                    })
                }
                Err(e) => return StreamFlow::verdict(unparsable_error(&e)),
            }
        },
        Err(e) => return StreamFlow::verdict(unparsable_error(&e)),
    }
    if kind.is_none() || !name_ok {
        // Envelope defect (missing `kind` / `metadata.name`): cold path,
        // defer to the reference for its exact report.
        return StreamFlow::TreeFallback;
    }
    if let Some((kind, pos)) = uncovered_kind {
        // Synthesized without re-parsing: exactly the reference's report
        // for a covered envelope of an uncovered kind.
        return StreamFlow::verdict(RawVerdict::Denied {
            violations: vec![Violation {
                path: kind.as_str().to_owned(),
                reason: ViolationReason::UnknownKind,
            }],
            location: Some(pos.into()),
        });
    }
    let Some(pos) = decided_at else {
        debug_assert!(matchers.iter().any(|m| !m.failed()));
        return StreamFlow::verdict(RawVerdict::Admitted);
    };
    debug_assert_eq!(mode, Mode::Collect, "fast mode returns before this point");
    // Denied: report the closest match (fewest violations, first wins),
    // mirroring `ValidatorSet::validate_kind_body`.
    let winner = matchers
        .iter()
        .reduce(|best, candidate| {
            if candidate.violations.len() < best.violations.len() {
                candidate
            } else {
                best
            }
        })
        .expect("a decided denial has at least one matcher");
    if winner.report_via_tree {
        // The winning report contains a violation whose message renders a
        // container value; only this cold case re-reads the payload.
        return StreamFlow::verdict(deny_report(set, text, format, pos));
    }
    StreamFlow::verdict(RawVerdict::Denied {
        violations: winner.violations.clone(),
        location: Some(pos.into()),
    })
}

fn event_pos(event: &Event<'_>) -> Pos {
    match event {
        Event::MappingStart { pos }
        | Event::SequenceStart { pos }
        | Event::Key { pos, .. }
        | Event::Scalar { pos, .. } => *pos,
        Event::End | Event::DocumentEnd => Pos::default(),
    }
}

/// An open container frame of a [`StreamMatcher`].
#[derive(Debug, Clone, Copy)]
enum MFrame {
    /// Inside a mapping whose compiled entry run is `entries[start..start+len]`.
    Map { entries_start: u32, len: u32 },
    /// Inside a sequence whose elements check against `element`.
    Seq { element: u32 },
    /// Inside a subtree the policy does not descend into (`Any` subtrees,
    /// and the values of fields that already produced their violation).
    Skip,
}

/// Where the next value event lands.
#[derive(Debug)]
enum Target {
    Skip,
    Node(u32),
}

/// A state machine that advances compiled-arena node ids as tokenizer events
/// arrive, recording exactly the violations (paths, reasons, messages) the
/// compiled tree walk
/// ([`CompiledValidator::validate_kind_body`](crate::compile::CompiledValidator::validate_kind_body))
/// would report — without a document tree. A matcher with an empty violation
/// list at end of document admits.
#[derive(Debug)]
pub(crate) struct StreamMatcher<'c> {
    compiled: &'c CompiledValidator,
    mode: Mode,
    stack: Vec<MFrame>,
    /// The node the next value event must satisfy (set by `Key` events and
    /// by the root); `Target::Skip` when the key already violated.
    pending: Option<Target>,
    /// Violations recorded so far ([`Mode::Collect`] only), in document
    /// order (the tree walk's order).
    violations: Vec<Violation>,
    /// [`Mode::Fast`] only: cleared at the first violation, after which the
    /// matcher does no further work.
    alive: bool,
    /// The verdict cannot be decided in-stream (container-valued
    /// constant/enumeration policies): the whole request falls back.
    needs_tree: bool,
    /// The verdict is decided but some violation message requires a rendered
    /// container value; if this matcher's report is the one served, it is
    /// re-derived from the tree.
    report_via_tree: bool,
}

impl<'c> StreamMatcher<'c> {
    fn new(compiled: &'c CompiledValidator, root: u32, mode: Mode) -> Self {
        StreamMatcher {
            compiled,
            mode,
            stack: Vec::with_capacity(16),
            pending: Some(Target::Node(root)),
            violations: Vec::new(),
            alive: true,
            needs_tree: false,
            report_via_tree: false,
        }
    }

    /// Whether this matcher has rejected the document.
    fn failed(&self) -> bool {
        match self.mode {
            Mode::Fast => !self.alive,
            Mode::Collect => !self.violations.is_empty(),
        }
    }

    /// A violation occurred: in fast mode the matcher simply dies (the
    /// reason closure is never evaluated — no strings are built on the
    /// verdict-only pass); in collect mode the violation is recorded with
    /// the tree walk's exact path and message.
    fn violate(
        &mut self,
        path: &mut PathAtEvent<'_, '_>,
        reason: impl FnOnce() -> ViolationReason,
    ) {
        match self.mode {
            Mode::Fast => self.alive = false,
            Mode::Collect => self.violations.push(Violation {
                path: path.get(),
                reason: reason(),
            }),
        }
    }

    fn value_target(&mut self) -> Target {
        if matches!(self.stack.last(), Some(MFrame::Skip)) {
            return Target::Skip;
        }
        if let Some(target) = self.pending.take() {
            return target;
        }
        if let Some(MFrame::Seq { element }) = self.stack.last() {
            return Target::Node(*element);
        }
        // A value event with no expectation cannot occur in a well-formed
        // event stream; defer to the tree rather than guess.
        self.needs_tree = true;
        Target::Skip
    }

    /// A mapping or sequence opens where the current expectation points.
    /// Always pushes exactly one frame, so the stack stays aligned with the
    /// document nesting while violations accumulate.
    fn enter_container(&mut self, is_mapping: bool, path: &mut PathAtEvent<'_, '_>) {
        let container_type = if is_mapping { "map" } else { "seq" };
        match self.value_target() {
            Target::Skip => self.stack.push(MFrame::Skip),
            Target::Node(id) => match self.compiled.node(id) {
                CompiledNode::Map { entries_start, len } if is_mapping => {
                    self.stack.push(MFrame::Map { entries_start, len });
                }
                CompiledNode::Seq { element } if !is_mapping => {
                    self.stack.push(MFrame::Seq { element });
                }
                CompiledNode::Any => self.stack.push(MFrame::Skip),
                CompiledNode::Const { value } => {
                    // A constant policy over a container value needs a
                    // structural comparison the stream cannot perform —
                    // unless the constant is a scalar, in which case any
                    // container trivially mismatches; the violation message
                    // renders the container, so the report (only) defers.
                    if self.compiled.value(value).is_scalar() {
                        self.violate(path, || ViolationReason::ValueNotAllowed {
                            allowed: String::new(),
                            found: String::new(),
                        });
                        self.report_via_tree = true;
                    } else {
                        self.needs_tree = true;
                    }
                    self.stack.push(MFrame::Skip);
                }
                CompiledNode::Enum { start, len } => {
                    if self
                        .compiled
                        .values_slice(start, len)
                        .iter()
                        .all(Value::is_scalar)
                    {
                        self.violate(path, || ViolationReason::ValueNotAllowed {
                            allowed: String::new(),
                            found: String::new(),
                        });
                        self.report_via_tree = true;
                    } else {
                        self.needs_tree = true;
                    }
                    self.stack.push(MFrame::Skip);
                }
                CompiledNode::Pattern { .. } => {
                    self.violate(path, || ViolationReason::ValueNotAllowed {
                        allowed: String::new(),
                        found: String::new(),
                    });
                    self.report_via_tree = true;
                    self.stack.push(MFrame::Skip);
                }
                CompiledNode::Type(tag) => {
                    self.violate(path, || ViolationReason::TypeMismatch {
                        expected: tag.placeholder().to_owned(),
                        found: container_type.to_owned(),
                    });
                    self.stack.push(MFrame::Skip);
                }
                CompiledNode::Map { .. } => {
                    self.violate(path, || ViolationReason::StructureMismatch {
                        expected: "mapping".to_owned(),
                        found: container_type.to_owned(),
                    });
                    self.stack.push(MFrame::Skip);
                }
                CompiledNode::Seq { .. } => {
                    self.violate(path, || ViolationReason::StructureMismatch {
                        expected: "sequence".to_owned(),
                        found: container_type.to_owned(),
                    });
                    self.stack.push(MFrame::Skip);
                }
            },
        }
    }

    fn feed(&mut self, event: &Event<'_>, path: &mut PathAtEvent<'_, '_>) {
        if !self.alive || self.needs_tree {
            return;
        }
        match event {
            Event::MappingStart { .. } => self.enter_container(true, path),
            Event::SequenceStart { .. } => self.enter_container(false, path),
            Event::Key { name, .. } => match self.stack.last() {
                Some(MFrame::Skip) => {}
                Some(MFrame::Map { entries_start, len }) => {
                    let entries = self.compiled.entries(*entries_start, *len);
                    match self.compiled.lookup(entries, name.as_ref()) {
                        Some(entry) => self.pending = Some(Target::Node(entry.child)),
                        None => {
                            // Unknown field: the tree walk reports it and
                            // does not descend into the value.
                            self.violate(path, || ViolationReason::UnknownField);
                            self.pending = Some(Target::Skip);
                        }
                    }
                }
                _ => self.needs_tree = true,
            },
            Event::Scalar { value, .. } => match self.value_target() {
                Target::Skip => {}
                Target::Node(id) => self.check_scalar(id, value, path),
            },
            Event::End => {
                self.stack.pop();
            }
            Event::DocumentEnd => {}
        }
    }

    /// Check a scalar token against a compiled node, recording the tree
    /// walk's exact violation on mismatch.
    fn check_scalar(&mut self, id: u32, token: &ScalarToken<'_>, path: &mut PathAtEvent<'_, '_>) {
        match self.compiled.node(id) {
            CompiledNode::Any => {}
            CompiledNode::Type(tag) => {
                if !token_matches_tag(tag, token) {
                    self.violate(path, || ViolationReason::TypeMismatch {
                        expected: tag.placeholder().to_owned(),
                        found: token.type_name().to_owned(),
                    });
                }
            }
            CompiledNode::Const { value } => {
                let expected = self.compiled.value(value);
                if !token_loosely_equals(token, expected) {
                    if expected.is_scalar() {
                        self.violate(path, || ViolationReason::ValueNotAllowed {
                            allowed: expected.scalar_to_string(),
                            found: token.render(),
                        });
                    } else {
                        // The `allowed` message renders a container
                        // constant; the verdict is certain, the report
                        // defers.
                        self.violate(path, || ViolationReason::ValueNotAllowed {
                            allowed: String::new(),
                            found: token.render(),
                        });
                        self.report_via_tree = true;
                    }
                }
            }
            CompiledNode::Enum { start, len } => {
                let options = self.compiled.values_slice(start, len);
                if !options
                    .iter()
                    .any(|option| token_loosely_equals(token, option))
                {
                    if options.iter().all(Value::is_scalar) {
                        self.violate(path, || ViolationReason::ValueNotAllowed {
                            allowed: options
                                .iter()
                                .map(Value::scalar_to_string)
                                .collect::<Vec<_>>()
                                .join(", "),
                            found: token.render(),
                        });
                    } else {
                        self.violate(path, || ViolationReason::ValueNotAllowed {
                            allowed: String::new(),
                            found: token.render(),
                        });
                        self.report_via_tree = true;
                    }
                }
            }
            CompiledNode::Pattern { pattern } => {
                let compiled_pattern = self.compiled.pattern(pattern);
                let ok = token
                    .as_str()
                    .map(|text| compiled_pattern.matches(text))
                    .unwrap_or(false);
                if !ok {
                    self.violate(path, || ViolationReason::ValueNotAllowed {
                        allowed: compiled_pattern.source().to_owned(),
                        found: token.render(),
                    });
                }
            }
            CompiledNode::Map { .. } => {
                self.violate(path, || ViolationReason::StructureMismatch {
                    expected: "mapping".to_owned(),
                    found: token.type_name().to_owned(),
                });
            }
            CompiledNode::Seq { .. } => {
                self.violate(path, || ViolationReason::StructureMismatch {
                    expected: "sequence".to_owned(),
                    found: token.type_name().to_owned(),
                });
            }
        }
    }
}

/// [`TypeTag::matches`] over a scalar token instead of a tree node.
fn token_matches_tag(tag: TypeTag, token: &ScalarToken<'_>) -> bool {
    match tag {
        TypeTag::String => matches!(token, ScalarToken::Str(_)),
        TypeTag::Int => {
            matches!(token, ScalarToken::Int(_))
                || token
                    .as_str()
                    .map(|s| s.parse::<i64>().is_ok())
                    .unwrap_or(false)
        }
        TypeTag::Float => {
            matches!(token, ScalarToken::Float(_) | ScalarToken::Int(_))
                || token
                    .as_str()
                    .map(|s| s.parse::<f64>().is_ok())
                    .unwrap_or(false)
        }
        TypeTag::Bool => matches!(token, ScalarToken::Bool(_)),
        TypeTag::Ip => token.as_str().map(looks_like_ip).unwrap_or(false),
    }
}

/// [`Value::loosely_equals`] between a scalar token and a (scalar) tree
/// node: integer/float representations of the same number are equal.
fn token_loosely_equals(token: &ScalarToken<'_>, value: &Value) -> bool {
    match (token, value) {
        (ScalarToken::Int(a), Value::Float(b)) => (*a as f64 - *b).abs() < f64::EPSILON,
        (ScalarToken::Float(a), Value::Int(b)) => (*b as f64 - *a).abs() < f64::EPSILON,
        (ScalarToken::Null, Value::Null) => true,
        (ScalarToken::Bool(a), Value::Bool(b)) => a == b,
        (ScalarToken::Int(a), Value::Int(b)) => a == b,
        (ScalarToken::Float(a), Value::Float(b)) => a == b,
        (ScalarToken::Str(a), Value::Str(b)) => a.as_ref() == b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::{Validator, ViolationReason};

    fn validator() -> Validator {
        let manifests = vec![
            kf_yaml::parse(
                r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:string
          imagePullPolicy: IfNotPresent
"#,
            )
            .unwrap(),
            kf_yaml::parse(
                r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:string
          imagePullPolicy: Always
"#,
            )
            .unwrap(),
        ];
        Validator::from_manifests("demo", &manifests).unwrap()
    }

    fn set() -> ValidatorSet {
        ValidatorSet::single(validator())
    }

    fn request(image: &str, policy: &str, replicas: &str) -> String {
        format!(
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: {replicas}
  template:
    spec:
      containers:
        - name: nginx
          image: {image}
          imagePullPolicy: {policy}
"#
        )
    }

    /// The same request as wire JSON.
    fn request_json(image: &str, policy: &str, replicas: &str) -> String {
        kf_yaml::to_json(&kf_yaml::parse(&request(image, policy, replicas)).unwrap())
    }

    #[test]
    fn streaming_admits_compliant_bodies_and_matches_tree() {
        let set = set();
        let text = request("docker.io/bitnami/nginx:1.25", "Always", "3");
        assert_eq!(set.validate_raw(&text), RawVerdict::Admitted);
        assert_eq!(set.validate_raw_tree(&text), RawVerdict::Admitted);
    }

    #[test]
    fn streaming_denies_with_the_tree_report_and_a_location() {
        let set = set();
        let text = request("evil.example/pwn:latest", "Always", "3");
        let RawVerdict::Denied {
            violations,
            location,
        } = set.validate_raw(&text)
        else {
            panic!("expected denial");
        };
        let RawVerdict::Denied {
            violations: tree_violations,
            ..
        } = set.validate_raw_tree(&text)
        else {
            panic!("expected tree denial");
        };
        assert_eq!(violations, tree_violations);
        let location = location.expect("stream-decided denial carries a location");
        // The violating field (`image:`) sits on line 11 of the body.
        assert_eq!(location.line, 11);
        let offset = location.offset.expect("stream denial has a byte offset");
        assert!(text[offset..].starts_with("evil.example/pwn:latest"));
    }

    #[test]
    fn json_bodies_stream_to_the_same_verdicts() {
        let set = set();
        let ok = request_json("docker.io/bitnami/nginx:1.25", "Always", "3");
        assert_eq!(
            set.validate_raw_format(&ok, BodyFormat::Json),
            RawVerdict::Admitted
        );
        assert_eq!(
            set.validate_raw_format(&ok, BodyFormat::Auto),
            RawVerdict::Admitted,
            "auto-detection must route `{{`-rooted bodies to the JSON front end"
        );
        let bad = request_json("evil.example/pwn:latest", "Always", "3");
        let RawVerdict::Denied {
            violations,
            location,
        } = set.validate_raw_format(&bad, BodyFormat::Json)
        else {
            panic!("expected denial");
        };
        // The violation list is byte-identical to the YAML stream's and to
        // the compiled tree's; only the source location is format-specific.
        let yaml_bad = request("evil.example/pwn:latest", "Always", "3");
        let RawVerdict::Denied {
            violations: yaml_violations,
            ..
        } = set.validate_raw(&yaml_bad)
        else {
            panic!("expected YAML denial");
        };
        assert_eq!(violations, yaml_violations);
        let RawVerdict::Denied {
            violations: tree_violations,
            ..
        } = set.validate_raw_tree_format(&bad, BodyFormat::Json)
        else {
            panic!("expected JSON tree denial");
        };
        assert_eq!(violations, tree_violations);
        let offset = location.unwrap().offset.unwrap();
        assert!(bad[offset..].starts_with("\"evil.example/pwn:latest\""));
    }

    #[test]
    fn stream_denials_synthesize_single_violation_reports() {
        // The collect pass must produce the exact single-violation report —
        // path in the tree walker's notation included — from matcher state.
        // (That no document tree is parsed on this path is a property of
        // the code shape, measured by the deny-early rows of the
        // `streaming_admission` bench rather than asserted here.)
        let set = set();
        let text = request("evil.example/pwn:latest", "Always", "3");
        let RawVerdict::Denied { violations, .. } = set.validate_raw(&text) else {
            panic!("expected denial");
        };
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].path, "spec.template.spec.containers[0].image");
    }

    #[test]
    fn multi_violation_reports_are_synthesized_in_document_order() {
        let set = set();
        // Three violations: bad image, unknown field, bad pull policy.
        let text = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: 3
  template:
    spec:
      hostNetwork: true
      containers:
        - name: nginx
          image: evil.example/pwn:latest
          imagePullPolicy: Never
"#;
        let stream = set.validate_raw(text);
        let tree = set.validate_raw_tree(text);
        let RawVerdict::Denied { violations, .. } = &stream else {
            panic!("expected denial");
        };
        assert_eq!(violations.len(), 3);
        let RawVerdict::Denied {
            violations: tree_violations,
            ..
        } = &tree
        else {
            panic!("expected tree denial");
        };
        assert_eq!(violations, tree_violations);
    }

    #[test]
    fn early_deny_stops_before_later_syntax_errors() {
        let set = set();
        // The violation (line 2) precedes a syntax error (line 5): the
        // denial verdict is certain, but the reference ranks the parse
        // defect higher — the stream keeps draining and reports it, and the
        // request stays denied either way.
        let text = "kind: Deployment\nhostNetwork: true\nmetadata:\n  name: x\n  {broken\n";
        let verdict = set.validate_raw(text);
        assert!(
            !verdict.is_admitted(),
            "early-deny traffic must stay denied: {verdict:?}"
        );
    }

    #[test]
    fn unparsable_bodies_report_position_and_reason() {
        let set = set();
        let RawVerdict::Unparsable { reason, location } = set.validate_raw("a: 1\n   b: 2\n")
        else {
            panic!("expected unparsable");
        };
        assert!(reason.contains("line 2"), "reason was: {reason}");
        assert_eq!(location.unwrap().line, 2);
    }

    #[test]
    fn unparsable_json_bodies_report_position_and_reason() {
        let set = set();
        let RawVerdict::Unparsable { reason, location } =
            set.validate_raw_format("{\"kind\": \"Deployment\",\n  broken}", BodyFormat::Json)
        else {
            panic!("expected unparsable");
        };
        assert!(reason.contains("line 2"), "reason was: {reason}");
        assert_eq!(location.unwrap().line, 2);
        // Duplicate keys are rejected, same as the YAML front end.
        let dup = "{\"kind\": \"Deployment\", \"kind\": \"Pod\"}";
        let stream = set.validate_raw_format(dup, BodyFormat::Json);
        assert!(matches!(stream, RawVerdict::Unparsable { .. }));
        assert_eq!(stream, set.validate_raw_tree_format(dup, BodyFormat::Json));
    }

    #[test]
    fn multi_document_bodies_are_rejected_by_both_paths() {
        let set = set();
        let doc = request("docker.io/bitnami/nginx:1.25", "Always", "3");
        let text = format!("{doc}---\n{doc}");
        assert!(!set.validate_raw(&text).is_admitted());
        assert!(!set.validate_raw_tree(&text).is_admitted());
        // The JSON analogue of a multi-document body is trailing content.
        let json = request_json("docker.io/bitnami/nginx:1.25", "Always", "3");
        let trailing = format!("{json}{json}");
        let stream = set.validate_raw_format(&trailing, BodyFormat::Json);
        assert!(matches!(stream, RawVerdict::Unparsable { .. }));
        assert_eq!(
            stream,
            set.validate_raw_tree_format(&trailing, BodyFormat::Json)
        );
    }

    #[test]
    fn missing_envelope_fields_are_unparsable() {
        let set = set();
        for text in [
            "",
            "just a scalar\n",
            "- a\n- b\n",
            "replicas: 3\n",
            "kind: Deployment\nmetadata: {}\n",
            "kind: NotAKind\nmetadata:\n  name: x\n",
        ] {
            let stream = set.validate_raw(text);
            let tree = set.validate_raw_tree(text);
            assert!(
                matches!(stream, RawVerdict::Unparsable { .. }),
                "`{text}` should be unparsable, got {stream:?}"
            );
            assert_eq!(
                stream, tree,
                "`{text}`: streaming and reference outcomes must be identical"
            );
        }
        // And the JSON equivalents of the envelope defects.
        for text in [
            "",
            "\"just a scalar\"",
            "[1, 2]",
            "{\"replicas\": 3}",
            "{\"kind\": \"Deployment\", \"metadata\": {}}",
            "{\"kind\": \"NotAKind\", \"metadata\": {\"name\": \"x\"}}",
        ] {
            let stream = set.validate_raw_format(text, BodyFormat::Json);
            let tree = set.validate_raw_tree_format(text, BodyFormat::Json);
            assert!(
                matches!(stream, RawVerdict::Unparsable { .. }),
                "`{text}` should be unparsable, got {stream:?}"
            );
            assert_eq!(
                stream, tree,
                "`{text}`: streaming and reference outcomes must be identical"
            );
        }
    }

    #[test]
    fn kind_discovered_after_other_scalars() {
        let set = set();
        // `apiVersion` precedes `kind`; the pre-kind scalar buffer replays
        // it into the matchers.
        let text = request("docker.io/bitnami/nginx:1.25", "IfNotPresent", "2");
        assert!(text.starts_with("apiVersion"));
        assert_eq!(set.validate_raw(&text), RawVerdict::Admitted);
    }

    #[test]
    fn containers_before_kind_fall_back_to_the_tree_path() {
        let set = set();
        // `metadata` (a container) precedes `kind`: the stream cannot
        // decide and must defer — verdicts still match the tree path.
        let compliant =
            "apiVersion: apps/v1\nmetadata:\n  name: web\nkind: Deployment\nspec:\n  replicas: 3\n";
        assert_eq!(
            set.validate_raw(compliant),
            set.validate_raw_tree(compliant)
        );
        let hostile = "metadata:\n  name: web\nkind: Deployment\nspec:\n  hostNetwork: true\n";
        assert_eq!(set.validate_raw(hostile), set.validate_raw_tree(hostile));
        assert!(!set.validate_raw(hostile).is_admitted());
    }

    #[test]
    fn replayed_prekind_denials_stamp_the_violating_field() {
        let set = set();
        // `hostNetwork` precedes `kind:` — it is buffered and replayed once
        // the policy root is known; the denial location must point at it,
        // not at the `kind:` value that triggered the replay.
        let text = "hostNetwork: true\nkind: Deployment\nmetadata:\n  name: x\n";
        let RawVerdict::Denied { location, .. } = set.validate_raw(text) else {
            panic!("expected denial");
        };
        let location = location.expect("stream-decided denial carries a location");
        assert_eq!(location.line, 1);
        assert!(text[location.offset.unwrap()..].starts_with("hostNetwork"));
    }

    #[test]
    fn stream_denials_follow_reference_precedence() {
        let set = set();
        // Policy violation present but `metadata.name` missing: the
        // reference ranks the envelope defect higher; the stream agrees.
        let text = "kind: Deployment\nhostNetwork: true\n";
        assert_eq!(set.validate_raw(text), set.validate_raw_tree(text));
        assert!(matches!(
            set.validate_raw(text),
            RawVerdict::Unparsable { .. }
        ));
        // A hostile first document followed by a second one: the
        // multi-document defect outranks the policy violations.
        let text = "kind: Deployment\nhostNetwork: true\nmetadata:\n  name: x\n---\nkind: Pod\nmetadata:\n  name: y\n";
        assert_eq!(set.validate_raw(text), set.validate_raw_tree(text));
        assert!(matches!(
            set.validate_raw(text),
            RawVerdict::Unparsable { .. }
        ));
    }

    #[test]
    fn unknown_kinds_deny_with_the_unknown_kind_violation() {
        let set = set();
        let text = "kind: Secret\nmetadata:\n  name: stolen\n";
        let RawVerdict::Denied { violations, .. } = set.validate_raw(text) else {
            panic!("expected denial");
        };
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0].reason, ViolationReason::UnknownKind));
        // The tree path reports the same violations (it never carries a
        // stream location, so compare the violation lists).
        let RawVerdict::Denied {
            violations: tree_violations,
            location: tree_location,
        } = set.validate_raw_tree(text)
        else {
            panic!("expected tree denial");
        };
        assert_eq!(violations, tree_violations);
        assert_eq!(tree_location, None);
        // The JSON form reaches the same violations.
        let json = "{\"kind\": \"Secret\", \"metadata\": {\"name\": \"stolen\"}}";
        let RawVerdict::Denied {
            violations: json_violations,
            ..
        } = set.validate_raw_format(json, BodyFormat::Json)
        else {
            panic!("expected JSON denial");
        };
        assert_eq!(violations, json_violations);
    }
}
