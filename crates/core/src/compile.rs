//! The compiled admission plane: an offline lowering of [`PolicyNode`] trees
//! into a flat, cache-friendly arena that the enforcement hot path evaluates
//! without pointer chasing, map walks or pattern re-parsing.
//!
//! The tree representation ([`PolicyNode`]) remains the *authoring* form —
//! it is what manifest consolidation, merging and security locks operate on.
//! Before enforcement, [`compile`] lowers the per-kind trees of a
//! [`Validator`](crate::Validator) into one [`CompiledValidator`]:
//!
//! * every node becomes one entry of a flat `Vec<CompiledNode>` addressed by
//!   `u32` index (no `Box`/`BTreeMap` indirection on the request path);
//! * mapping keys are interned into a string table and each map's entries are
//!   stored as one contiguous, key-sorted slice, so member lookup is a binary
//!   search over adjacent memory;
//! * string patterns are pre-split into their literal/wildcard pieces once,
//!   instead of on every request;
//! * the per-kind policy roots live in a dense table indexed by
//!   [`ResourceKind::index`], making kind dispatch a single array load.
//!
//! See `docs/compiled-layout.md` for the memory-layout invariants.

use std::collections::HashMap;

use k8s_model::{K8sObject, ResourceKind};
use kf_yaml::{binary, Value};

use crate::validator::{
    pattern_pieces, pieces_match, PatternPiece, PolicyNode, TypeTag, Violation, ViolationReason,
};

/// Sentinel for "this kind has no policy" in the kind-root table.
const NO_ROOT: u32 = u32::MAX;

/// One node of the compiled policy arena. All cross-references are `u32`
/// indices into the side tables of the owning [`CompiledValidator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledNode {
    /// Anything is allowed.
    Any,
    /// The value must match the type tag.
    Type(TypeTag),
    /// The value must loosely equal `values[value]`.
    Const {
        /// Index into the value table.
        value: u32,
    },
    /// The value must loosely equal one of `values[start..start + len]`.
    Enum {
        /// First option in the value table.
        start: u32,
        /// Number of options.
        len: u32,
    },
    /// The value must be a string matching `patterns[pattern]`.
    Pattern {
        /// Index into the pattern table.
        pattern: u32,
    },
    /// The value must be a mapping whose keys all appear among
    /// `map_entries[entries_start..entries_start + len]` (sorted by key).
    Map {
        /// First entry of this map's contiguous, key-sorted run.
        entries_start: u32,
        /// Number of entries.
        len: u32,
    },
    /// The value must be a sequence; every element checks against
    /// `nodes[element]`.
    Seq {
        /// Element policy node.
        element: u32,
    },
}

/// One `key → child` edge of a compiled map node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapEntry {
    /// Interned key (index into the string table).
    pub key: u32,
    /// Child node index.
    pub child: u32,
}

/// A pattern whose literal/wildcard pieces were split at compile time.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPattern {
    /// The original pattern text (used in violation messages).
    source: String,
    /// Pre-split pieces.
    pieces: Vec<PatternPiece>,
}

impl CompiledPattern {
    fn new(source: &str) -> Self {
        CompiledPattern {
            source: source.to_owned(),
            // A Pattern node is only ever constructed from text that splits
            // into pieces; fall back to a pure-literal piece list otherwise.
            pieces: pattern_pieces(source)
                .unwrap_or_else(|| vec![PatternPiece::Literal(source.to_owned())]),
        }
    }

    /// Whether a concrete string matches the pattern.
    pub fn matches(&self, text: &str) -> bool {
        pieces_match(&self.pieces, text)
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }
}

/// A workload validator lowered into flat arenas; the enforcement hot path
/// runs entirely on this form.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledValidator {
    /// The node arena. Node 0 (when present) is the root of the first
    /// compiled kind; roots are addressed through `kind_roots`.
    nodes: Vec<CompiledNode>,
    /// Contiguous, per-map key-sorted entry runs.
    map_entries: Vec<MapEntry>,
    /// Interned key strings (deduplicated across the whole validator).
    strings: Vec<String>,
    /// Constant/enumeration option values.
    values: Vec<Value>,
    /// Pre-split string patterns.
    patterns: Vec<CompiledPattern>,
    /// Per-kind policy roots, indexed by [`ResourceKind::index`];
    /// `u32::MAX` marks kinds the workload never uses.
    kind_roots: [u32; ResourceKind::COUNT],
}

impl Default for CompiledValidator {
    /// An empty validator covering no kinds. Hand-written rather than
    /// derived: the derive would zero-fill `kind_roots`, and 0 is a valid
    /// node index, not the `NO_ROOT` sentinel.
    fn default() -> Self {
        CompiledValidator {
            nodes: Vec::new(),
            map_entries: Vec::new(),
            strings: Vec::new(),
            values: Vec::new(),
            patterns: Vec::new(),
            kind_roots: [NO_ROOT; ResourceKind::COUNT],
        }
    }
}

impl CompiledValidator {
    /// Whether the validator has a policy for a kind (O(1)).
    pub fn covers(&self, kind: ResourceKind) -> bool {
        self.kind_roots[kind.index()] != NO_ROOT
    }

    /// The kinds covered by this validator.
    pub fn kinds(&self) -> Vec<ResourceKind> {
        ResourceKind::ALL
            .into_iter()
            .filter(|k| self.covers(*k))
            .collect()
    }

    /// Number of arena nodes (diagnostics; see `docs/compiled-layout.md`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of interned key strings.
    pub fn interned_strings(&self) -> usize {
        self.strings.len()
    }

    /// Whether the object complies with the policy. This is the boolean fast
    /// path: it short-circuits on the first violation and allocates nothing.
    pub fn allows(&self, object: &K8sObject) -> bool {
        self.allows_kind_body(object.kind(), object.body())
    }

    /// [`CompiledValidator::allows`] over a borrowed body — the proxy's
    /// zero-copy entry point (no [`K8sObject`] is materialized on the wire
    /// path).
    pub fn allows_kind_body(&self, kind: ResourceKind, body: &Value) -> bool {
        let root = self.kind_roots[kind.index()];
        if root == NO_ROOT {
            return false;
        }
        self.complies(root, body)
    }

    /// Validate an object, producing the same violations (paths, reasons,
    /// messages) as the tree-walking
    /// [`Validator::validate_tree`](crate::Validator::validate_tree).
    pub fn validate(&self, object: &K8sObject) -> Vec<Violation> {
        self.validate_kind_body(object.kind(), object.body())
    }

    /// [`CompiledValidator::validate`] over a borrowed body.
    pub fn validate_kind_body(&self, kind: ResourceKind, body: &Value) -> Vec<Violation> {
        let root = self.kind_roots[kind.index()];
        if root == NO_ROOT {
            return vec![Violation {
                path: kind.as_str().to_owned(),
                reason: ViolationReason::UnknownKind,
            }];
        }
        let mut violations = Vec::new();
        self.validate_into(root, body, "", &mut violations);
        violations
    }

    pub(crate) fn entries(&self, start: u32, len: u32) -> &[MapEntry] {
        &self.map_entries[start as usize..(start + len) as usize]
    }

    pub(crate) fn lookup<'a>(&self, entries: &'a [MapEntry], key: &str) -> Option<&'a MapEntry> {
        entries
            .binary_search_by(|entry| self.strings[entry.key as usize].as_str().cmp(key))
            .ok()
            .map(|i| &entries[i])
    }

    /// The arena root for a kind, if the validator covers it. Used by the
    /// streaming matcher (see [`crate::stream`]).
    pub(crate) fn kind_root(&self, kind: ResourceKind) -> Option<u32> {
        let root = self.kind_roots[kind.index()];
        (root != NO_ROOT).then_some(root)
    }

    /// The arena node at `index`.
    pub(crate) fn node(&self, index: u32) -> CompiledNode {
        self.nodes[index as usize]
    }

    /// The constant/enumeration value at `index`.
    pub(crate) fn value(&self, index: u32) -> &Value {
        &self.values[index as usize]
    }

    /// The contiguous enumeration options `[start, start + len)`.
    pub(crate) fn values_slice(&self, start: u32, len: u32) -> &[Value] {
        &self.values[start as usize..(start + len) as usize]
    }

    /// The pre-split pattern at `index`.
    pub(crate) fn pattern(&self, index: u32) -> &CompiledPattern {
        &self.patterns[index as usize]
    }

    fn complies(&self, index: u32, value: &Value) -> bool {
        match self.nodes[index as usize] {
            CompiledNode::Any => true,
            CompiledNode::Type(tag) => tag.matches(value),
            CompiledNode::Const { value: id } => value.loosely_equals(&self.values[id as usize]),
            CompiledNode::Enum { start, len } => self.values
                [start as usize..(start + len) as usize]
                .iter()
                .any(|option| value.loosely_equals(option)),
            CompiledNode::Pattern { pattern } => value
                .as_str()
                .map(|text| self.patterns[pattern as usize].matches(text))
                .unwrap_or(false),
            CompiledNode::Map { entries_start, len } => match value {
                Value::Map(map) => {
                    let entries = self.entries(entries_start, len);
                    map.iter().all(|(key, child_value)| {
                        self.lookup(entries, key)
                            .map(|entry| self.complies(entry.child, child_value))
                            .unwrap_or(false)
                    })
                }
                _ => false,
            },
            CompiledNode::Seq { element } => match value {
                Value::Seq(items) => items.iter().all(|item| self.complies(element, item)),
                _ => false,
            },
        }
    }

    fn validate_into(
        &self,
        index: u32,
        value: &Value,
        path: &str,
        violations: &mut Vec<Violation>,
    ) {
        match self.nodes[index as usize] {
            CompiledNode::Any => {}
            CompiledNode::Type(tag) => {
                if !tag.matches(value) {
                    violations.push(Violation {
                        path: path.to_owned(),
                        reason: ViolationReason::TypeMismatch {
                            expected: tag.placeholder().to_owned(),
                            found: value.type_name().to_owned(),
                        },
                    });
                }
            }
            CompiledNode::Const { value: id } => {
                let expected = &self.values[id as usize];
                if !value.loosely_equals(expected) {
                    violations.push(Violation {
                        path: path.to_owned(),
                        reason: ViolationReason::ValueNotAllowed {
                            allowed: expected.scalar_to_string(),
                            found: value.scalar_to_string(),
                        },
                    });
                }
            }
            CompiledNode::Enum { start, len } => {
                let options = &self.values[start as usize..(start + len) as usize];
                if !options.iter().any(|option| value.loosely_equals(option)) {
                    violations.push(Violation {
                        path: path.to_owned(),
                        reason: ViolationReason::ValueNotAllowed {
                            allowed: options
                                .iter()
                                .map(Value::scalar_to_string)
                                .collect::<Vec<_>>()
                                .join(", "),
                            found: value.scalar_to_string(),
                        },
                    });
                }
            }
            CompiledNode::Pattern { pattern } => {
                let pattern = &self.patterns[pattern as usize];
                let ok = value
                    .as_str()
                    .map(|text| pattern.matches(text))
                    .unwrap_or(false);
                if !ok {
                    violations.push(Violation {
                        path: path.to_owned(),
                        reason: ViolationReason::ValueNotAllowed {
                            allowed: pattern.source().to_owned(),
                            found: value.scalar_to_string(),
                        },
                    });
                }
            }
            CompiledNode::Map { entries_start, len } => match value {
                Value::Map(map) => {
                    let entries = self.entries(entries_start, len);
                    for (key, child_value) in map.iter() {
                        let child_path = if path.is_empty() {
                            key.to_owned()
                        } else {
                            format!("{path}.{key}")
                        };
                        match self.lookup(entries, key) {
                            Some(entry) => self.validate_into(
                                entry.child,
                                child_value,
                                &child_path,
                                violations,
                            ),
                            None => violations.push(Violation {
                                path: child_path,
                                reason: ViolationReason::UnknownField,
                            }),
                        }
                    }
                }
                other => violations.push(Violation {
                    path: path.to_owned(),
                    reason: ViolationReason::StructureMismatch {
                        expected: "mapping".to_owned(),
                        found: other.type_name().to_owned(),
                    },
                }),
            },
            CompiledNode::Seq { element } => match value {
                Value::Seq(items) => {
                    for (i, item) in items.iter().enumerate() {
                        self.validate_into(element, item, &format!("{path}[{i}]"), violations);
                    }
                }
                other => violations.push(Violation {
                    path: path.to_owned(),
                    reason: ViolationReason::StructureMismatch {
                        expected: "sequence".to_owned(),
                        found: other.type_name().to_owned(),
                    },
                }),
            },
        }
    }
}

/// Arena builder used by [`compile`].
#[derive(Default)]
struct Builder {
    nodes: Vec<CompiledNode>,
    map_entries: Vec<MapEntry>,
    strings: Vec<String>,
    string_ids: HashMap<String, u32>,
    values: Vec<Value>,
    patterns: Vec<CompiledPattern>,
}

impl Builder {
    fn intern(&mut self, text: &str) -> u32 {
        if let Some(&id) = self.string_ids.get(text) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(text.to_owned());
        self.string_ids.insert(text.to_owned(), id);
        id
    }

    fn push(&mut self, node: CompiledNode) -> u32 {
        let index = self.nodes.len() as u32;
        self.nodes.push(node);
        index
    }

    fn lower(&mut self, node: &PolicyNode) -> u32 {
        match node {
            PolicyNode::Any => self.push(CompiledNode::Any),
            PolicyNode::Type(tag) => self.push(CompiledNode::Type(*tag)),
            PolicyNode::Const(value) => {
                let id = self.values.len() as u32;
                self.values.push(value.clone());
                self.push(CompiledNode::Const { value: id })
            }
            PolicyNode::Enum(options) => {
                let start = self.values.len() as u32;
                self.values.extend(options.iter().cloned());
                self.push(CompiledNode::Enum {
                    start,
                    len: options.len() as u32,
                })
            }
            PolicyNode::Pattern(pattern) => {
                let id = self.patterns.len() as u32;
                self.patterns.push(CompiledPattern::new(pattern));
                self.push(CompiledNode::Pattern { pattern: id })
            }
            PolicyNode::Seq(element) => {
                let element = self.lower(element);
                self.push(CompiledNode::Seq { element })
            }
            PolicyNode::Map(children) => {
                // Lower the children first (their own map runs are emitted
                // during recursion), then claim one contiguous run for this
                // map. BTreeMap iteration is already key-sorted, which is the
                // order binary search expects.
                let lowered: Vec<MapEntry> = children
                    .iter()
                    .map(|(key, child)| MapEntry {
                        key: self.intern(key),
                        child: self.lower(child),
                    })
                    .collect();
                let entries_start = self.map_entries.len() as u32;
                let len = lowered.len() as u32;
                self.map_entries.extend(lowered);
                self.push(CompiledNode::Map { entries_start, len })
            }
        }
    }
}

/// Lower per-kind policy trees into one flat [`CompiledValidator`].
pub fn compile<'a, I>(kinds: I) -> CompiledValidator
where
    I: IntoIterator<Item = (ResourceKind, &'a PolicyNode)>,
{
    let mut builder = Builder::default();
    let mut kind_roots = [NO_ROOT; ResourceKind::COUNT];
    for (kind, tree) in kinds {
        kind_roots[kind.index()] = builder.lower(tree);
    }
    CompiledValidator {
        nodes: builder.nodes,
        map_entries: builder.map_entries,
        strings: builder.strings,
        values: builder.values,
        patterns: builder.patterns,
        kind_roots,
    }
}

/// Why a serialized arena failed to decode. Wraps the low-level binary
/// decoding errors and adds arena-level corruption (dangling indices,
/// unknown node tags) detected by [`CompiledValidator::from_bytes`].
#[derive(Debug)]
pub enum ArenaDecodeError {
    /// The byte stream itself was malformed (truncation, bad tag, bad UTF-8).
    Binary(binary::BinaryError),
    /// The stream decoded, but the arena's cross-references are inconsistent.
    Corrupt(String),
}

impl std::fmt::Display for ArenaDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaDecodeError::Binary(e) => write!(f, "arena byte stream: {e}"),
            ArenaDecodeError::Corrupt(msg) => write!(f, "arena inconsistent: {msg}"),
        }
    }
}

impl std::error::Error for ArenaDecodeError {}

impl From<binary::BinaryError> for ArenaDecodeError {
    fn from(e: binary::BinaryError) -> Self {
        ArenaDecodeError::Binary(e)
    }
}

/// Node discriminants in the serialized arena (`to_bytes` layout).
const ARENA_ANY: u8 = 0;
const ARENA_TYPE: u8 = 1;
const ARENA_CONST: u8 = 2;
const ARENA_ENUM: u8 = 3;
const ARENA_PATTERN: u8 = 4;
const ARENA_MAP: u8 = 5;
const ARENA_SEQ: u8 = 6;

impl CompiledValidator {
    /// Serialize the arena with the [`kf_yaml::binary`] codec, for the
    /// ahead-of-time policy cache (see [`crate::aot`]). The layout mirrors
    /// the in-memory form table by table: nodes, map-entry runs, interned
    /// strings, constant values, pattern sources (pieces are re-split on
    /// load — they are derived data), and the dense kind-root table.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        binary::put_u32(&mut out, self.nodes.len() as u32);
        for node in &self.nodes {
            match *node {
                CompiledNode::Any => binary::put_u8(&mut out, ARENA_ANY),
                CompiledNode::Type(tag) => {
                    binary::put_u8(&mut out, ARENA_TYPE);
                    binary::put_str(&mut out, tag.placeholder());
                }
                CompiledNode::Const { value } => {
                    binary::put_u8(&mut out, ARENA_CONST);
                    binary::put_u32(&mut out, value);
                }
                CompiledNode::Enum { start, len } => {
                    binary::put_u8(&mut out, ARENA_ENUM);
                    binary::put_u32(&mut out, start);
                    binary::put_u32(&mut out, len);
                }
                CompiledNode::Pattern { pattern } => {
                    binary::put_u8(&mut out, ARENA_PATTERN);
                    binary::put_u32(&mut out, pattern);
                }
                CompiledNode::Map { entries_start, len } => {
                    binary::put_u8(&mut out, ARENA_MAP);
                    binary::put_u32(&mut out, entries_start);
                    binary::put_u32(&mut out, len);
                }
                CompiledNode::Seq { element } => {
                    binary::put_u8(&mut out, ARENA_SEQ);
                    binary::put_u32(&mut out, element);
                }
            }
        }
        binary::put_u32(&mut out, self.map_entries.len() as u32);
        for entry in &self.map_entries {
            binary::put_u32(&mut out, entry.key);
            binary::put_u32(&mut out, entry.child);
        }
        binary::put_u32(&mut out, self.strings.len() as u32);
        for text in &self.strings {
            binary::put_str(&mut out, text);
        }
        binary::put_u32(&mut out, self.values.len() as u32);
        for value in &self.values {
            binary::put_value(&mut out, value);
        }
        binary::put_u32(&mut out, self.patterns.len() as u32);
        for pattern in &self.patterns {
            binary::put_str(&mut out, pattern.source());
        }
        for root in self.kind_roots {
            binary::put_u32(&mut out, root);
        }
        out
    }

    /// Decode an arena previously produced by [`CompiledValidator::to_bytes`].
    ///
    /// Every cross-reference is bounds-checked before the validator is
    /// returned, so a corrupt cache file fails here — with a description —
    /// rather than panicking on the enforcement hot path (which indexes the
    /// side tables unchecked by design).
    ///
    /// # Errors
    ///
    /// [`ArenaDecodeError::Binary`] when the byte stream is malformed,
    /// [`ArenaDecodeError::Corrupt`] when a decoded index dangles.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArenaDecodeError> {
        let mut cursor = binary::Cursor::new(bytes);
        let node_count = cursor.get_u32()? as usize;
        let mut nodes = Vec::with_capacity(node_count.min(1 << 20));
        for _ in 0..node_count {
            let tag = cursor.get_u8()?;
            nodes.push(match tag {
                ARENA_ANY => CompiledNode::Any,
                ARENA_TYPE => {
                    let placeholder = cursor.get_str()?;
                    let tag = TypeTag::from_placeholder(&placeholder).ok_or_else(|| {
                        ArenaDecodeError::Corrupt(format!("unknown type tag {placeholder:?}"))
                    })?;
                    CompiledNode::Type(tag)
                }
                ARENA_CONST => CompiledNode::Const {
                    value: cursor.get_u32()?,
                },
                ARENA_ENUM => CompiledNode::Enum {
                    start: cursor.get_u32()?,
                    len: cursor.get_u32()?,
                },
                ARENA_PATTERN => CompiledNode::Pattern {
                    pattern: cursor.get_u32()?,
                },
                ARENA_MAP => CompiledNode::Map {
                    entries_start: cursor.get_u32()?,
                    len: cursor.get_u32()?,
                },
                ARENA_SEQ => CompiledNode::Seq {
                    element: cursor.get_u32()?,
                },
                other => return Err(binary::BinaryError::UnknownTag(other).into()),
            });
        }
        let entry_count = cursor.get_u32()? as usize;
        let mut map_entries = Vec::with_capacity(entry_count.min(1 << 20));
        for _ in 0..entry_count {
            map_entries.push(MapEntry {
                key: cursor.get_u32()?,
                child: cursor.get_u32()?,
            });
        }
        let string_count = cursor.get_u32()? as usize;
        let mut strings = Vec::with_capacity(string_count.min(1 << 20));
        for _ in 0..string_count {
            strings.push(cursor.get_str()?);
        }
        let value_count = cursor.get_u32()? as usize;
        let mut values = Vec::with_capacity(value_count.min(1 << 20));
        for _ in 0..value_count {
            values.push(cursor.get_value()?);
        }
        let pattern_count = cursor.get_u32()? as usize;
        let mut patterns = Vec::with_capacity(pattern_count.min(1 << 20));
        for _ in 0..pattern_count {
            patterns.push(CompiledPattern::new(&cursor.get_str()?));
        }
        let mut kind_roots = [NO_ROOT; ResourceKind::COUNT];
        for root in kind_roots.iter_mut() {
            *root = cursor.get_u32()?;
        }
        if !cursor.is_empty() {
            return Err(ArenaDecodeError::Corrupt(format!(
                "{} trailing bytes after the kind-root table",
                cursor.remaining()
            )));
        }
        let arena = CompiledValidator {
            nodes,
            map_entries,
            strings,
            values,
            patterns,
            kind_roots,
        };
        arena.check_references()?;
        Ok(arena)
    }

    /// Bounds-check every cross-reference of a freshly decoded arena.
    fn check_references(&self) -> Result<(), ArenaDecodeError> {
        let corrupt = |msg: String| Err(ArenaDecodeError::Corrupt(msg));
        let nodes = self.nodes.len() as u64;
        for (index, node) in self.nodes.iter().enumerate() {
            match *node {
                CompiledNode::Any | CompiledNode::Type(_) => {}
                CompiledNode::Const { value } => {
                    if value as usize >= self.values.len() {
                        return corrupt(format!("node {index}: const value {value} dangles"));
                    }
                }
                CompiledNode::Enum { start, len } => {
                    if start as u64 + len as u64 > self.values.len() as u64 {
                        return corrupt(format!("node {index}: enum run {start}+{len} dangles"));
                    }
                }
                CompiledNode::Pattern { pattern } => {
                    if pattern as usize >= self.patterns.len() {
                        return corrupt(format!("node {index}: pattern {pattern} dangles"));
                    }
                }
                CompiledNode::Map { entries_start, len } => {
                    if entries_start as u64 + len as u64 > self.map_entries.len() as u64 {
                        return corrupt(format!(
                            "node {index}: map run {entries_start}+{len} dangles"
                        ));
                    }
                }
                CompiledNode::Seq { element } => {
                    if element as u64 >= nodes {
                        return corrupt(format!("node {index}: seq element {element} dangles"));
                    }
                }
            }
        }
        for (index, entry) in self.map_entries.iter().enumerate() {
            if entry.key as usize >= self.strings.len() {
                return corrupt(format!("map entry {index}: key {} dangles", entry.key));
            }
            if entry.child as u64 >= nodes {
                return corrupt(format!("map entry {index}: child {} dangles", entry.child));
            }
        }
        for (kind, root) in self.kind_roots.iter().enumerate() {
            if *root != NO_ROOT && *root as u64 >= nodes {
                return corrupt(format!("kind {kind}: root {root} dangles"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::Validator;

    fn validator() -> Validator {
        let manifests = vec![
            kf_yaml::parse(
                r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:string
          imagePullPolicy: IfNotPresent
"#,
            )
            .unwrap(),
            kf_yaml::parse(
                r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: int
  template:
    spec:
      containers:
        - name: nginx
          image: docker.io/bitnami/nginx:string
          imagePullPolicy: Always
"#,
            )
            .unwrap(),
        ];
        Validator::from_manifests("demo", &manifests).unwrap()
    }

    fn request(image: &str, policy: &str, replicas: &str) -> K8sObject {
        K8sObject::from_yaml(&format!(
            r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  replicas: {replicas}
  template:
    spec:
      containers:
        - name: nginx
          image: {image}
          imagePullPolicy: {policy}
"#
        ))
        .unwrap()
    }

    #[test]
    fn compiled_maps_binary_search_their_sorted_keys() {
        let v = validator();
        let compiled = compile(v.kinds().into_iter().map(|k| (k, v.policy_for(k).unwrap())));
        // Every map run must be sorted by interned key text.
        for node in &compiled.nodes {
            if let CompiledNode::Map { entries_start, len } = node {
                let run = compiled.entries(*entries_start, *len);
                for pair in run.windows(2) {
                    assert!(
                        compiled.strings[pair[0].key as usize]
                            < compiled.strings[pair[1].key as usize],
                        "map entries must be strictly key-sorted"
                    );
                }
            }
        }
        assert!(compiled.covers(ResourceKind::Deployment));
        assert!(!compiled.covers(ResourceKind::Secret));
        assert!(compiled.node_count() > 5);
        assert!(compiled.interned_strings() > 0);
    }

    #[test]
    fn compiled_verdicts_match_tree_verdicts() {
        let v = validator();
        let cases = [
            request("docker.io/bitnami/nginx:1.25", "Always", "3"),
            request("docker.io/bitnami/nginx:1.25", "Never", "3"),
            request("evil.example/pwn:latest", "Always", "3"),
            request("docker.io/bitnami/nginx:1.25", "Always", "\"not a number\""),
            K8sObject::minimal(ResourceKind::Secret, "s", "default"),
        ];
        for object in &cases {
            let tree = v.validate_tree(object);
            let compiled = v.compiled().validate(object);
            assert_eq!(tree, compiled, "violations diverged for {}", object.name());
            assert_eq!(
                tree.is_empty(),
                v.compiled().allows(object),
                "fast-path verdict diverged for {}",
                object.name()
            );
        }
    }

    #[test]
    fn default_compiled_validator_covers_nothing() {
        let empty = CompiledValidator::default();
        for kind in ResourceKind::ALL {
            assert!(!empty.covers(kind));
        }
        assert!(!empty.allows(&K8sObject::minimal(ResourceKind::Pod, "p", "ns")));
        assert_eq!(
            empty.validate(&K8sObject::minimal(ResourceKind::Pod, "p", "ns"))[0].reason,
            crate::validator::ViolationReason::UnknownKind
        );
    }

    #[test]
    fn interning_deduplicates_repeated_keys() {
        let v = validator();
        let compiled = v.compiled();
        // `name` appears in metadata and containers; it must be interned once.
        let occurrences = compiled
            .strings
            .iter()
            .filter(|s| s.as_str() == "name")
            .count();
        assert_eq!(occurrences, 1);
    }

    #[test]
    fn arena_bytes_round_trip_to_an_identical_validator() {
        let v = validator();
        let compiled = v.compiled();
        let bytes = compiled.to_bytes();
        let decoded = CompiledValidator::from_bytes(&bytes).expect("round trip");
        assert_eq!(*compiled, decoded);
        // The decoded arena must produce the same verdicts on live objects.
        let good = request("docker.io/bitnami/nginx:1.25", "Always", "3");
        let bad = request("evil.example/pwn:latest", "Always", "3");
        assert!(decoded.allows(&good));
        assert!(!decoded.allows(&bad));
        assert_eq!(decoded.validate(&bad), compiled.validate(&bad));
    }

    #[test]
    fn truncated_arena_bytes_decode_to_an_error_not_a_panic() {
        let v = validator();
        let bytes = v.compiled().to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                CompiledValidator::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail to decode"
            );
        }
    }

    #[test]
    fn dangling_indices_are_rejected_at_decode_time() {
        // A single-node arena whose const index points past the value table.
        let mut out = Vec::new();
        kf_yaml::binary::put_u32(&mut out, 1); // one node
        kf_yaml::binary::put_u8(&mut out, 2); // ARENA_CONST
        kf_yaml::binary::put_u32(&mut out, 7); // value index 7...
        kf_yaml::binary::put_u32(&mut out, 0); // no map entries
        kf_yaml::binary::put_u32(&mut out, 0); // no strings
        kf_yaml::binary::put_u32(&mut out, 0); // ...but zero values
        kf_yaml::binary::put_u32(&mut out, 0); // no patterns
        for _ in 0..ResourceKind::COUNT {
            kf_yaml::binary::put_u32(&mut out, u32::MAX);
        }
        let err = CompiledValidator::from_bytes(&out).unwrap_err();
        assert!(matches!(err, ArenaDecodeError::Corrupt(_)), "{err}");
    }
}
