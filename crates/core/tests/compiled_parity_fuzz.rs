//! Fuzz test: the compiled admission plane must reach exactly the same
//! verdicts — and report exactly the same violations — as the tree-walking
//! reference validator, on randomly mutated manifests.
//!
//! The build environment has no crates-registry access, so instead of
//! `proptest` this uses a hand-rolled, seeded mutator: starting from every
//! operator's legitimate objects, each case applies a random sequence of
//! field overwrites, insertions and deletions (the shapes real attacks take:
//! unknown fields, wrong types, out-of-enumeration values, structural
//! damage), then checks tree/compiled parity. Failures print the case seed
//! and the mutated document.

use k8s_model::K8sObject;
use kf_yaml::{BodyFormat, Path, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use kf_workloads::Operator;
use kubefence::{GeneratorConfig, PolicyGenerator, RawVerdict, Validator, ValidatorSet};

const MUTATIONS_PER_CASE: usize = 4;

/// Mutated cases generated per operator and per suite. The default keeps
/// local runs fast; CI's `parity` job raises it via `KF_FUZZ_CASES` (see
/// `docs/ci.md`).
fn cases_per_operator() -> usize {
    match std::env::var("KF_FUZZ_CASES") {
        // A set-but-unparsable value must fail the suite, not silently
        // fall back while also disabling the volume guards below.
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("KF_FUZZ_CASES must be an integer, got `{v}`")),
        Err(_) => 400,
    }
}

fn validator_for(operator: Operator) -> Validator {
    PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .expect("built-in charts generate valid policies")
}

/// A scalar drawn from the kinds of values attackers substitute.
fn random_scalar(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0usize..6) {
        0 => Value::Bool(true),
        1 => Value::Bool(false),
        2 => Value::Int(rng.gen_range(-4096i64..4096)),
        3 => Value::Str("attacker-controlled".to_owned()),
        4 => Value::Str(format!("evil.example/pwn:{}", rng.gen_range(0u64..100))),
        _ => Value::Null,
    }
}

/// A field name that is plausibly hostile (hostNetwork, privileged, …) or
/// plain noise.
fn random_key(rng: &mut SmallRng) -> String {
    const KEYS: [&str; 8] = [
        "hostNetwork",
        "hostPID",
        "privileged",
        "runAsUser",
        "extraEnv",
        "sidecar",
        "x-injected",
        "debug",
    ];
    KEYS[rng.gen_range(0usize..KEYS.len())].to_owned()
}

/// Apply one random mutation to the document, using its own leaves as
/// anchor points.
fn mutate(rng: &mut SmallRng, body: &mut Value) {
    let leaves: Vec<Path> = body.leaves().into_iter().map(|(path, _)| path).collect();
    if leaves.is_empty() {
        return;
    }
    let anchor = &leaves[rng.gen_range(0usize..leaves.len())];
    match rng.gen_range(0usize..4) {
        // Overwrite a leaf with a random scalar (wrong type / wrong value).
        0 => {
            let scalar = random_scalar(rng);
            let _ = body.set_path(anchor, scalar);
        }
        // Graft an unknown field next to an existing leaf.
        1 => {
            let mut dotted = anchor.to_string();
            if let Some(cut) = dotted.rfind('.') {
                dotted.truncate(cut);
                let grafted = format!("{dotted}.{}", random_key(rng));
                if let Ok(path) = Path::parse(&grafted) {
                    let scalar = random_scalar(rng);
                    let _ = body.set_path(&path, scalar);
                }
            }
        }
        // Delete a leaf (shrinking is as important as growing).
        2 => {
            let _ = body.remove_path(anchor);
        }
        // Structural damage: replace a leaf with a container.
        _ => {
            let replacement = if rng.gen_range(0usize..2) == 0 {
                Value::Seq(vec![random_scalar(rng)])
            } else {
                Value::empty_map()
            };
            let _ = body.set_path(anchor, replacement);
        }
    }
}

#[test]
fn compiled_and_tree_validators_agree_on_mutated_manifests() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let bases = operator.workload().default_objects();
        let mut rng = SmallRng::seed_from_u64(0xF0CCAC1A ^ operator.name().len() as u64);
        let mut admitted = 0usize;
        let mut denied = 0usize;
        for case in 0..cases_per_operator() {
            let base = &bases[rng.gen_range(0usize..bases.len())];
            let mut body = base.body().clone();
            for _ in 0..rng.gen_range(1usize..MUTATIONS_PER_CASE + 1) {
                mutate(&mut rng, &mut body);
            }
            // Mutations can destroy the object envelope (kind/name); those
            // documents never reach a validator, the proxy rejects them
            // earlier.
            let Ok(object) = K8sObject::from_value(body.clone()) else {
                continue;
            };
            let tree = validator.validate_tree(&object);
            let compiled = validator.compiled().validate(&object);
            assert_eq!(
                tree,
                compiled,
                "violations diverged: {} case {case}\n--- document ---\n{}",
                operator.name(),
                kf_yaml::to_yaml(&body)
            );
            assert_eq!(
                tree.is_empty(),
                validator.compiled().allows(&object),
                "fast-path verdict diverged: {} case {case}",
                operator.name()
            );
            if tree.is_empty() {
                admitted += 1;
            } else {
                denied += 1;
            }
        }
        // The mutator must exercise both sides of the verdict for the
        // parity claim to mean anything.
        assert!(
            denied > 0,
            "{}: no mutated manifest was denied",
            operator.name()
        );
        assert!(
            admitted + denied > cases_per_operator() / 2,
            "{}: too many cases discarded ({admitted} admitted, {denied} denied)",
            operator.name()
        );
    }
}

/// Round-trip every mutated manifest through the emitter and validate the
/// wire bytes on the streaming path: the streaming verdict, the raw tree
/// path (parse-then-validate on the compiled plane) and the legacy
/// tree-walking validator must all agree — including early-deny cases,
/// where the stream stops at the first fatal violation but must still
/// report the tree path's exact violation list.
#[test]
fn streaming_verdicts_match_tree_verdicts_on_mutated_manifests() {
    let mut checked = 0usize;
    let mut stream_denied = 0usize;
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let set = ValidatorSet::single(validator.clone());
        let bases = operator.workload().default_objects();
        let mut rng = SmallRng::seed_from_u64(0x5EED_57E4 ^ operator.name().len() as u64);
        for case in 0..cases_per_operator() {
            let base = &bases[rng.gen_range(0usize..bases.len())];
            let mut body = base.body().clone();
            for _ in 0..rng.gen_range(1usize..MUTATIONS_PER_CASE + 1) {
                mutate(&mut rng, &mut body);
            }
            // The raw path sees wire bytes: emit the mutated document.
            let text = kf_yaml::to_yaml(&body);
            let stream = set.validate_raw(&text);
            let raw_tree = set.validate_raw_tree(&text);
            checked += 1;
            match K8sObject::from_value(body.clone()) {
                Ok(_envelope_intact) => {
                    // Envelope-intact documents: full verdict + violation
                    // parity. The emitted text reparses to a loosely-equal
                    // tree, which is what both tree planes see.
                    let reparsed = kf_yaml::parse(&text).expect("emitted YAML must reparse");
                    let legacy_object = K8sObject::from_value(reparsed)
                        .expect("envelope survives the emitter round-trip");
                    let legacy = validator.validate_tree(&legacy_object);
                    match (&stream, &raw_tree) {
                        (RawVerdict::Admitted, RawVerdict::Admitted) => {
                            assert!(
                                legacy.is_empty(),
                                "{} case {case}: tree-walking plane denies an admitted body\n{text}",
                                operator.name()
                            );
                        }
                        (
                            RawVerdict::Denied {
                                violations: stream_violations,
                                location,
                            },
                            RawVerdict::Denied {
                                violations: tree_violations,
                                ..
                            },
                        ) => {
                            stream_denied += 1;
                            assert_eq!(
                                stream_violations,
                                tree_violations,
                                "{} case {case}: streaming and raw-tree reports diverged\n{text}",
                                operator.name()
                            );
                            assert_eq!(
                                stream_violations, &legacy,
                                "{} case {case}: streaming and tree-walking reports diverged\n{text}",
                                operator.name()
                            );
                            // Early-deny position, when the stream decided,
                            // must point into the payload.
                            if let Some(location) = location {
                                assert!(location.line >= 1);
                                if let Some(offset) = location.offset {
                                    assert!(offset < text.len());
                                }
                            }
                        }
                        (s, t) => panic!(
                            "{} case {case}: verdicts diverged (stream {s:?} vs tree {t:?})\n{text}",
                            operator.name()
                        ),
                    }
                }
                Err(_) => {
                    // Envelope-broken documents never reach a validator on
                    // either path; both must refuse to admit, with the
                    // streaming outcome byte-identical to the reference
                    // (the stream defers every report to it).
                    assert!(
                        !stream.is_admitted(),
                        "{} case {case}: stream admitted an envelope-broken body\n{text}",
                        operator.name()
                    );
                    assert_eq!(
                        stream,
                        raw_tree,
                        "{} case {case}: envelope-broken outcomes diverged\n{text}",
                        operator.name()
                    );
                }
            }
        }
    }
    // The volume guard protects the default configuration; an explicit
    // KF_FUZZ_CASES override (however small, e.g. while iterating on a
    // repro) sets its own volume.
    assert!(
        std::env::var("KF_FUZZ_CASES").is_ok() || checked >= 1000,
        "parity must be pinned over at least 1k mutated manifests, got {checked}"
    );
    assert!(
        stream_denied > 0,
        "the mutator must exercise the streaming deny path"
    );
}

/// Multi-document raw bodies are never admitted: a request carries exactly
/// one object. The streaming path may deny on the first document's policy
/// violations before ever tokenizing the second — either way, denied.
#[test]
fn multi_document_raw_bodies_never_admit() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let set = ValidatorSet::single(validator);
        let bases = operator.workload().default_objects();
        let first = kf_yaml::to_yaml(bases[0].body());
        let second = kf_yaml::to_yaml(bases[bases.len() - 1].body());
        let text = format!("{first}---\n{second}");
        let stream = set.validate_raw(&text);
        assert!(
            !stream.is_admitted(),
            "{}: streaming admitted a multi-document body",
            operator.name()
        );
        assert_eq!(
            stream,
            set.validate_raw_tree(&text),
            "{}: multi-document outcomes diverged",
            operator.name()
        );
        // A single legitimate document, by contrast, is admitted on both.
        assert!(set.validate_raw(&first).is_admitted());
        assert!(set.validate_raw_tree(&first).is_admitted());
    }
}

/// Cross-format parity: every mutated manifest is serialized as **both**
/// YAML and JSON wire bytes, and the streaming-JSON, streaming-YAML and
/// compiled-tree verdicts must agree — with byte-identical violation lists
/// on denials. Locations and unparsable reasons are format-specific (line
/// numbers differ between serializations) and are excluded from the
/// byte-identity claim.
#[test]
fn cross_format_streaming_verdicts_agree() {
    let mut checked = 0usize;
    let mut denied_both = 0usize;
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let set = ValidatorSet::single(validator);
        let bases = operator.workload().default_objects();
        let mut rng = SmallRng::seed_from_u64(0xC0_F0_12_34 ^ operator.name().len() as u64);
        for case in 0..cases_per_operator() {
            let base = &bases[rng.gen_range(0usize..bases.len())];
            let mut body = base.body().clone();
            for _ in 0..rng.gen_range(1usize..MUTATIONS_PER_CASE + 1) {
                mutate(&mut rng, &mut body);
            }
            let yaml = kf_yaml::to_yaml(&body);
            let json = kf_yaml::to_json(&body);
            let stream_yaml = set.validate_raw_format(&yaml, BodyFormat::Yaml);
            let stream_json = set.validate_raw_format(&json, BodyFormat::Json);
            let tree_yaml = set.validate_raw_tree_format(&yaml, BodyFormat::Yaml);
            let tree_json = set.validate_raw_tree_format(&json, BodyFormat::Json);
            checked += 1;
            // Each format's streaming verdict matches its own reference
            // exactly, modulo the added source location.
            assert_same_outcome(
                &stream_yaml,
                &tree_yaml,
                operator.name(),
                case,
                "yaml",
                &yaml,
            );
            assert_same_outcome(
                &stream_json,
                &tree_json,
                operator.name(),
                case,
                "json",
                &json,
            );
            // And across formats: the verdict class is identical, and
            // denial violation lists are byte-identical.
            match (&stream_yaml, &stream_json) {
                (RawVerdict::Admitted, RawVerdict::Admitted) => {}
                (
                    RawVerdict::Denied {
                        violations: yaml_violations,
                        ..
                    },
                    RawVerdict::Denied {
                        violations: json_violations,
                        ..
                    },
                ) => {
                    denied_both += 1;
                    assert_eq!(
                        yaml_violations,
                        json_violations,
                        "{} case {case}: YAML and JSON violation lists diverged\n--- yaml ---\n{yaml}\n--- json ---\n{json}",
                        operator.name()
                    );
                }
                (RawVerdict::Unparsable { .. }, RawVerdict::Unparsable { .. }) => {}
                (y, j) => panic!(
                    "{} case {case}: verdict class diverged across formats\nyaml: {y:?}\njson: {j:?}\n--- yaml ---\n{yaml}\n--- json ---\n{json}",
                    operator.name()
                ),
            }
        }
    }
    assert_eq!(
        checked,
        Operator::ALL.len() * cases_per_operator(),
        "every generated case must be checked"
    );
    // The volume guard protects the default configuration (400 × 5 operators
    // = 2000); an explicit KF_FUZZ_CASES override sets its own volume.
    assert!(
        std::env::var("KF_FUZZ_CASES").is_ok() || checked >= 2000,
        "cross-format parity must be pinned over at least 2k mutated manifests, got {checked}"
    );
    assert!(
        denied_both > 0,
        "the mutator must exercise the cross-format deny path"
    );
}

/// Assert a streaming verdict equals its reference verdict, ignoring the
/// source location the stream adds to denials.
fn assert_same_outcome(
    stream: &RawVerdict,
    tree: &RawVerdict,
    operator: &str,
    case: usize,
    format: &str,
    text: &str,
) {
    match (stream, tree) {
        (RawVerdict::Admitted, RawVerdict::Admitted) => {}
        (
            RawVerdict::Denied {
                violations: aentries,
                ..
            },
            RawVerdict::Denied {
                violations: bentries,
                ..
            },
        ) => assert_eq!(
            aentries, bentries,
            "{operator} case {case} ({format}): streaming and reference reports diverged\n{text}"
        ),
        (RawVerdict::Unparsable { reason: a, .. }, RawVerdict::Unparsable { reason: b, .. }) => {
            assert_eq!(
                a, b,
                "{operator} case {case} ({format}): unparsable reasons diverged\n{text}"
            );
        }
        (s, t) => panic!(
            "{operator} case {case} ({format}): verdicts diverged (stream {s:?} vs tree {t:?})\n{text}"
        ),
    }
}

/// Multi-document YAML has no JSON analogue: a concatenated JSON payload is
/// a parse error (trailing content), a multi-document YAML payload is a
/// document-count defect. Both deny; the single-document forms of the same
/// manifests admit in both formats, and early-deny ordering agrees with the
/// tree on a document whose violations span the kind discovery point.
#[test]
fn multi_document_yaml_vs_single_document_json() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let set = ValidatorSet::single(validator);
        let bases = operator.workload().default_objects();
        let first_yaml = kf_yaml::to_yaml(bases[0].body());
        let first_json = kf_yaml::to_json(bases[0].body());
        let second_yaml = kf_yaml::to_yaml(bases[bases.len() - 1].body());
        let second_json = kf_yaml::to_json(bases[bases.len() - 1].body());
        // Single documents admit in both formats.
        assert!(set.validate_raw(&first_yaml).is_admitted());
        assert!(set
            .validate_raw_format(&first_json, BodyFormat::Json)
            .is_admitted());
        // Multi-document YAML and concatenated JSON both refuse admission,
        // each matching its own reference outcome exactly.
        let multi_yaml = format!("{first_yaml}---\n{second_yaml}");
        let multi_json = format!("{first_json}\n{second_json}");
        let stream = set.validate_raw(&multi_yaml);
        assert!(!stream.is_admitted());
        assert_eq!(stream, set.validate_raw_tree(&multi_yaml));
        let stream = set.validate_raw_format(&multi_json, BodyFormat::Json);
        assert!(matches!(stream, RawVerdict::Unparsable { .. }));
        assert_eq!(
            stream,
            set.validate_raw_tree_format(&multi_json, BodyFormat::Json)
        );
    }
}

/// Early-deny ordering: when multiple violations exist, the streaming
/// report must list them in document order for both formats — the order the
/// tree walk produces.
#[test]
fn early_deny_ordering_matches_across_formats() {
    let operator = Operator::ALL[0];
    let validator = validator_for(operator);
    let set = ValidatorSet::single(validator);
    let bases = operator.workload().default_objects();
    let pod_spec = Path::parse("spec.template.spec").unwrap();
    let mut body = bases
        .iter()
        .find(|object| object.body().get_path(&pod_spec).is_some())
        .expect("every operator deploys a pod-template workload")
        .body()
        .clone();
    // Two hostile fields inside the pod template.
    body.set_path(
        &Path::parse("spec.template.spec.hostNetwork").unwrap(),
        Value::Bool(true),
    )
    .unwrap();
    body.set_path(
        &Path::parse("spec.template.spec.hostPID").unwrap(),
        Value::Bool(true),
    )
    .unwrap();
    let yaml = kf_yaml::to_yaml(&body);
    let json = kf_yaml::to_json(&body);
    let RawVerdict::Denied {
        violations: yaml_violations,
        ..
    } = set.validate_raw(&yaml)
    else {
        panic!("expected YAML denial");
    };
    let RawVerdict::Denied {
        violations: json_violations,
        ..
    } = set.validate_raw_format(&json, BodyFormat::Json)
    else {
        panic!("expected JSON denial");
    };
    let RawVerdict::Denied {
        violations: tree_violations,
        ..
    } = set.validate_raw_tree(&yaml)
    else {
        panic!("expected tree denial");
    };
    assert!(tree_violations.len() >= 2, "expected multiple violations");
    assert_eq!(yaml_violations, tree_violations);
    assert_eq!(json_violations, tree_violations);
}

#[test]
fn unmutated_manifests_are_admitted_by_both_planes() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        for object in operator.workload().default_objects() {
            assert!(
                validator.validate_tree(&object).is_empty(),
                "{}: tree plane rejects the legitimate {}",
                operator.name(),
                object.name()
            );
            assert!(
                validator.compiled().allows(&object),
                "{}: compiled plane rejects the legitimate {}",
                operator.name(),
                object.name()
            );
        }
    }
}
