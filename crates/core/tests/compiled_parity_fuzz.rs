//! Fuzz test: the compiled admission plane must reach exactly the same
//! verdicts — and report exactly the same violations — as the tree-walking
//! reference validator, on randomly mutated manifests.
//!
//! The build environment has no crates-registry access, so instead of
//! `proptest` this uses a hand-rolled, seeded mutator: starting from every
//! operator's legitimate objects, each case applies a random sequence of
//! field overwrites, insertions and deletions (the shapes real attacks take:
//! unknown fields, wrong types, out-of-enumeration values, structural
//! damage), then checks tree/compiled parity. Failures print the case seed
//! and the mutated document.

use k8s_model::K8sObject;
use kf_yaml::{Path, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use kf_workloads::Operator;
use kubefence::{GeneratorConfig, PolicyGenerator, Validator};

const CASES_PER_OPERATOR: usize = 400;
const MUTATIONS_PER_CASE: usize = 4;

fn validator_for(operator: Operator) -> Validator {
    PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .expect("built-in charts generate valid policies")
}

/// A scalar drawn from the kinds of values attackers substitute.
fn random_scalar(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0usize..6) {
        0 => Value::Bool(true),
        1 => Value::Bool(false),
        2 => Value::Int(rng.gen_range(-4096i64..4096)),
        3 => Value::Str("attacker-controlled".to_owned()),
        4 => Value::Str(format!("evil.example/pwn:{}", rng.gen_range(0u64..100))),
        _ => Value::Null,
    }
}

/// A field name that is plausibly hostile (hostNetwork, privileged, …) or
/// plain noise.
fn random_key(rng: &mut SmallRng) -> String {
    const KEYS: [&str; 8] = [
        "hostNetwork",
        "hostPID",
        "privileged",
        "runAsUser",
        "extraEnv",
        "sidecar",
        "x-injected",
        "debug",
    ];
    KEYS[rng.gen_range(0usize..KEYS.len())].to_owned()
}

/// Apply one random mutation to the document, using its own leaves as
/// anchor points.
fn mutate(rng: &mut SmallRng, body: &mut Value) {
    let leaves: Vec<Path> = body.leaves().into_iter().map(|(path, _)| path).collect();
    if leaves.is_empty() {
        return;
    }
    let anchor = &leaves[rng.gen_range(0usize..leaves.len())];
    match rng.gen_range(0usize..4) {
        // Overwrite a leaf with a random scalar (wrong type / wrong value).
        0 => {
            let scalar = random_scalar(rng);
            let _ = body.set_path(anchor, scalar);
        }
        // Graft an unknown field next to an existing leaf.
        1 => {
            let mut dotted = anchor.to_string();
            if let Some(cut) = dotted.rfind('.') {
                dotted.truncate(cut);
                let grafted = format!("{dotted}.{}", random_key(rng));
                if let Ok(path) = Path::parse(&grafted) {
                    let scalar = random_scalar(rng);
                    let _ = body.set_path(&path, scalar);
                }
            }
        }
        // Delete a leaf (shrinking is as important as growing).
        2 => {
            let _ = body.remove_path(anchor);
        }
        // Structural damage: replace a leaf with a container.
        _ => {
            let replacement = if rng.gen_range(0usize..2) == 0 {
                Value::Seq(vec![random_scalar(rng)])
            } else {
                Value::empty_map()
            };
            let _ = body.set_path(anchor, replacement);
        }
    }
}

#[test]
fn compiled_and_tree_validators_agree_on_mutated_manifests() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let bases = operator.workload().default_objects();
        let mut rng = SmallRng::seed_from_u64(0xF0CCAC1A ^ operator.name().len() as u64);
        let mut admitted = 0usize;
        let mut denied = 0usize;
        for case in 0..CASES_PER_OPERATOR {
            let base = &bases[rng.gen_range(0usize..bases.len())];
            let mut body = base.body().clone();
            for _ in 0..rng.gen_range(1usize..MUTATIONS_PER_CASE + 1) {
                mutate(&mut rng, &mut body);
            }
            // Mutations can destroy the object envelope (kind/name); those
            // documents never reach a validator, the proxy rejects them
            // earlier.
            let Ok(object) = K8sObject::from_value(body.clone()) else {
                continue;
            };
            let tree = validator.validate_tree(&object);
            let compiled = validator.compiled().validate(&object);
            assert_eq!(
                tree,
                compiled,
                "violations diverged: {} case {case}\n--- document ---\n{}",
                operator.name(),
                kf_yaml::to_yaml(&body)
            );
            assert_eq!(
                tree.is_empty(),
                validator.compiled().allows(&object),
                "fast-path verdict diverged: {} case {case}",
                operator.name()
            );
            if tree.is_empty() {
                admitted += 1;
            } else {
                denied += 1;
            }
        }
        // The mutator must exercise both sides of the verdict for the
        // parity claim to mean anything.
        assert!(
            denied > 0,
            "{}: no mutated manifest was denied",
            operator.name()
        );
        assert!(
            admitted + denied > CASES_PER_OPERATOR / 2,
            "{}: too many cases discarded ({admitted} admitted, {denied} denied)",
            operator.name()
        );
    }
}

#[test]
fn unmutated_manifests_are_admitted_by_both_planes() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        for object in operator.workload().default_objects() {
            assert!(
                validator.validate_tree(&object).is_empty(),
                "{}: tree plane rejects the legitimate {}",
                operator.name(),
                object.name()
            );
            assert!(
                validator.compiled().allows(&object),
                "{}: compiled plane rejects the legitimate {}",
                operator.name(),
                object.name()
            );
        }
    }
}
