//! Fuzz test: the compiled admission plane must reach exactly the same
//! verdicts — and report exactly the same violations — as the tree-walking
//! reference validator, on randomly mutated manifests.
//!
//! The build environment has no crates-registry access, so instead of
//! `proptest` this uses a hand-rolled, seeded mutator: starting from every
//! operator's legitimate objects, each case applies a random sequence of
//! field overwrites, insertions and deletions (the shapes real attacks take:
//! unknown fields, wrong types, out-of-enumeration values, structural
//! damage), then checks tree/compiled parity. Failures print the case seed
//! and the mutated document.

use k8s_model::K8sObject;
use kf_yaml::{Path, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use kf_workloads::Operator;
use kubefence::{GeneratorConfig, PolicyGenerator, RawVerdict, Validator, ValidatorSet};

const CASES_PER_OPERATOR: usize = 400;
const MUTATIONS_PER_CASE: usize = 4;

fn validator_for(operator: Operator) -> Validator {
    PolicyGenerator::new(GeneratorConfig::for_release(operator.release_name()))
        .generate(&operator.chart())
        .expect("built-in charts generate valid policies")
}

/// A scalar drawn from the kinds of values attackers substitute.
fn random_scalar(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0usize..6) {
        0 => Value::Bool(true),
        1 => Value::Bool(false),
        2 => Value::Int(rng.gen_range(-4096i64..4096)),
        3 => Value::Str("attacker-controlled".to_owned()),
        4 => Value::Str(format!("evil.example/pwn:{}", rng.gen_range(0u64..100))),
        _ => Value::Null,
    }
}

/// A field name that is plausibly hostile (hostNetwork, privileged, …) or
/// plain noise.
fn random_key(rng: &mut SmallRng) -> String {
    const KEYS: [&str; 8] = [
        "hostNetwork",
        "hostPID",
        "privileged",
        "runAsUser",
        "extraEnv",
        "sidecar",
        "x-injected",
        "debug",
    ];
    KEYS[rng.gen_range(0usize..KEYS.len())].to_owned()
}

/// Apply one random mutation to the document, using its own leaves as
/// anchor points.
fn mutate(rng: &mut SmallRng, body: &mut Value) {
    let leaves: Vec<Path> = body.leaves().into_iter().map(|(path, _)| path).collect();
    if leaves.is_empty() {
        return;
    }
    let anchor = &leaves[rng.gen_range(0usize..leaves.len())];
    match rng.gen_range(0usize..4) {
        // Overwrite a leaf with a random scalar (wrong type / wrong value).
        0 => {
            let scalar = random_scalar(rng);
            let _ = body.set_path(anchor, scalar);
        }
        // Graft an unknown field next to an existing leaf.
        1 => {
            let mut dotted = anchor.to_string();
            if let Some(cut) = dotted.rfind('.') {
                dotted.truncate(cut);
                let grafted = format!("{dotted}.{}", random_key(rng));
                if let Ok(path) = Path::parse(&grafted) {
                    let scalar = random_scalar(rng);
                    let _ = body.set_path(&path, scalar);
                }
            }
        }
        // Delete a leaf (shrinking is as important as growing).
        2 => {
            let _ = body.remove_path(anchor);
        }
        // Structural damage: replace a leaf with a container.
        _ => {
            let replacement = if rng.gen_range(0usize..2) == 0 {
                Value::Seq(vec![random_scalar(rng)])
            } else {
                Value::empty_map()
            };
            let _ = body.set_path(anchor, replacement);
        }
    }
}

#[test]
fn compiled_and_tree_validators_agree_on_mutated_manifests() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let bases = operator.workload().default_objects();
        let mut rng = SmallRng::seed_from_u64(0xF0CCAC1A ^ operator.name().len() as u64);
        let mut admitted = 0usize;
        let mut denied = 0usize;
        for case in 0..CASES_PER_OPERATOR {
            let base = &bases[rng.gen_range(0usize..bases.len())];
            let mut body = base.body().clone();
            for _ in 0..rng.gen_range(1usize..MUTATIONS_PER_CASE + 1) {
                mutate(&mut rng, &mut body);
            }
            // Mutations can destroy the object envelope (kind/name); those
            // documents never reach a validator, the proxy rejects them
            // earlier.
            let Ok(object) = K8sObject::from_value(body.clone()) else {
                continue;
            };
            let tree = validator.validate_tree(&object);
            let compiled = validator.compiled().validate(&object);
            assert_eq!(
                tree,
                compiled,
                "violations diverged: {} case {case}\n--- document ---\n{}",
                operator.name(),
                kf_yaml::to_yaml(&body)
            );
            assert_eq!(
                tree.is_empty(),
                validator.compiled().allows(&object),
                "fast-path verdict diverged: {} case {case}",
                operator.name()
            );
            if tree.is_empty() {
                admitted += 1;
            } else {
                denied += 1;
            }
        }
        // The mutator must exercise both sides of the verdict for the
        // parity claim to mean anything.
        assert!(
            denied > 0,
            "{}: no mutated manifest was denied",
            operator.name()
        );
        assert!(
            admitted + denied > CASES_PER_OPERATOR / 2,
            "{}: too many cases discarded ({admitted} admitted, {denied} denied)",
            operator.name()
        );
    }
}

/// Round-trip every mutated manifest through the emitter and validate the
/// wire bytes on the streaming path: the streaming verdict, the raw tree
/// path (parse-then-validate on the compiled plane) and the legacy
/// tree-walking validator must all agree — including early-deny cases,
/// where the stream stops at the first fatal violation but must still
/// report the tree path's exact violation list.
#[test]
fn streaming_verdicts_match_tree_verdicts_on_mutated_manifests() {
    let mut checked = 0usize;
    let mut stream_denied = 0usize;
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let set = ValidatorSet::single(validator.clone());
        let bases = operator.workload().default_objects();
        let mut rng = SmallRng::seed_from_u64(0x5EED_57E4 ^ operator.name().len() as u64);
        for case in 0..CASES_PER_OPERATOR {
            let base = &bases[rng.gen_range(0usize..bases.len())];
            let mut body = base.body().clone();
            for _ in 0..rng.gen_range(1usize..MUTATIONS_PER_CASE + 1) {
                mutate(&mut rng, &mut body);
            }
            // The raw path sees wire bytes: emit the mutated document.
            let text = kf_yaml::to_yaml(&body);
            let stream = set.validate_raw(&text);
            let raw_tree = set.validate_raw_tree(&text);
            checked += 1;
            match K8sObject::from_value(body.clone()) {
                Ok(_envelope_intact) => {
                    // Envelope-intact documents: full verdict + violation
                    // parity. The emitted text reparses to a loosely-equal
                    // tree, which is what both tree planes see.
                    let reparsed = kf_yaml::parse(&text).expect("emitted YAML must reparse");
                    let legacy_object = K8sObject::from_value(reparsed)
                        .expect("envelope survives the emitter round-trip");
                    let legacy = validator.validate_tree(&legacy_object);
                    match (&stream, &raw_tree) {
                        (RawVerdict::Admitted, RawVerdict::Admitted) => {
                            assert!(
                                legacy.is_empty(),
                                "{} case {case}: tree-walking plane denies an admitted body\n{text}",
                                operator.name()
                            );
                        }
                        (
                            RawVerdict::Denied {
                                violations: stream_violations,
                                location,
                            },
                            RawVerdict::Denied {
                                violations: tree_violations,
                                ..
                            },
                        ) => {
                            stream_denied += 1;
                            assert_eq!(
                                stream_violations,
                                tree_violations,
                                "{} case {case}: streaming and raw-tree reports diverged\n{text}",
                                operator.name()
                            );
                            assert_eq!(
                                stream_violations, &legacy,
                                "{} case {case}: streaming and tree-walking reports diverged\n{text}",
                                operator.name()
                            );
                            // Early-deny position, when the stream decided,
                            // must point into the payload.
                            if let Some(location) = location {
                                assert!(location.line >= 1);
                                if let Some(offset) = location.offset {
                                    assert!(offset < text.len());
                                }
                            }
                        }
                        (s, t) => panic!(
                            "{} case {case}: verdicts diverged (stream {s:?} vs tree {t:?})\n{text}",
                            operator.name()
                        ),
                    }
                }
                Err(_) => {
                    // Envelope-broken documents never reach a validator on
                    // either path; both must refuse to admit, with the
                    // streaming outcome byte-identical to the reference
                    // (the stream defers every report to it).
                    assert!(
                        !stream.is_admitted(),
                        "{} case {case}: stream admitted an envelope-broken body\n{text}",
                        operator.name()
                    );
                    assert_eq!(
                        stream,
                        raw_tree,
                        "{} case {case}: envelope-broken outcomes diverged\n{text}",
                        operator.name()
                    );
                }
            }
        }
    }
    assert!(
        checked >= 1000,
        "parity must be pinned over at least 1k mutated manifests, got {checked}"
    );
    assert!(
        stream_denied > 0,
        "the mutator must exercise the streaming deny path"
    );
}

/// Multi-document raw bodies are never admitted: a request carries exactly
/// one object. The streaming path may deny on the first document's policy
/// violations before ever tokenizing the second — either way, denied.
#[test]
fn multi_document_raw_bodies_never_admit() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        let set = ValidatorSet::single(validator);
        let bases = operator.workload().default_objects();
        let first = kf_yaml::to_yaml(bases[0].body());
        let second = kf_yaml::to_yaml(bases[bases.len() - 1].body());
        let text = format!("{first}---\n{second}");
        let stream = set.validate_raw(&text);
        assert!(
            !stream.is_admitted(),
            "{}: streaming admitted a multi-document body",
            operator.name()
        );
        assert_eq!(
            stream,
            set.validate_raw_tree(&text),
            "{}: multi-document outcomes diverged",
            operator.name()
        );
        // A single legitimate document, by contrast, is admitted on both.
        assert!(set.validate_raw(&first).is_admitted());
        assert!(set.validate_raw_tree(&first).is_admitted());
    }
}

#[test]
fn unmutated_manifests_are_admitted_by_both_planes() {
    for operator in Operator::ALL {
        let validator = validator_for(operator);
        for object in operator.workload().default_objects() {
            assert!(
                validator.validate_tree(&object).is_empty(),
                "{}: tree plane rejects the legitimate {}",
                operator.name(),
                object.name()
            );
            assert!(
                validator.compiled().allows(&object),
                "{}: compiled plane rejects the legitimate {}",
                operator.name(),
                object.name()
            );
        }
    }
}
