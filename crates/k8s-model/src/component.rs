//! Component taxonomy used to classify Kubernetes CVEs (Section III-C of the
//! paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The Kubernetes component affected by a vulnerability, derived in the paper
/// from the source files touched by each CVE's patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Component {
    AdmissionControllers,
    Kubelet,
    ApiServer,
    Etcd,
    Kubectl,
    Scheduler,
    Networking,
    Storage,
    CloudProvider,
    SecurityFeatures,
}

impl Component {
    /// All components, in the row order used by the CVE mapping.
    pub const ALL: [Component; 10] = [
        Component::AdmissionControllers,
        Component::Kubelet,
        Component::ApiServer,
        Component::Etcd,
        Component::Kubectl,
        Component::Scheduler,
        Component::Networking,
        Component::Storage,
        Component::CloudProvider,
        Component::SecurityFeatures,
    ];

    /// Human readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Component::AdmissionControllers => "admission controllers",
            Component::Kubelet => "kubelet",
            Component::ApiServer => "API server",
            Component::Etcd => "etcd",
            Component::Kubectl => "kubectl",
            Component::Scheduler => "scheduler",
            Component::Networking => "networking",
            Component::Storage => "storage",
            Component::CloudProvider => "cloud provider",
            Component::SecurityFeatures => "security features",
        }
    }

    /// A representative source file associated with the component; the paper
    /// maps CVEs to vulnerable files via their patches, and the e2e coverage
    /// analysis (Figure 5) checks whether a test reaches those files.
    pub fn representative_file(&self) -> &'static str {
        match self {
            Component::AdmissionControllers => "plugin/pkg/admission/admission.go",
            Component::Kubelet => "pkg/kubelet/kubelet.go",
            Component::ApiServer => "staging/src/k8s.io/apiserver/pkg/server/handler.go",
            Component::Etcd => "staging/src/k8s.io/apiserver/pkg/storage/etcd3/store.go",
            Component::Kubectl => "staging/src/k8s.io/kubectl/pkg/cmd/cmd.go",
            Component::Scheduler => "pkg/scheduler/schedule_one.go",
            Component::Networking => "pkg/proxy/iptables/proxier.go",
            Component::Storage => "pkg/volume/util/subpath/subpath_linux.go",
            Component::CloudProvider => "staging/src/k8s.io/legacy-cloud-providers/gce/gce.go",
            Component::SecurityFeatures => "pkg/securitycontext/util.go",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_components_cover_the_taxonomy() {
        assert_eq!(Component::ALL.len(), 10);
    }

    #[test]
    fn representative_files_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Component::ALL {
            assert!(seen.insert(c.representative_file()));
        }
    }
}
