//! The resource kinds (API endpoints) considered by the evaluation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gvk::GroupVersionKind;

/// The twenty Kubernetes resource kinds that appear in the paper's
/// attack-surface analysis (Figure 9) and are exercised by the five operator
/// workloads.
///
/// Every kind corresponds to one API endpoint of the (simulated) API server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ResourceKind {
    Deployment,
    StatefulSet,
    Pod,
    Job,
    CronJob,
    Service,
    ConfigMap,
    NetworkPolicy,
    Ingress,
    IngressClass,
    ServiceAccount,
    HorizontalPodAutoscaler,
    PodDisruptionBudget,
    PersistentVolumeClaim,
    ValidatingWebhookConfiguration,
    Secret,
    Role,
    RoleBinding,
    ClusterRole,
    ClusterRoleBinding,
}

impl ResourceKind {
    /// All kinds, in the column order of Figure 9.
    pub const ALL: [ResourceKind; 20] = [
        ResourceKind::Deployment,
        ResourceKind::StatefulSet,
        ResourceKind::Pod,
        ResourceKind::Job,
        ResourceKind::CronJob,
        ResourceKind::Service,
        ResourceKind::ConfigMap,
        ResourceKind::NetworkPolicy,
        ResourceKind::Ingress,
        ResourceKind::IngressClass,
        ResourceKind::ServiceAccount,
        ResourceKind::HorizontalPodAutoscaler,
        ResourceKind::PodDisruptionBudget,
        ResourceKind::PersistentVolumeClaim,
        ResourceKind::ValidatingWebhookConfiguration,
        ResourceKind::Secret,
        ResourceKind::Role,
        ResourceKind::RoleBinding,
        ResourceKind::ClusterRole,
        ResourceKind::ClusterRoleBinding,
    ];

    /// Number of resource kinds (the length of [`ResourceKind::ALL`]).
    pub const COUNT: usize = ResourceKind::ALL.len();

    /// A dense index in `0..ResourceKind::COUNT`, usable for O(1) dispatch
    /// tables (the compiled admission plane indexes per-kind policy roots by
    /// this value).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// The manifest `kind` string.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResourceKind::Deployment => "Deployment",
            ResourceKind::StatefulSet => "StatefulSet",
            ResourceKind::Pod => "Pod",
            ResourceKind::Job => "Job",
            ResourceKind::CronJob => "CronJob",
            ResourceKind::Service => "Service",
            ResourceKind::ConfigMap => "ConfigMap",
            ResourceKind::NetworkPolicy => "NetworkPolicy",
            ResourceKind::Ingress => "Ingress",
            ResourceKind::IngressClass => "IngressClass",
            ResourceKind::ServiceAccount => "ServiceAccount",
            ResourceKind::HorizontalPodAutoscaler => "HorizontalPodAutoscaler",
            ResourceKind::PodDisruptionBudget => "PodDisruptionBudget",
            ResourceKind::PersistentVolumeClaim => "PersistentVolumeClaim",
            ResourceKind::ValidatingWebhookConfiguration => "ValidatingWebhookConfiguration",
            ResourceKind::Secret => "Secret",
            ResourceKind::Role => "Role",
            ResourceKind::RoleBinding => "RoleBinding",
            ResourceKind::ClusterRole => "ClusterRole",
            ResourceKind::ClusterRoleBinding => "ClusterRoleBinding",
        }
    }

    /// Parse a manifest `kind` string.
    pub fn parse(text: &str) -> Option<ResourceKind> {
        ResourceKind::ALL.into_iter().find(|k| k.as_str() == text)
    }

    /// The lowercase plural resource name used in API paths and RBAC rules
    /// (e.g. `deployments`).
    pub fn plural(&self) -> &'static str {
        match self {
            ResourceKind::Deployment => "deployments",
            ResourceKind::StatefulSet => "statefulsets",
            ResourceKind::Pod => "pods",
            ResourceKind::Job => "jobs",
            ResourceKind::CronJob => "cronjobs",
            ResourceKind::Service => "services",
            ResourceKind::ConfigMap => "configmaps",
            ResourceKind::NetworkPolicy => "networkpolicies",
            ResourceKind::Ingress => "ingresses",
            ResourceKind::IngressClass => "ingressclasses",
            ResourceKind::ServiceAccount => "serviceaccounts",
            ResourceKind::HorizontalPodAutoscaler => "horizontalpodautoscalers",
            ResourceKind::PodDisruptionBudget => "poddisruptionbudgets",
            ResourceKind::PersistentVolumeClaim => "persistentvolumeclaims",
            ResourceKind::ValidatingWebhookConfiguration => "validatingwebhookconfigurations",
            ResourceKind::Secret => "secrets",
            ResourceKind::Role => "roles",
            ResourceKind::RoleBinding => "rolebindings",
            ResourceKind::ClusterRole => "clusterroles",
            ResourceKind::ClusterRoleBinding => "clusterrolebindings",
        }
    }

    /// The group/version/kind served by the (simulated) API server for this
    /// resource kind.
    pub fn gvk(&self) -> GroupVersionKind {
        let (group, version) = match self {
            ResourceKind::Deployment | ResourceKind::StatefulSet => ("apps", "v1"),
            ResourceKind::Pod
            | ResourceKind::Service
            | ResourceKind::ConfigMap
            | ResourceKind::ServiceAccount
            | ResourceKind::PersistentVolumeClaim
            | ResourceKind::Secret => ("", "v1"),
            ResourceKind::Job | ResourceKind::CronJob => ("batch", "v1"),
            ResourceKind::NetworkPolicy | ResourceKind::Ingress | ResourceKind::IngressClass => {
                ("networking.k8s.io", "v1")
            }
            ResourceKind::HorizontalPodAutoscaler => ("autoscaling", "v2"),
            ResourceKind::PodDisruptionBudget => ("policy", "v1"),
            ResourceKind::ValidatingWebhookConfiguration => ("admissionregistration.k8s.io", "v1"),
            ResourceKind::Role
            | ResourceKind::RoleBinding
            | ResourceKind::ClusterRole
            | ResourceKind::ClusterRoleBinding => ("rbac.authorization.k8s.io", "v1"),
        };
        GroupVersionKind::new(group, version, self.as_str())
    }

    /// The API group (empty string for the core group), as used by RBAC rules.
    pub fn api_group(&self) -> String {
        self.gvk().group
    }

    /// Whether objects of this kind live in a namespace.
    pub fn is_namespaced(&self) -> bool {
        !matches!(
            self,
            ResourceKind::IngressClass
                | ResourceKind::ValidatingWebhookConfiguration
                | ResourceKind::ClusterRole
                | ResourceKind::ClusterRoleBinding
        )
    }

    /// Whether this kind embeds a Pod template (and therefore the full pod
    /// specification attack surface).
    pub fn has_pod_template(&self) -> bool {
        matches!(
            self,
            ResourceKind::Deployment
                | ResourceKind::StatefulSet
                | ResourceKind::Job
                | ResourceKind::CronJob
        )
    }

    /// Whether this kind carries a pod specification either directly (`Pod`)
    /// or through a template.
    pub fn carries_pod_spec(&self) -> bool {
        *self == ResourceKind::Pod || self.has_pod_template()
    }

    /// The URL path prefix of the collection endpoint for this kind in a given
    /// namespace (or at cluster scope for non-namespaced kinds).
    pub fn collection_path(&self, namespace: &str) -> String {
        let gvk = self.gvk();
        let api_root = if gvk.group.is_empty() {
            format!("/api/{}", gvk.version)
        } else {
            format!("/apis/{}/{}", gvk.group, gvk.version)
        };
        if self.is_namespaced() {
            format!("{api_root}/namespaces/{namespace}/{}", self.plural())
        } else {
            format!("{api_root}/{}", self.plural())
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_twenty_endpoints() {
        assert_eq!(ResourceKind::ALL.len(), 20);
        assert_eq!(ResourceKind::COUNT, 20);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; ResourceKind::COUNT];
        for kind in ResourceKind::ALL {
            let index = kind.index();
            assert!(index < ResourceKind::COUNT);
            assert!(!seen[index], "duplicate index {index}");
            seen[index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kind_strings_roundtrip() {
        for k in ResourceKind::ALL {
            assert_eq!(ResourceKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(ResourceKind::parse("FooBar"), None);
    }

    #[test]
    fn plural_names_are_lowercase_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for k in ResourceKind::ALL {
            assert_eq!(k.plural(), k.plural().to_lowercase());
            assert!(seen.insert(k.plural()), "duplicate plural {}", k.plural());
        }
    }

    #[test]
    fn pod_template_kinds_carry_pod_spec() {
        assert!(ResourceKind::Deployment.has_pod_template());
        assert!(ResourceKind::Pod.carries_pod_spec());
        assert!(!ResourceKind::Pod.has_pod_template());
        assert!(!ResourceKind::Service.carries_pod_spec());
    }

    #[test]
    fn collection_paths_follow_api_conventions() {
        assert_eq!(
            ResourceKind::Pod.collection_path("default"),
            "/api/v1/namespaces/default/pods"
        );
        assert_eq!(
            ResourceKind::Deployment.collection_path("prod"),
            "/apis/apps/v1/namespaces/prod/deployments"
        );
        assert_eq!(
            ResourceKind::ClusterRole.collection_path("ignored"),
            "/apis/rbac.authorization.k8s.io/v1/clusterroles"
        );
    }

    #[test]
    fn namespaced_flag_matches_kind_semantics() {
        assert!(ResourceKind::Pod.is_namespaced());
        assert!(!ResourceKind::ClusterRoleBinding.is_namespaced());
        assert!(!ResourceKind::ValidatingWebhookConfiguration.is_namespaced());
    }
}
