//! Error type for manifest interpretation.

use std::fmt;

/// Error produced while interpreting a manifest as a Kubernetes object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The manifest is missing a required top-level field (`kind`,
    /// `apiVersion`, `metadata.name`, …).
    MissingField {
        /// Dotted path of the missing field.
        field: String,
    },
    /// The manifest names a resource kind this model does not know about.
    UnknownKind {
        /// The offending `kind` value.
        kind: String,
    },
    /// A field had an unexpected type.
    InvalidField {
        /// Dotted path of the field.
        field: String,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MissingField { field } => write!(f, "manifest is missing field `{field}`"),
            Error::UnknownKind { kind } => write!(f, "unknown resource kind `{kind}`"),
            Error::InvalidField { field, message } => {
                write!(f, "invalid field `{field}`: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}
