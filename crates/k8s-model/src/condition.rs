//! Field references and conditions over manifests.
//!
//! The paper's catalog of malicious specifications (Table II) names the
//! *targeted API field* of each exploit or misconfiguration relative to the
//! pod specification (e.g. `containers.volumeMounts.subPath`) or to the
//! resource specification (e.g. `externalIPs` on a Service). This module
//! provides the shared machinery to resolve such references against concrete
//! manifests and to evaluate trigger conditions, used both by the CVE-trigger
//! simulation in the API server and by the attack catalog.

use serde::{Deserialize, Serialize};

use kf_yaml::Value;

use crate::{K8sObject, ResourceKind};

/// Where a field reference is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldScope {
    /// Relative to the pod specification of the resource (resolved through
    /// `spec`, `spec.template.spec` or `spec.jobTemplate.spec.template.spec`
    /// depending on the kind).
    PodSpec,
    /// Relative to the resource root (e.g. `spec.externalIPs` on a Service).
    Resource,
}

/// A reference to a specification field in collapsed field notation
/// (`containers[].securityContext.privileged`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldRef {
    /// Anchor of the reference.
    pub scope: FieldScope,
    /// Collapsed field-notation path relative to the anchor.
    pub path: String,
}

impl FieldRef {
    /// A pod-spec-relative reference.
    pub fn pod_spec(path: impl Into<String>) -> Self {
        FieldRef {
            scope: FieldScope::PodSpec,
            path: path.into(),
        }
    }

    /// A resource-root-relative reference.
    pub fn resource(path: impl Into<String>) -> Self {
        FieldRef {
            scope: FieldScope::Resource,
            path: path.into(),
        }
    }

    /// The manifest prefix under which the pod specification lives for a given
    /// resource kind, or `None` if the kind does not carry a pod spec.
    pub fn pod_spec_prefix(kind: ResourceKind) -> Option<&'static str> {
        match kind {
            ResourceKind::Pod => Some("spec"),
            ResourceKind::Deployment | ResourceKind::StatefulSet | ResourceKind::Job => {
                Some("spec.template.spec")
            }
            ResourceKind::CronJob => Some("spec.jobTemplate.spec.template.spec"),
            _ => None,
        }
    }

    /// Resolve the reference against an object, returning every matching value
    /// (sequence markers `[]` fan out over all elements).
    pub fn resolve<'a>(&self, object: &'a K8sObject) -> Vec<&'a Value> {
        let (root, relative) = match self.scope {
            FieldScope::Resource => (Some(object.body()), self.path.as_str()),
            FieldScope::PodSpec => {
                let Some(prefix) = Self::pod_spec_prefix(object.kind()) else {
                    return Vec::new();
                };
                let root = lookup_collapsed(object.body(), prefix).into_iter().next();
                (root, self.path.as_str())
            }
        };
        match root {
            Some(root) => lookup_collapsed(root, relative),
            None => Vec::new(),
        }
    }

    /// The absolute collapsed path of this reference on a manifest of `kind`,
    /// or `None` when the kind has no pod spec to anchor a pod-scoped path.
    pub fn absolute_path(&self, kind: ResourceKind) -> Option<String> {
        match self.scope {
            FieldScope::Resource => Some(self.path.clone()),
            FieldScope::PodSpec => Self::pod_spec_prefix(kind).map(|prefix| {
                format!("{prefix}.{}", self.path).replace(".template.spec.", ".template.spec.")
            }),
        }
    }
}

/// Resolve a collapsed field-notation path against a document, fanning out
/// over sequences at `[]` markers.
pub fn lookup_collapsed<'a>(root: &'a Value, notation: &str) -> Vec<&'a Value> {
    let mut current: Vec<&Value> = vec![root];
    if notation.is_empty() {
        return current;
    }
    for raw_segment in notation.split('.') {
        let (key, fanouts) = split_segment(raw_segment);
        let mut next: Vec<&Value> = Vec::new();
        for value in current {
            let mut candidates: Vec<&Value> = if key.is_empty() {
                vec![value]
            } else {
                match value.get(key) {
                    Some(v) => vec![v],
                    None => continue,
                }
            };
            for _ in 0..fanouts {
                candidates = candidates
                    .into_iter()
                    .flat_map(|v| {
                        v.as_seq()
                            .map(|s| s.iter().collect::<Vec<_>>())
                            .unwrap_or_default()
                    })
                    .collect();
            }
            next.extend(candidates);
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Split a collapsed segment (`containers[]` → (`containers`, 1 fan-out)).
fn split_segment(segment: &str) -> (&str, usize) {
    let mut key = segment;
    let mut fanouts = 0;
    while key.ends_with("[]") {
        key = &key[..key.len() - 2];
        fanouts += 1;
    }
    (key, fanouts)
}

/// The check applied to a referenced field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldCheck {
    /// The field is present (with any value).
    Present,
    /// The field is absent from the manifest.
    Absent,
    /// The field is present and equal to the given value.
    Equals(Value),
    /// The field is present and equal to one of the given values.
    OneOf(Vec<Value>),
    /// The field is a sequence containing the given value.
    Contains(Value),
    /// The field is present and its subtree nests deeper than the given
    /// number of levels (used for payload-shape exploits such as the
    /// "billion laughs" CVE-2019-11253).
    DeeperThan(usize),
}

/// Nesting depth of a value (scalars have depth 0).
fn nesting_depth(value: &Value) -> usize {
    match value {
        Value::Map(map) => 1 + map.values().map(nesting_depth).max().unwrap_or(0),
        Value::Seq(seq) => 1 + seq.iter().map(nesting_depth).max().unwrap_or(0),
        _ => 0,
    }
}

/// A condition over a manifest: a field reference plus a check.
///
/// Conditions describe both *when a CVE's vulnerable code is exercised* and
/// *when a specification is considered misconfigured*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldCondition {
    /// The referenced field.
    pub field: FieldRef,
    /// The check applied to the field.
    pub check: FieldCheck,
}

impl FieldCondition {
    /// Condition: the referenced pod-spec field is present.
    pub fn pod_field_present(path: &str) -> Self {
        FieldCondition {
            field: FieldRef::pod_spec(path),
            check: FieldCheck::Present,
        }
    }

    /// Condition: the referenced pod-spec field equals `value`.
    pub fn pod_field_equals(path: &str, value: impl Into<Value>) -> Self {
        FieldCondition {
            field: FieldRef::pod_spec(path),
            check: FieldCheck::Equals(value.into()),
        }
    }

    /// Condition: the referenced resource field is present.
    pub fn resource_field_present(path: &str) -> Self {
        FieldCondition {
            field: FieldRef::resource(path),
            check: FieldCheck::Present,
        }
    }

    /// Evaluate the condition against an object.
    ///
    /// For `Absent`, the condition only holds when the object actually carries
    /// a pod specification (or, for resource scope, always) and the field is
    /// missing from every matching location.
    pub fn evaluate(&self, object: &K8sObject) -> bool {
        let matches = self.field.resolve(object);
        match &self.check {
            FieldCheck::Present => !matches.is_empty(),
            FieldCheck::Absent => {
                let anchored = match self.field.scope {
                    FieldScope::Resource => true,
                    FieldScope::PodSpec => FieldRef::pod_spec_prefix(object.kind()).is_some(),
                };
                anchored && matches.is_empty()
            }
            FieldCheck::Equals(expected) => matches.iter().any(|v| v.loosely_equals(expected)),
            FieldCheck::OneOf(options) => matches
                .iter()
                .any(|v| options.iter().any(|o| v.loosely_equals(o))),
            FieldCheck::Contains(needle) => matches.iter().any(|v| {
                v.as_seq()
                    .map(|s| s.iter().any(|item| item.loosely_equals(needle)))
                    .unwrap_or(false)
            }),
            FieldCheck::DeeperThan(depth) => matches.iter().any(|v| nesting_depth(v) > *depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEPLOYMENT: &str = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: web
spec:
  template:
    spec:
      hostNetwork: true
      containers:
        - name: a
          image: nginx
          securityContext:
            privileged: false
          volumeMounts:
            - name: data
              mountPath: /data
        - name: b
          image: sidecar
          volumeMounts:
            - name: data
              mountPath: /cache
              subPath: inner
"#;

    const SERVICE: &str = r#"apiVersion: v1
kind: Service
metadata:
  name: svc
spec:
  type: LoadBalancer
  externalIPs:
    - 203.0.113.7
  ports:
    - port: 80
"#;

    fn deployment() -> K8sObject {
        K8sObject::from_yaml(DEPLOYMENT).unwrap()
    }

    #[test]
    fn collapsed_lookup_fans_out_over_sequences() {
        let obj = deployment();
        let hits = lookup_collapsed(obj.body(), "spec.template.spec.containers[].image");
        assert_eq!(hits.len(), 2);
        let sub = lookup_collapsed(
            obj.body(),
            "spec.template.spec.containers[].volumeMounts[].subPath",
        );
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].as_str(), Some("inner"));
    }

    #[test]
    fn pod_scope_resolves_through_the_template() {
        let obj = deployment();
        let cond = FieldCondition::pod_field_equals("hostNetwork", true);
        assert!(cond.evaluate(&obj));
        let cond = FieldCondition::pod_field_present("containers[].volumeMounts[].subPath");
        assert!(cond.evaluate(&obj));
        let cond =
            FieldCondition::pod_field_equals("containers[].securityContext.privileged", true);
        assert!(!cond.evaluate(&obj));
    }

    #[test]
    fn resource_scope_resolves_from_the_root() {
        let svc = K8sObject::from_yaml(SERVICE).unwrap();
        let cond = FieldCondition::resource_field_present("spec.externalIPs");
        assert!(cond.evaluate(&svc));
        let contains = FieldCondition {
            field: FieldRef::resource("spec.externalIPs"),
            check: FieldCheck::Contains(Value::from("203.0.113.7")),
        };
        assert!(contains.evaluate(&svc));
    }

    #[test]
    fn absent_check_requires_a_pod_spec_anchor() {
        let obj = deployment();
        let absent = FieldCondition {
            field: FieldRef::pod_spec("containers[].resources.limits"),
            check: FieldCheck::Absent,
        };
        assert!(absent.evaluate(&obj));
        // A Service has no pod spec; a pod-scoped Absent check must not fire.
        let svc = K8sObject::from_yaml(SERVICE).unwrap();
        assert!(!absent.evaluate(&svc));
    }

    #[test]
    fn pod_spec_prefix_matches_kind_shape() {
        assert_eq!(FieldRef::pod_spec_prefix(ResourceKind::Pod), Some("spec"));
        assert_eq!(
            FieldRef::pod_spec_prefix(ResourceKind::CronJob),
            Some("spec.jobTemplate.spec.template.spec")
        );
        assert_eq!(FieldRef::pod_spec_prefix(ResourceKind::Secret), None);
    }

    #[test]
    fn one_of_check_matches_any_listed_value() {
        let obj = deployment();
        let cond = FieldCondition {
            field: FieldRef::pod_spec("containers[].image"),
            check: FieldCheck::OneOf(vec![Value::from("sidecar"), Value::from("other")]),
        };
        assert!(cond.evaluate(&obj));
    }
}
