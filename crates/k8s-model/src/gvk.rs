//! Group/version/kind identifiers and API verbs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The HTTP-level verbs accepted by the Kubernetes API server, as used by
//  RBAC rules and audit events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Verb {
    Get,
    List,
    Watch,
    Create,
    Update,
    Patch,
    Delete,
    DeleteCollection,
}

impl Verb {
    /// All verbs, in the conventional ordering.
    pub const ALL: [Verb; 8] = [
        Verb::Get,
        Verb::List,
        Verb::Watch,
        Verb::Create,
        Verb::Update,
        Verb::Patch,
        Verb::Delete,
        Verb::DeleteCollection,
    ];

    /// The lowercase name used in RBAC rules and audit logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verb::Get => "get",
            Verb::List => "list",
            Verb::Watch => "watch",
            Verb::Create => "create",
            Verb::Update => "update",
            Verb::Patch => "patch",
            Verb::Delete => "delete",
            Verb::DeleteCollection => "deletecollection",
        }
    }

    /// Parse the lowercase RBAC verb name.
    pub fn parse(text: &str) -> Option<Verb> {
        Verb::ALL.into_iter().find(|v| v.as_str() == text)
    }

    /// Whether the verb mutates cluster state (create/update/patch/delete).
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            Verb::Create | Verb::Update | Verb::Patch | Verb::Delete | Verb::DeleteCollection
        )
    }

    /// The HTTP method corresponding to this verb on a resource endpoint.
    pub fn http_method(&self) -> &'static str {
        match self {
            Verb::Get | Verb::List | Verb::Watch => "GET",
            Verb::Create => "POST",
            Verb::Update => "PUT",
            Verb::Patch => "PATCH",
            Verb::Delete | Verb::DeleteCollection => "DELETE",
        }
    }
}

impl fmt::Display for Verb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A Kubernetes group/version/kind triple, e.g. `apps/v1 Deployment`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupVersionKind {
    /// API group (empty string for the core group).
    pub group: String,
    /// API version, e.g. `v1`.
    pub version: String,
    /// Object kind, e.g. `Deployment`.
    pub kind: String,
}

impl GroupVersionKind {
    /// Build a GVK from its parts.
    pub fn new(group: &str, version: &str, kind: &str) -> Self {
        GroupVersionKind {
            group: group.to_owned(),
            version: version.to_owned(),
            kind: kind.to_owned(),
        }
    }

    /// The `apiVersion` manifest value (`group/version`, or just `version`
    /// for the core group).
    pub fn api_version(&self) -> String {
        if self.group.is_empty() {
            self.version.clone()
        } else {
            format!("{}/{}", self.group, self.version)
        }
    }

    /// Parse an `apiVersion` + `kind` pair as found in manifests.
    pub fn from_api_version(api_version: &str, kind: &str) -> Self {
        match api_version.split_once('/') {
            Some((group, version)) => GroupVersionKind::new(group, version, kind),
            None => GroupVersionKind::new("", api_version, kind),
        }
    }
}

impl fmt::Display for GroupVersionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.api_version(), self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_roundtrip_through_names() {
        for v in Verb::ALL {
            assert_eq!(Verb::parse(v.as_str()), Some(v));
        }
        assert_eq!(Verb::parse("explode"), None);
    }

    #[test]
    fn mutating_verbs_map_to_writing_http_methods() {
        assert!(Verb::Create.is_mutating());
        assert!(!Verb::Get.is_mutating());
        assert_eq!(Verb::Create.http_method(), "POST");
        assert_eq!(Verb::List.http_method(), "GET");
        assert_eq!(Verb::Delete.http_method(), "DELETE");
    }

    #[test]
    fn gvk_api_version_formats_core_and_named_groups() {
        let core = GroupVersionKind::new("", "v1", "Pod");
        assert_eq!(core.api_version(), "v1");
        let apps = GroupVersionKind::new("apps", "v1", "Deployment");
        assert_eq!(apps.api_version(), "apps/v1");
        assert_eq!(apps.to_string(), "apps/v1 Deployment");
    }

    #[test]
    fn gvk_parses_from_api_version() {
        let gvk = GroupVersionKind::from_api_version("networking.k8s.io/v1", "Ingress");
        assert_eq!(gvk.group, "networking.k8s.io");
        assert_eq!(gvk.version, "v1");
        let core = GroupVersionKind::from_api_version("v1", "Service");
        assert_eq!(core.group, "");
    }
}
