//! Object metadata (`metadata:` block of a manifest).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use kf_yaml::{Mapping, Value};

/// The subset of `ObjectMeta` relevant to this reproduction: name, namespace,
/// labels and annotations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object name (unique per kind and namespace).
    pub name: String,
    /// Namespace; empty for cluster-scoped objects.
    pub namespace: String,
    /// Free-form labels.
    pub labels: BTreeMap<String, String>,
    /// Free-form annotations.
    pub annotations: BTreeMap<String, String>,
}

impl ObjectMeta {
    /// Metadata with just a name (namespace defaults to `default` when the
    /// object is created through the API server).
    pub fn named(name: impl Into<String>) -> Self {
        ObjectMeta {
            name: name.into(),
            ..ObjectMeta::default()
        }
    }

    /// Metadata with a name and namespace.
    pub fn namespaced(name: impl Into<String>, namespace: impl Into<String>) -> Self {
        ObjectMeta {
            name: name.into(),
            namespace: namespace.into(),
            ..ObjectMeta::default()
        }
    }

    /// Add a label, builder style.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// Extract metadata from a manifest `metadata:` node. Missing maps are
    /// treated as empty; a missing name yields an empty string (callers that
    /// require a name validate separately).
    pub fn from_value(value: Option<&Value>) -> Self {
        let mut meta = ObjectMeta::default();
        let Some(map) = value.and_then(Value::as_map) else {
            return meta;
        };
        if let Some(name) = map.get("name").and_then(Value::as_str) {
            meta.name = name.to_owned();
        }
        if let Some(ns) = map.get("namespace").and_then(Value::as_str) {
            meta.namespace = ns.to_owned();
        }
        for (target, key) in [("labels", true), ("annotations", false)] {
            if let Some(entries) = map.get(target).and_then(Value::as_map) {
                for (k, v) in entries.iter() {
                    let text = v.scalar_to_string();
                    if key {
                        meta.labels.insert(k.to_owned(), text);
                    } else {
                        meta.annotations.insert(k.to_owned(), text);
                    }
                }
            }
        }
        meta
    }

    /// Convert back into a manifest `metadata:` node.
    pub fn to_value(&self) -> Value {
        let mut map = Mapping::new();
        map.insert("name", Value::from(self.name.clone()));
        if !self.namespace.is_empty() {
            map.insert("namespace", Value::from(self.namespace.clone()));
        }
        if !self.labels.is_empty() {
            let mut labels = Mapping::new();
            for (k, v) in &self.labels {
                labels.insert(k.clone(), Value::from(v.clone()));
            }
            map.insert("labels", Value::Map(labels));
        }
        if !self.annotations.is_empty() {
            let mut annotations = Mapping::new();
            for (k, v) in &self.annotations {
                annotations.insert(k.clone(), Value::from(v.clone()));
            }
            map.insert("annotations", Value::Map(annotations));
        }
        Value::Map(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kf_yaml::parse;

    #[test]
    fn parses_metadata_from_manifest() {
        let doc = parse(
            "metadata:\n  name: web\n  namespace: prod\n  labels:\n    app: nginx\n    tier: front\n  annotations:\n    checksum: abc123\n",
        )
        .unwrap();
        let meta = ObjectMeta::from_value(doc.get("metadata"));
        assert_eq!(meta.name, "web");
        assert_eq!(meta.namespace, "prod");
        assert_eq!(meta.labels.get("app").map(String::as_str), Some("nginx"));
        assert_eq!(
            meta.annotations.get("checksum").map(String::as_str),
            Some("abc123")
        );
    }

    #[test]
    fn missing_metadata_yields_defaults() {
        let meta = ObjectMeta::from_value(None);
        assert_eq!(meta.name, "");
        assert!(meta.labels.is_empty());
    }

    #[test]
    fn to_value_roundtrips() {
        let meta = ObjectMeta::namespaced("db", "staging").with_label("app", "postgres");
        let value = meta.to_value();
        let back = ObjectMeta::from_value(Some(&value));
        assert_eq!(back, meta);
    }

    #[test]
    fn empty_namespace_is_omitted_from_value() {
        let meta = ObjectMeta::named("x");
        let value = meta.to_value();
        assert!(value.get("namespace").is_none());
    }
}
