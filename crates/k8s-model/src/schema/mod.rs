//! The field-schema catalog: the configurable specification fields exposed by
//! every API endpoint (resource kind).
//!
//! The paper quantifies the Kubernetes attack surface by counting the
//! configurable fields of each endpoint (4,882 fields over the 20 endpoints
//! of Figure 9) and measuring which fraction each workload actually uses.
//! This module reproduces that catalog: a tree of [`FieldNode`]s per kind,
//! mirroring the structure of the upstream OpenAPI schema for the fields that
//! matter to the evaluation.
//!
//! The catalog is deliberately *data*, not behaviour: the API server uses it
//! to reject unknown kinds, the attack-surface analyzer uses it as the
//! denominator of Table I, and the validator generator uses it to resolve
//! pod-spec-relative security locks.

mod catalog;
mod fields;
mod podspec;

pub use catalog::{catalog, SchemaCatalog};
pub use fields::{FieldKind, FieldNode, KindSchema, ScalarType};
pub use podspec::{container_schema, pod_spec_schema, pod_template_schema};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceKind;

    #[test]
    fn catalog_covers_all_twenty_endpoints() {
        let cat = catalog();
        for kind in ResourceKind::ALL {
            assert!(cat.fields_for(kind).is_some(), "missing schema for {kind}");
        }
    }

    #[test]
    fn total_field_count_matches_paper_magnitude() {
        // The paper reports 4,882 configurable fields across the endpoints.
        // Our catalog is built from the same OpenAPI structure but is not a
        // byte-for-byte copy; it must land in the same order of magnitude.
        let total = catalog().total_field_count();
        assert!(
            (3500..6500).contains(&total),
            "total configurable fields = {total}, expected thousands"
        );
    }

    #[test]
    fn pod_carrying_kinds_dominate_the_surface() {
        let cat = catalog();
        let pod = cat.fields_for(ResourceKind::Pod).unwrap().field_count();
        let secret = cat.fields_for(ResourceKind::Secret).unwrap().field_count();
        assert!(pod > 10 * secret, "pod = {pod}, secret = {secret}");
    }

    #[test]
    fn known_attack_fields_are_in_the_catalog() {
        let cat = catalog();
        let deployment = cat.fields_for(ResourceKind::Deployment).unwrap();
        for path in [
            "spec.template.spec.hostNetwork",
            "spec.template.spec.containers[].securityContext.privileged",
            "spec.template.spec.containers[].volumeMounts[].subPath",
            "spec.template.spec.containers[].securityContext.seccompProfile.localhostProfile",
        ] {
            assert!(
                deployment.contains_field(path),
                "deployment schema must contain {path}"
            );
        }
        let service = cat.fields_for(ResourceKind::Service).unwrap();
        assert!(service.contains_field("spec.externalIPs"));
    }

    #[test]
    fn field_paths_are_unique_per_kind() {
        let cat = catalog();
        for kind in ResourceKind::ALL {
            let schema = cat.fields_for(kind).unwrap();
            let mut paths = schema.field_paths();
            let before = paths.len();
            paths.sort();
            paths.dedup();
            assert_eq!(before, paths.len(), "duplicate field paths for {kind}");
        }
    }
}
