//! Per-kind schemas and the catalog over all twenty endpoints.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use super::fields::{FieldNode, KindSchema, ScalarType};
use super::podspec::{metadata_schema, pod_spec_schema, pod_template_schema};
use crate::ResourceKind;

fn s(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::String)
}
fn i(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Int)
}
fn b(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Bool)
}
fn q(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Quantity)
}
fn ip(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Ip)
}
fn port(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Port)
}
fn sarr(name: &str) -> FieldNode {
    FieldNode::scalar_array(name, ScalarType::String)
}
fn smap(name: &str) -> FieldNode {
    FieldNode::string_map(name)
}
fn obj(name: &str, children: Vec<FieldNode>) -> FieldNode {
    FieldNode::object(name, children)
}
fn arr(name: &str, children: Vec<FieldNode>) -> FieldNode {
    FieldNode::array(name, children)
}

fn label_selector(name: &str) -> FieldNode {
    obj(
        name,
        vec![
            smap("matchLabels"),
            arr(
                "matchExpressions",
                vec![s("key"), s("operator"), sarr("values")],
            ),
        ],
    )
}

/// The catalog of field schemas for every endpoint.
#[derive(Debug, Clone)]
pub struct SchemaCatalog {
    schemas: BTreeMap<ResourceKind, KindSchema>,
}

impl SchemaCatalog {
    fn build() -> Self {
        let mut schemas = BTreeMap::new();
        for kind in ResourceKind::ALL {
            schemas.insert(kind, build_kind_schema(kind));
        }
        SchemaCatalog { schemas }
    }

    /// The schema for a kind.
    pub fn fields_for(&self, kind: ResourceKind) -> Option<&KindSchema> {
        self.schemas.get(&kind)
    }

    /// Total configurable fields across every endpoint (the denominator of
    /// Table I).
    pub fn total_field_count(&self) -> usize {
        self.schemas.values().map(KindSchema::field_count).sum()
    }

    /// Field counts per kind, in Figure 9 column order.
    pub fn per_kind_counts(&self) -> Vec<(ResourceKind, usize)> {
        ResourceKind::ALL
            .iter()
            .map(|k| (*k, self.schemas[k].field_count()))
            .collect()
    }

    /// Iterate over all kind schemas.
    pub fn iter(&self) -> impl Iterator<Item = (&ResourceKind, &KindSchema)> {
        self.schemas.iter()
    }
}

/// The lazily-built global catalog. Building the pod spec schema is cheap but
/// not free, and the catalog is read-only, so it is shared.
pub fn catalog() -> &'static SchemaCatalog {
    static CATALOG: OnceLock<SchemaCatalog> = OnceLock::new();
    CATALOG.get_or_init(SchemaCatalog::build)
}

fn build_kind_schema(kind: ResourceKind) -> KindSchema {
    let fields = match kind {
        ResourceKind::Pod => vec![metadata_schema(), obj("spec", pod_spec_schema())],
        ResourceKind::Deployment => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    i("replicas"),
                    label_selector("selector"),
                    pod_template_schema(),
                    obj(
                        "strategy",
                        vec![
                            s("type"),
                            obj("rollingUpdate", vec![q("maxUnavailable"), q("maxSurge")]),
                        ],
                    ),
                    i("minReadySeconds"),
                    i("revisionHistoryLimit"),
                    b("paused"),
                    i("progressDeadlineSeconds"),
                ],
            ),
        ],
        ResourceKind::StatefulSet => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    i("replicas"),
                    label_selector("selector"),
                    pod_template_schema(),
                    arr(
                        "volumeClaimTemplates",
                        vec![
                            metadata_schema(),
                            obj(
                                "spec",
                                vec![
                                    sarr("accessModes"),
                                    label_selector("selector"),
                                    obj(
                                        "resources",
                                        vec![
                                            obj("requests", vec![q("storage")]),
                                            obj("limits", vec![q("storage")]),
                                        ],
                                    ),
                                    s("volumeName"),
                                    s("storageClassName"),
                                    s("volumeMode"),
                                ],
                            ),
                        ],
                    ),
                    s("serviceName"),
                    s("podManagementPolicy"),
                    obj(
                        "updateStrategy",
                        vec![
                            s("type"),
                            obj("rollingUpdate", vec![i("partition"), q("maxUnavailable")]),
                        ],
                    ),
                    i("revisionHistoryLimit"),
                    i("minReadySeconds"),
                    obj(
                        "persistentVolumeClaimRetentionPolicy",
                        vec![s("whenDeleted"), s("whenScaled")],
                    ),
                    obj("ordinals", vec![i("start")]),
                ],
            ),
        ],
        ResourceKind::Job => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    i("parallelism"),
                    i("completions"),
                    i("activeDeadlineSeconds"),
                    obj(
                        "podFailurePolicy",
                        vec![arr(
                            "rules",
                            vec![
                                s("action"),
                                obj(
                                    "onExitCodes",
                                    vec![
                                        s("containerName"),
                                        s("operator"),
                                        FieldNode::scalar_array("values", ScalarType::Int),
                                    ],
                                ),
                                arr("onPodConditions", vec![s("type"), s("status")]),
                            ],
                        )],
                    ),
                    i("backoffLimit"),
                    i("backoffLimitPerIndex"),
                    i("maxFailedIndexes"),
                    label_selector("selector"),
                    b("manualSelector"),
                    pod_template_schema(),
                    i("ttlSecondsAfterFinished"),
                    s("completionMode"),
                    b("suspend"),
                    s("podReplacementPolicy"),
                ],
            ),
        ],
        ResourceKind::CronJob => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    s("schedule"),
                    s("timeZone"),
                    i("startingDeadlineSeconds"),
                    s("concurrencyPolicy"),
                    b("suspend"),
                    obj(
                        "jobTemplate",
                        vec![
                            metadata_schema(),
                            obj(
                                "spec",
                                vec![
                                    i("parallelism"),
                                    i("completions"),
                                    i("activeDeadlineSeconds"),
                                    i("backoffLimit"),
                                    label_selector("selector"),
                                    b("manualSelector"),
                                    pod_template_schema(),
                                    i("ttlSecondsAfterFinished"),
                                    s("completionMode"),
                                    b("suspend"),
                                ],
                            ),
                        ],
                    ),
                    i("successfulJobsHistoryLimit"),
                    i("failedJobsHistoryLimit"),
                ],
            ),
        ],
        ResourceKind::Service => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    arr(
                        "ports",
                        vec![
                            s("name"),
                            s("protocol"),
                            s("appProtocol"),
                            port("port"),
                            port("targetPort"),
                            port("nodePort"),
                        ],
                    ),
                    smap("selector"),
                    ip("clusterIP"),
                    FieldNode::scalar_array("clusterIPs", ScalarType::Ip),
                    s("type"),
                    FieldNode::scalar_array("externalIPs", ScalarType::Ip).sensitive(),
                    s("sessionAffinity"),
                    ip("loadBalancerIP"),
                    FieldNode::scalar_array("loadBalancerSourceRanges", ScalarType::Ip),
                    s("externalName"),
                    s("externalTrafficPolicy"),
                    port("healthCheckNodePort"),
                    b("publishNotReadyAddresses"),
                    obj(
                        "sessionAffinityConfig",
                        vec![obj("clientIP", vec![i("timeoutSeconds")])],
                    ),
                    sarr("ipFamilies"),
                    s("ipFamilyPolicy"),
                    b("allocateLoadBalancerNodePorts"),
                    s("loadBalancerClass"),
                    s("internalTrafficPolicy"),
                ],
            ),
        ],
        ResourceKind::ConfigMap => vec![
            metadata_schema(),
            smap("data"),
            smap("binaryData"),
            b("immutable"),
        ],
        ResourceKind::NetworkPolicy => {
            let peer = vec![
                label_selector("podSelector"),
                label_selector("namespaceSelector"),
                obj(
                    "ipBlock",
                    vec![
                        ip("cidr"),
                        FieldNode::scalar_array("except", ScalarType::Ip),
                    ],
                ),
            ];
            let ports = arr("ports", vec![s("protocol"), port("port"), port("endPort")]);
            vec![
                metadata_schema(),
                obj(
                    "spec",
                    vec![
                        label_selector("podSelector"),
                        arr("ingress", vec![ports.clone(), arr("from", peer.clone())]),
                        arr("egress", vec![ports, arr("to", peer)]),
                        sarr("policyTypes"),
                    ],
                ),
            ]
        }
        ResourceKind::Ingress => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    s("ingressClassName"),
                    obj(
                        "defaultBackend",
                        vec![
                            obj(
                                "service",
                                vec![s("name"), obj("port", vec![s("name"), port("number")])],
                            ),
                            obj("resource", vec![s("apiGroup"), s("kind"), s("name")]),
                        ],
                    ),
                    arr("tls", vec![sarr("hosts"), s("secretName")]),
                    arr(
                        "rules",
                        vec![
                            s("host"),
                            obj(
                                "http",
                                vec![arr(
                                    "paths",
                                    vec![
                                        s("path"),
                                        s("pathType"),
                                        obj(
                                            "backend",
                                            vec![
                                                obj(
                                                    "service",
                                                    vec![
                                                        s("name"),
                                                        obj(
                                                            "port",
                                                            vec![s("name"), port("number")],
                                                        ),
                                                    ],
                                                ),
                                                obj(
                                                    "resource",
                                                    vec![s("apiGroup"), s("kind"), s("name")],
                                                ),
                                            ],
                                        ),
                                    ],
                                )],
                            ),
                        ],
                    ),
                ],
            ),
        ],
        ResourceKind::IngressClass => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    s("controller"),
                    obj(
                        "parameters",
                        vec![
                            s("apiGroup"),
                            s("kind"),
                            s("name"),
                            s("namespace"),
                            s("scope"),
                        ],
                    ),
                ],
            ),
        ],
        ResourceKind::ServiceAccount => vec![
            metadata_schema(),
            arr(
                "secrets",
                vec![
                    s("name"),
                    s("namespace"),
                    s("kind"),
                    s("apiVersion"),
                    s("uid"),
                    s("fieldPath"),
                ],
            ),
            arr("imagePullSecrets", vec![s("name")]),
            b("automountServiceAccountToken").sensitive(),
        ],
        ResourceKind::HorizontalPodAutoscaler => {
            let metric_target = obj(
                "target",
                vec![
                    s("type"),
                    q("value"),
                    q("averageValue"),
                    i("averageUtilization"),
                ],
            );
            let metric_identifier = vec![s("name"), label_selector("selector")];
            let mut resource_metric = vec![s("name")];
            resource_metric.push(metric_target.clone());
            let mut object_metric = vec![obj(
                "describedObject",
                vec![s("apiVersion"), s("kind"), s("name")],
            )];
            object_metric.push(metric_target.clone());
            object_metric.push(obj("metric", metric_identifier.clone()));
            let mut pods_metric = vec![obj("metric", metric_identifier.clone())];
            pods_metric.push(metric_target.clone());
            let mut external_metric = vec![obj("metric", metric_identifier)];
            external_metric.push(metric_target);
            let scaling_rules = |name: &str| {
                obj(
                    name,
                    vec![
                        i("stabilizationWindowSeconds"),
                        s("selectPolicy"),
                        arr("policies", vec![s("type"), i("value"), i("periodSeconds")]),
                    ],
                )
            };
            vec![
                metadata_schema(),
                obj(
                    "spec",
                    vec![
                        obj(
                            "scaleTargetRef",
                            vec![s("apiVersion"), s("kind"), s("name")],
                        ),
                        i("minReplicas"),
                        i("maxReplicas"),
                        arr(
                            "metrics",
                            vec![
                                s("type"),
                                obj("resource", resource_metric),
                                obj("object", object_metric),
                                obj("pods", pods_metric),
                                obj("external", external_metric),
                                obj(
                                    "containerResource",
                                    vec![
                                        s("name"),
                                        s("container"),
                                        obj(
                                            "target",
                                            vec![
                                                s("type"),
                                                q("value"),
                                                q("averageValue"),
                                                i("averageUtilization"),
                                            ],
                                        ),
                                    ],
                                ),
                            ],
                        ),
                        obj(
                            "behavior",
                            vec![scaling_rules("scaleUp"), scaling_rules("scaleDown")],
                        ),
                    ],
                ),
            ]
        }
        ResourceKind::PodDisruptionBudget => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    q("minAvailable"),
                    label_selector("selector"),
                    q("maxUnavailable"),
                    s("unhealthyPodEvictionPolicy"),
                ],
            ),
        ],
        ResourceKind::PersistentVolumeClaim => vec![
            metadata_schema(),
            obj(
                "spec",
                vec![
                    sarr("accessModes"),
                    label_selector("selector"),
                    obj(
                        "resources",
                        vec![
                            obj("requests", vec![q("storage")]),
                            obj("limits", vec![q("storage")]),
                        ],
                    ),
                    s("volumeName"),
                    s("storageClassName"),
                    s("volumeMode"),
                    obj("dataSource", vec![s("apiGroup"), s("kind"), s("name")]),
                    obj(
                        "dataSourceRef",
                        vec![s("apiGroup"), s("kind"), s("name"), s("namespace")],
                    ),
                    s("volumeAttributesClassName"),
                ],
            ),
        ],
        ResourceKind::ValidatingWebhookConfiguration => vec![
            metadata_schema(),
            arr(
                "webhooks",
                vec![
                    s("name"),
                    obj(
                        "clientConfig",
                        vec![
                            s("url"),
                            obj(
                                "service",
                                vec![s("namespace"), s("name"), s("path"), port("port")],
                            ),
                            s("caBundle"),
                        ],
                    ),
                    arr(
                        "rules",
                        vec![
                            sarr("apiGroups"),
                            sarr("apiVersions"),
                            sarr("resources"),
                            sarr("operations"),
                            s("scope"),
                        ],
                    ),
                    s("failurePolicy"),
                    s("matchPolicy"),
                    label_selector("namespaceSelector"),
                    label_selector("objectSelector"),
                    s("sideEffects"),
                    i("timeoutSeconds"),
                    sarr("admissionReviewVersions"),
                    arr("matchConditions", vec![s("name"), s("expression")]),
                ],
            ),
        ],
        ResourceKind::Secret => vec![
            metadata_schema(),
            smap("data"),
            smap("stringData"),
            s("type"),
            b("immutable"),
        ],
        ResourceKind::Role | ResourceKind::ClusterRole => {
            let mut fields = vec![
                metadata_schema(),
                arr(
                    "rules",
                    vec![
                        sarr("apiGroups"),
                        sarr("resources"),
                        sarr("verbs").sensitive(),
                        sarr("resourceNames"),
                        sarr("nonResourceURLs"),
                    ],
                ),
            ];
            if kind == ResourceKind::ClusterRole {
                fields.push(obj(
                    "aggregationRule",
                    vec![arr(
                        "clusterRoleSelectors",
                        vec![
                            smap("matchLabels"),
                            arr(
                                "matchExpressions",
                                vec![s("key"), s("operator"), sarr("values")],
                            ),
                        ],
                    )],
                ));
            }
            fields
        }
        ResourceKind::RoleBinding | ResourceKind::ClusterRoleBinding => vec![
            metadata_schema(),
            arr(
                "subjects",
                vec![s("kind"), s("apiGroup"), s("name"), s("namespace")],
            ),
            obj("roleRef", vec![s("apiGroup"), s("kind"), s("name")]).sensitive(),
        ],
    };
    KindSchema::new(kind, fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kind_counts_are_positive_and_ordered_like_figure9() {
        let cat = catalog();
        let counts = cat.per_kind_counts();
        assert_eq!(counts.len(), 20);
        for (kind, count) in &counts {
            assert!(*count > 5, "{kind} has only {count} fields");
        }
    }

    #[test]
    fn workload_controllers_share_the_pod_template_surface() {
        let cat = catalog();
        let deployment = cat
            .fields_for(ResourceKind::Deployment)
            .unwrap()
            .field_count();
        let statefulset = cat
            .fields_for(ResourceKind::StatefulSet)
            .unwrap()
            .field_count();
        let job = cat.fields_for(ResourceKind::Job).unwrap().field_count();
        // They all embed the pod template, so their sizes are within ~15% of
        // each other.
        let max = deployment.max(statefulset).max(job) as f64;
        let min = deployment.min(statefulset).min(job) as f64;
        assert!(
            min / max > 0.85,
            "deployment={deployment} statefulset={statefulset} job={job}"
        );
    }

    #[test]
    fn service_schema_contains_external_ips_as_sensitive() {
        let cat = catalog();
        let svc = cat.fields_for(ResourceKind::Service).unwrap();
        assert!(svc
            .sensitive_paths()
            .contains(&"spec.externalIPs".to_string()));
    }

    #[test]
    fn rbac_kinds_have_rule_fields() {
        let cat = catalog();
        for kind in [ResourceKind::Role, ResourceKind::ClusterRole] {
            let schema = cat.fields_for(kind).unwrap();
            assert!(schema.contains_field("rules[].verbs"));
        }
        let binding = cat.fields_for(ResourceKind::RoleBinding).unwrap();
        assert!(binding.contains_field("roleRef.name"));
    }

    #[test]
    fn catalog_is_shared_and_stable() {
        let a = catalog().total_field_count();
        let b = catalog().total_field_count();
        assert_eq!(a, b);
    }
}
