//! Field-schema data structures.

use serde::{Deserialize, Serialize};

use crate::ResourceKind;

/// Scalar types that appear in Kubernetes specifications. These are also the
/// type placeholders used by KubeFence values schemas and validators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ScalarType {
    String,
    Int,
    Bool,
    Float,
    /// IP address (e.g. `0.0.0.0`).
    Ip,
    /// TCP/UDP port number.
    Port,
    /// Resource quantity (e.g. `500m`, `2Gi`).
    Quantity,
    /// Duration or timestamp string.
    Duration,
}

impl ScalarType {
    /// The placeholder token used in values schemas and validators
    /// (Figure 7 / Figure 8 of the paper).
    pub fn placeholder(&self) -> &'static str {
        match self {
            ScalarType::String => "string",
            ScalarType::Int => "int",
            ScalarType::Bool => "bool",
            ScalarType::Float => "float",
            ScalarType::Ip => "IP",
            ScalarType::Port => "port",
            ScalarType::Quantity => "quantity",
            ScalarType::Duration => "duration",
        }
    }
}

/// The structural kind of a field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldKind {
    /// A scalar leaf of the given type.
    Scalar(ScalarType),
    /// A nested object whose children are further fields.
    Object,
    /// An array whose items are objects with the given children.
    ArrayOfObjects,
    /// An array of scalars of the given type.
    ArrayOfScalars(ScalarType),
    /// A free-form `string → string` map (labels, annotations, nodeSelector,
    /// ConfigMap data, …).
    StringMap,
}

/// One configurable field of a resource specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldNode {
    name: String,
    kind: FieldKind,
    children: Vec<FieldNode>,
    security_sensitive: bool,
}

impl FieldNode {
    /// A scalar leaf field.
    pub fn scalar(name: &str, scalar: ScalarType) -> Self {
        FieldNode {
            name: name.to_owned(),
            kind: FieldKind::Scalar(scalar),
            children: Vec::new(),
            security_sensitive: false,
        }
    }

    /// A nested object field with the given children.
    pub fn object(name: &str, children: Vec<FieldNode>) -> Self {
        FieldNode {
            name: name.to_owned(),
            kind: FieldKind::Object,
            children,
            security_sensitive: false,
        }
    }

    /// An array-of-objects field with the given item children.
    pub fn array(name: &str, children: Vec<FieldNode>) -> Self {
        FieldNode {
            name: name.to_owned(),
            kind: FieldKind::ArrayOfObjects,
            children,
            security_sensitive: false,
        }
    }

    /// An array-of-scalars field.
    pub fn scalar_array(name: &str, scalar: ScalarType) -> Self {
        FieldNode {
            name: name.to_owned(),
            kind: FieldKind::ArrayOfScalars(scalar),
            children: Vec::new(),
            security_sensitive: false,
        }
    }

    /// A string→string map field.
    pub fn string_map(name: &str) -> Self {
        FieldNode {
            name: name.to_owned(),
            kind: FieldKind::StringMap,
            children: Vec::new(),
            security_sensitive: false,
        }
    }

    /// Mark the field as security sensitive (subject to best-practice locks).
    pub fn sensitive(mut self) -> Self {
        self.security_sensitive = true;
        self
    }

    /// Field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Structural kind.
    pub fn kind(&self) -> &FieldKind {
        &self.kind
    }

    /// Child fields (empty for leaves).
    pub fn children(&self) -> &[FieldNode] {
        &self.children
    }

    /// Whether the field is flagged security sensitive.
    pub fn is_security_sensitive(&self) -> bool {
        self.security_sensitive
    }

    /// Number of fields in this subtree (this node plus all descendants).
    pub fn field_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FieldNode::field_count)
            .sum::<usize>()
    }

    /// Collapsed field-notation paths of this node and all descendants,
    /// given the parent prefix.
    pub fn paths(&self, prefix: &str) -> Vec<String> {
        let own = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix}.{}", self.name)
        };
        let child_prefix = match self.kind {
            FieldKind::ArrayOfObjects => format!("{own}[]"),
            _ => own.clone(),
        };
        let mut out = vec![own];
        for child in &self.children {
            out.extend(child.paths(&child_prefix));
        }
        out
    }
}

/// The schema of a single resource kind: its top-level fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindSchema {
    kind: ResourceKind,
    fields: Vec<FieldNode>,
}

impl KindSchema {
    /// Build a schema from a kind and its top-level fields.
    pub fn new(kind: ResourceKind, fields: Vec<FieldNode>) -> Self {
        KindSchema { kind, fields }
    }

    /// The resource kind described by this schema.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The top-level fields.
    pub fn fields(&self) -> &[FieldNode] {
        &self.fields
    }

    /// Total number of configurable fields (all nodes of all subtrees).
    pub fn field_count(&self) -> usize {
        self.fields.iter().map(FieldNode::field_count).sum()
    }

    /// Collapsed field-notation paths of every field.
    pub fn field_paths(&self) -> Vec<String> {
        self.fields.iter().flat_map(|f| f.paths("")).collect()
    }

    /// Whether the schema contains a field with the given collapsed path.
    pub fn contains_field(&self, path: &str) -> bool {
        self.field_paths().iter().any(|p| p == path)
    }

    /// The security-sensitive field paths of this kind.
    pub fn sensitive_paths(&self) -> Vec<String> {
        fn walk(node: &FieldNode, prefix: &str, out: &mut Vec<String>) {
            let own = if prefix.is_empty() {
                node.name().to_owned()
            } else {
                format!("{prefix}.{}", node.name())
            };
            if node.is_security_sensitive() {
                out.push(own.clone());
            }
            let child_prefix = match node.kind() {
                FieldKind::ArrayOfObjects => format!("{own}[]"),
                _ => own,
            };
            for child in node.children() {
                walk(child, &child_prefix, out);
            }
        }
        let mut out = Vec::new();
        for field in &self.fields {
            walk(field, "", &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KindSchema {
        KindSchema::new(
            ResourceKind::Service,
            vec![FieldNode::object(
                "spec",
                vec![
                    FieldNode::scalar("type", ScalarType::String),
                    FieldNode::array(
                        "ports",
                        vec![
                            FieldNode::scalar("port", ScalarType::Port),
                            FieldNode::scalar("targetPort", ScalarType::Port),
                        ],
                    ),
                    FieldNode::scalar_array("externalIPs", ScalarType::Ip).sensitive(),
                    FieldNode::string_map("selector"),
                ],
            )],
        )
    }

    #[test]
    fn field_count_counts_every_node() {
        // spec + type + ports + port + targetPort + externalIPs + selector = 7
        assert_eq!(sample().field_count(), 7);
    }

    #[test]
    fn paths_use_collapsed_notation_for_arrays() {
        let paths = sample().field_paths();
        assert!(paths.contains(&"spec.ports[].port".to_string()));
        assert!(paths.contains(&"spec.externalIPs".to_string()));
        assert!(!paths.iter().any(|p| p.contains("[0]")));
    }

    #[test]
    fn contains_field_matches_exact_paths() {
        let schema = sample();
        assert!(schema.contains_field("spec.ports[].targetPort"));
        assert!(!schema.contains_field("spec.ports.targetPort"));
    }

    #[test]
    fn sensitive_paths_are_reported() {
        let schema = sample();
        assert_eq!(
            schema.sensitive_paths(),
            vec!["spec.externalIPs".to_string()]
        );
    }

    #[test]
    fn scalar_placeholders_match_paper_notation() {
        assert_eq!(ScalarType::Bool.placeholder(), "bool");
        assert_eq!(ScalarType::Ip.placeholder(), "IP");
        assert_eq!(ScalarType::String.placeholder(), "string");
    }
}
