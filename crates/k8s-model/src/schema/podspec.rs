//! The pod specification schema shared by Pod, Deployment, StatefulSet, Job
//! and CronJob.
//!
//! The pod specification is by far the largest part of the Kubernetes attack
//! surface: containers, probes, lifecycle hooks, 25+ volume types, security
//! contexts, affinity rules, … This module mirrors the upstream `core/v1`
//! `PodSpec` structure field by field for everything relevant to the paper's
//! analysis.

use super::fields::{FieldNode, ScalarType};

// Terse local constructors; the schema below is large and these keep it
// readable.
fn s(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::String)
}
fn i(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Int)
}
fn b(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Bool)
}
fn q(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Quantity)
}
fn ip(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Ip)
}
fn port(name: &str) -> FieldNode {
    FieldNode::scalar(name, ScalarType::Port)
}
fn sarr(name: &str) -> FieldNode {
    FieldNode::scalar_array(name, ScalarType::String)
}
fn smap(name: &str) -> FieldNode {
    FieldNode::string_map(name)
}
fn obj(name: &str, children: Vec<FieldNode>) -> FieldNode {
    FieldNode::object(name, children)
}
fn arr(name: &str, children: Vec<FieldNode>) -> FieldNode {
    FieldNode::array(name, children)
}

/// Label selector (`matchLabels` + `matchExpressions`).
fn label_selector(name: &str) -> FieldNode {
    obj(
        name,
        vec![
            smap("matchLabels"),
            arr(
                "matchExpressions",
                vec![s("key"), s("operator"), sarr("values")],
            ),
        ],
    )
}

/// A probe handler (exec / httpGet / tcpSocket / grpc).
fn probe_handler_fields() -> Vec<FieldNode> {
    vec![
        obj("exec", vec![sarr("command")]),
        obj(
            "httpGet",
            vec![
                s("path"),
                port("port"),
                s("host"),
                s("scheme"),
                arr("httpHeaders", vec![s("name"), s("value")]),
            ],
        ),
        obj("tcpSocket", vec![port("port"), s("host")]),
        obj("grpc", vec![port("port"), s("service")]),
    ]
}

fn probe(name: &str) -> FieldNode {
    let mut children = probe_handler_fields();
    children.extend(vec![
        i("initialDelaySeconds"),
        i("timeoutSeconds"),
        i("periodSeconds"),
        i("successThreshold"),
        i("failureThreshold"),
        i("terminationGracePeriodSeconds"),
    ]);
    obj(name, children)
}

fn lifecycle_handler(name: &str) -> FieldNode {
    let mut children = probe_handler_fields();
    children.push(obj("sleep", vec![i("seconds")]));
    obj(name, children)
}

/// Container-level security context.
fn container_security_context() -> FieldNode {
    obj(
        "securityContext",
        vec![
            obj("capabilities", vec![sarr("add").sensitive(), sarr("drop")]),
            b("privileged").sensitive(),
            obj(
                "seLinuxOptions",
                vec![
                    s("user").sensitive(),
                    s("role").sensitive(),
                    s("type"),
                    s("level"),
                ],
            ),
            obj(
                "windowsOptions",
                vec![
                    s("gmsaCredentialSpecName"),
                    s("gmsaCredentialSpec"),
                    s("runAsUserName"),
                    b("hostProcess").sensitive(),
                ],
            ),
            i("runAsUser"),
            i("runAsGroup"),
            b("runAsNonRoot").sensitive(),
            b("readOnlyRootFilesystem").sensitive(),
            b("allowPrivilegeEscalation").sensitive(),
            s("procMount"),
            obj(
                "seccompProfile",
                vec![s("type"), s("localhostProfile").sensitive()],
            ),
        ],
    )
}

/// The environment variable schema (`env` items).
fn env_var() -> Vec<FieldNode> {
    vec![
        s("name"),
        s("value"),
        obj(
            "valueFrom",
            vec![
                obj("fieldRef", vec![s("apiVersion"), s("fieldPath")]),
                obj(
                    "resourceFieldRef",
                    vec![s("containerName"), s("resource"), q("divisor")],
                ),
                obj("configMapKeyRef", vec![s("name"), s("key"), b("optional")]),
                obj("secretKeyRef", vec![s("name"), s("key"), b("optional")]),
            ],
        ),
    ]
}

/// Resource requirements (`resources`).
fn resources() -> FieldNode {
    obj(
        "resources",
        vec![
            obj(
                "limits",
                vec![
                    q("cpu"),
                    q("memory"),
                    q("ephemeral-storage"),
                    q("hugepages-2Mi"),
                ],
            ),
            obj(
                "requests",
                vec![
                    q("cpu"),
                    q("memory"),
                    q("ephemeral-storage"),
                    q("hugepages-2Mi"),
                ],
            ),
            arr("claims", vec![s("name")]),
        ],
    )
}

/// The schema of a single container (also used for init and ephemeral
/// containers).
pub fn container_schema() -> Vec<FieldNode> {
    vec![
        s("name"),
        s("image").sensitive(),
        sarr("command").sensitive(),
        sarr("args"),
        s("workingDir"),
        arr(
            "ports",
            vec![
                s("name"),
                port("hostPort").sensitive(),
                port("containerPort"),
                s("protocol"),
                ip("hostIP").sensitive(),
            ],
        ),
        arr(
            "envFrom",
            vec![
                s("prefix"),
                obj("configMapRef", vec![s("name"), b("optional")]),
                obj("secretRef", vec![s("name"), b("optional")]),
            ],
        ),
        arr("env", env_var()),
        resources(),
        arr(
            "volumeMounts",
            vec![
                s("name"),
                b("readOnly"),
                s("mountPath"),
                s("subPath").sensitive(),
                s("mountPropagation").sensitive(),
                s("subPathExpr").sensitive(),
            ],
        ),
        arr("volumeDevices", vec![s("name"), s("devicePath")]),
        probe("livenessProbe"),
        probe("readinessProbe"),
        probe("startupProbe"),
        obj(
            "lifecycle",
            vec![lifecycle_handler("postStart"), lifecycle_handler("preStop")],
        ),
        s("terminationMessagePath"),
        s("terminationMessagePolicy"),
        s("imagePullPolicy"),
        container_security_context(),
        b("stdin"),
        b("stdinOnce"),
        b("tty"),
        s("restartPolicy"),
        sarr("resizePolicy"),
    ]
}

/// The schema of the `volumes` array (one entry per supported volume source).
fn volumes() -> FieldNode {
    let key_items = arr("items", vec![s("key"), s("path"), i("mode")]);
    arr(
        "volumes",
        vec![
            s("name"),
            obj(
                "hostPath",
                vec![s("path").sensitive(), s("type").sensitive()],
            ),
            obj("emptyDir", vec![s("medium"), q("sizeLimit")]),
            obj(
                "gcePersistentDisk",
                vec![s("pdName"), s("fsType"), i("partition"), b("readOnly")],
            ),
            obj(
                "awsElasticBlockStore",
                vec![s("volumeID"), s("fsType"), i("partition"), b("readOnly")],
            ),
            obj(
                "secret",
                vec![
                    s("secretName"),
                    key_items.clone(),
                    i("defaultMode"),
                    b("optional"),
                ],
            ),
            obj("nfs", vec![s("server"), s("path"), b("readOnly")]),
            obj(
                "iscsi",
                vec![
                    s("targetPortal"),
                    s("iqn"),
                    i("lun"),
                    s("iscsiInterface"),
                    s("fsType"),
                    b("readOnly"),
                    sarr("portals"),
                    b("chapAuthDiscovery"),
                    b("chapAuthSession"),
                    obj("secretRef", vec![s("name")]),
                    s("initiatorName"),
                ],
            ),
            obj("glusterfs", vec![s("endpoints"), s("path"), b("readOnly")]),
            obj("persistentVolumeClaim", vec![s("claimName"), b("readOnly")]),
            obj(
                "rbd",
                vec![
                    sarr("monitors"),
                    s("image"),
                    s("fsType"),
                    s("pool"),
                    s("user"),
                    s("keyring"),
                    obj("secretRef", vec![s("name")]),
                    b("readOnly"),
                ],
            ),
            obj(
                "flexVolume",
                vec![
                    s("driver"),
                    s("fsType"),
                    obj("secretRef", vec![s("name")]),
                    b("readOnly"),
                    smap("options"),
                ],
            ),
            obj(
                "cinder",
                vec![
                    s("volumeID"),
                    s("fsType"),
                    b("readOnly"),
                    obj("secretRef", vec![s("name")]),
                ],
            ),
            obj(
                "cephfs",
                vec![
                    sarr("monitors"),
                    s("path"),
                    s("user"),
                    s("secretFile"),
                    obj("secretRef", vec![s("name")]),
                    b("readOnly"),
                ],
            ),
            obj("flocker", vec![s("datasetName"), s("datasetUUID")]),
            obj(
                "downwardAPI",
                vec![
                    arr(
                        "items",
                        vec![
                            s("path"),
                            obj("fieldRef", vec![s("apiVersion"), s("fieldPath")]),
                            obj(
                                "resourceFieldRef",
                                vec![s("containerName"), s("resource"), q("divisor")],
                            ),
                            i("mode"),
                        ],
                    ),
                    i("defaultMode"),
                ],
            ),
            obj(
                "fc",
                vec![sarr("targetWWNs"), i("lun"), s("fsType"), b("readOnly")],
            ),
            obj(
                "azureFile",
                vec![s("secretName"), s("shareName"), b("readOnly")],
            ),
            obj(
                "configMap",
                vec![s("name"), key_items, i("defaultMode"), b("optional")],
            ),
            obj(
                "vsphereVolume",
                vec![
                    s("volumePath"),
                    s("fsType"),
                    s("storagePolicyName"),
                    s("storagePolicyID"),
                ],
            ),
            obj(
                "quobyte",
                vec![
                    s("registry"),
                    s("volume"),
                    b("readOnly"),
                    s("user"),
                    s("group"),
                    s("tenant"),
                ],
            ),
            obj(
                "azureDisk",
                vec![
                    s("diskName"),
                    s("diskURI"),
                    s("cachingMode"),
                    s("fsType"),
                    b("readOnly"),
                    s("kind"),
                ],
            ),
            obj("photonPersistentDisk", vec![s("pdID"), s("fsType")]),
            obj(
                "projected",
                vec![
                    arr(
                        "sources",
                        vec![
                            obj(
                                "secret",
                                vec![
                                    s("name"),
                                    arr("items", vec![s("key"), s("path"), i("mode")]),
                                    b("optional"),
                                ],
                            ),
                            obj(
                                "configMap",
                                vec![
                                    s("name"),
                                    arr("items", vec![s("key"), s("path"), i("mode")]),
                                    b("optional"),
                                ],
                            ),
                            obj(
                                "downwardAPI",
                                vec![arr(
                                    "items",
                                    vec![
                                        s("path"),
                                        obj("fieldRef", vec![s("apiVersion"), s("fieldPath")]),
                                        i("mode"),
                                    ],
                                )],
                            ),
                            obj(
                                "serviceAccountToken",
                                vec![s("audience"), i("expirationSeconds"), s("path")],
                            ),
                            obj(
                                "clusterTrustBundle",
                                vec![s("name"), s("signerName"), s("path"), b("optional")],
                            ),
                        ],
                    ),
                    i("defaultMode"),
                ],
            ),
            obj(
                "portworxVolume",
                vec![s("volumeID"), s("fsType"), b("readOnly")],
            ),
            obj(
                "scaleIO",
                vec![
                    s("gateway"),
                    s("system"),
                    obj("secretRef", vec![s("name")]),
                    b("sslEnabled"),
                    s("protectionDomain"),
                    s("storagePool"),
                    s("storageMode"),
                    s("volumeName"),
                    s("fsType"),
                    b("readOnly"),
                ],
            ),
            obj(
                "storageos",
                vec![
                    s("volumeName"),
                    s("volumeNamespace"),
                    s("fsType"),
                    b("readOnly"),
                    obj("secretRef", vec![s("name")]),
                ],
            ),
            obj(
                "csi",
                vec![
                    s("driver"),
                    b("readOnly"),
                    s("fsType"),
                    smap("volumeAttributes"),
                    obj("nodePublishSecretRef", vec![s("name")]),
                ],
            ),
            obj(
                "ephemeral",
                vec![obj(
                    "volumeClaimTemplate",
                    vec![
                        obj("metadata", vec![smap("labels"), smap("annotations")]),
                        obj(
                            "spec",
                            vec![
                                sarr("accessModes"),
                                label_selector("selector"),
                                obj(
                                    "resources",
                                    vec![
                                        obj("requests", vec![q("storage")]),
                                        obj("limits", vec![q("storage")]),
                                    ],
                                ),
                                s("volumeName"),
                                s("storageClassName"),
                                s("volumeMode"),
                            ],
                        ),
                    ],
                )],
            ),
        ],
    )
}

/// Pod-level security context.
fn pod_security_context() -> FieldNode {
    obj(
        "securityContext",
        vec![
            obj(
                "seLinuxOptions",
                vec![
                    s("user").sensitive(),
                    s("role").sensitive(),
                    s("type"),
                    s("level"),
                ],
            ),
            obj(
                "windowsOptions",
                vec![
                    s("gmsaCredentialSpecName"),
                    s("gmsaCredentialSpec"),
                    s("runAsUserName"),
                    b("hostProcess").sensitive(),
                ],
            ),
            i("runAsUser"),
            i("runAsGroup"),
            b("runAsNonRoot").sensitive(),
            FieldNode::scalar_array("supplementalGroups", ScalarType::Int),
            i("fsGroup"),
            arr("sysctls", vec![s("name").sensitive(), s("value")]),
            s("fsGroupChangePolicy"),
            obj(
                "seccompProfile",
                vec![s("type"), s("localhostProfile").sensitive()],
            ),
        ],
    )
}

/// Affinity rules.
fn affinity() -> FieldNode {
    let node_selector_term = vec![
        arr(
            "matchExpressions",
            vec![s("key"), s("operator"), sarr("values")],
        ),
        arr("matchFields", vec![s("key"), s("operator"), sarr("values")]),
    ];
    let pod_affinity_term = vec![
        label_selector("labelSelector"),
        sarr("namespaces"),
        s("topologyKey"),
        label_selector("namespaceSelector"),
        sarr("matchLabelKeys"),
        sarr("mismatchLabelKeys"),
    ];
    obj(
        "affinity",
        vec![
            obj(
                "nodeAffinity",
                vec![
                    obj(
                        "requiredDuringSchedulingIgnoredDuringExecution",
                        vec![arr("nodeSelectorTerms", node_selector_term.clone())],
                    ),
                    arr(
                        "preferredDuringSchedulingIgnoredDuringExecution",
                        vec![i("weight"), obj("preference", node_selector_term)],
                    ),
                ],
            ),
            obj(
                "podAffinity",
                vec![
                    arr(
                        "requiredDuringSchedulingIgnoredDuringExecution",
                        pod_affinity_term.clone(),
                    ),
                    arr(
                        "preferredDuringSchedulingIgnoredDuringExecution",
                        vec![
                            i("weight"),
                            obj("podAffinityTerm", pod_affinity_term.clone()),
                        ],
                    ),
                ],
            ),
            obj(
                "podAntiAffinity",
                vec![
                    arr(
                        "requiredDuringSchedulingIgnoredDuringExecution",
                        pod_affinity_term.clone(),
                    ),
                    arr(
                        "preferredDuringSchedulingIgnoredDuringExecution",
                        vec![i("weight"), obj("podAffinityTerm", pod_affinity_term)],
                    ),
                ],
            ),
        ],
    )
}

/// The full pod specification schema (the children of `spec` for a Pod, or of
/// `spec.template.spec` for a workload controller).
pub fn pod_spec_schema() -> Vec<FieldNode> {
    let mut ephemeral_container = container_schema();
    ephemeral_container.push(s("targetContainerName"));
    vec![
        arr("initContainers", container_schema()),
        arr("containers", container_schema()),
        arr("ephemeralContainers", ephemeral_container),
        volumes(),
        s("restartPolicy"),
        i("terminationGracePeriodSeconds"),
        i("activeDeadlineSeconds"),
        s("dnsPolicy"),
        smap("nodeSelector"),
        s("serviceAccountName"),
        s("serviceAccount"),
        b("automountServiceAccountToken").sensitive(),
        s("nodeName"),
        b("hostNetwork").sensitive(),
        b("hostPID").sensitive(),
        b("hostIPC").sensitive(),
        b("shareProcessNamespace").sensitive(),
        pod_security_context(),
        arr("imagePullSecrets", vec![s("name")]),
        s("hostname"),
        s("subdomain"),
        affinity(),
        s("schedulerName"),
        arr(
            "tolerations",
            vec![
                s("key"),
                s("operator"),
                s("value"),
                s("effect"),
                i("tolerationSeconds"),
            ],
        ),
        arr("hostAliases", vec![ip("ip"), sarr("hostnames")]),
        s("priorityClassName"),
        i("priority"),
        obj(
            "dnsConfig",
            vec![
                FieldNode::scalar_array("nameservers", ScalarType::Ip),
                sarr("searches"),
                arr("options", vec![s("name"), s("value")]),
            ],
        ),
        arr("readinessGates", vec![s("conditionType")]),
        s("runtimeClassName"),
        b("enableServiceLinks"),
        s("preemptionPolicy"),
        smap("overhead"),
        arr(
            "topologySpreadConstraints",
            vec![
                i("maxSkew"),
                s("topologyKey"),
                s("whenUnsatisfiable"),
                label_selector("labelSelector"),
                i("minDomains"),
                s("nodeAffinityPolicy"),
                s("nodeTaintsPolicy"),
                sarr("matchLabelKeys"),
            ],
        ),
        b("setHostnameAsFQDN"),
        obj("os", vec![s("name")]),
        b("hostUsers").sensitive(),
        arr("schedulingGates", vec![s("name")]),
        arr(
            "resourceClaims",
            vec![
                s("name"),
                obj(
                    "source",
                    vec![s("resourceClaimName"), s("resourceClaimTemplateName")],
                ),
            ],
        ),
    ]
}

/// Object metadata fields as they appear inside templates and top-level
/// manifests.
pub fn metadata_schema() -> FieldNode {
    obj(
        "metadata",
        vec![
            s("name"),
            s("generateName"),
            s("namespace"),
            smap("labels"),
            smap("annotations"),
            sarr("finalizers"),
            arr(
                "ownerReferences",
                vec![
                    s("apiVersion"),
                    s("kind"),
                    s("name"),
                    s("uid"),
                    b("controller"),
                    b("blockOwnerDeletion"),
                ],
            ),
        ],
    )
}

/// The `template` subtree embedded in workload controllers (pod template:
/// metadata + pod spec).
pub fn pod_template_schema() -> FieldNode {
    obj(
        "template",
        vec![metadata_schema(), obj("spec", pod_spec_schema())],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_schema_is_rich() {
        let count: usize = container_schema().iter().map(|f| f.field_count()).sum();
        assert!(count > 120, "container schema has {count} fields");
    }

    #[test]
    fn pod_spec_schema_is_the_dominant_surface() {
        let count: usize = pod_spec_schema().iter().map(|f| f.field_count()).sum();
        assert!(count > 600, "pod spec schema has {count} fields");
    }

    #[test]
    fn security_sensitive_fields_are_marked() {
        let spec = pod_spec_schema();
        let host_network = spec.iter().find(|f| f.name() == "hostNetwork").unwrap();
        assert!(host_network.is_security_sensitive());
        let containers = spec.iter().find(|f| f.name() == "containers").unwrap();
        let sec_ctx = containers
            .children()
            .iter()
            .find(|f| f.name() == "securityContext")
            .unwrap();
        let privileged = sec_ctx
            .children()
            .iter()
            .find(|f| f.name() == "privileged")
            .unwrap();
        assert!(privileged.is_security_sensitive());
    }

    #[test]
    fn template_schema_nests_metadata_and_spec() {
        let template = pod_template_schema();
        let names: Vec<_> = template.children().iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["metadata", "spec"]);
    }
}
