//! The Kubernetes CVE database used by the motivation analysis (Section III)
//! and by the catalog of malicious specifications (Table II).
//!
//! The paper analyzed the official Kubernetes CVE feed from July 2016 to
//! December 2023 and mapped 49 CVEs to the components touched by their
//! patches. Eight of those CVEs can be exploited purely through specification
//! fields of API requests and therefore appear in the attack catalog; for
//! those we record the exact trigger conditions. The remaining records carry
//! the component mapping used by the e2e coverage analysis (Figure 5).

use serde::{Deserialize, Serialize};

use kf_yaml::Value;

use crate::condition::{FieldCheck, FieldCondition, FieldRef};
use crate::{Component, ResourceKind};

/// Severity band derived from the CVSS score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// CVSS < 4.0
    Low,
    /// 4.0 ≤ CVSS < 7.0
    Medium,
    /// 7.0 ≤ CVSS < 9.0
    High,
    /// CVSS ≥ 9.0
    Critical,
}

impl Severity {
    /// Band for a CVSS score.
    pub fn from_cvss(score: f64) -> Self {
        if score >= 9.0 {
            Severity::Critical
        } else if score >= 7.0 {
            Severity::High
        } else if score >= 4.0 {
            Severity::Medium
        } else {
            Severity::Low
        }
    }
}

/// A single CVE record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CveRecord {
    /// CVE identifier, e.g. `CVE-2017-1002101`.
    pub id: String,
    /// Year of disclosure.
    pub year: u16,
    /// CVSS v3 base score.
    pub cvss: f64,
    /// Component whose source files were touched by the patch.
    pub component: Component,
    /// One-line summary.
    pub summary: String,
    /// Specification fields that must appear in an API request for the
    /// vulnerable code to be exercised. Empty when the CVE is not reachable
    /// through object specifications (e.g. kubectl client-side issues).
    pub triggers: Vec<FieldCondition>,
    /// Resource kinds through which the trigger can be delivered.
    pub applicable_kinds: Vec<ResourceKind>,
}

impl CveRecord {
    /// Severity band of this record.
    pub fn severity(&self) -> Severity {
        Severity::from_cvss(self.cvss)
    }

    /// Whether the CVE can be triggered purely through the content of an API
    /// request specification.
    pub fn is_api_triggerable(&self) -> bool {
        !self.triggers.is_empty()
    }

    /// Whether a manifest of this object would exercise the vulnerable code.
    pub fn is_triggered_by(&self, object: &crate::K8sObject) -> bool {
        self.is_api_triggerable()
            && (self.applicable_kinds.is_empty() || self.applicable_kinds.contains(&object.kind()))
            && self.triggers.iter().any(|c| c.evaluate(object))
    }
}

/// The full CVE database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CveDatabase {
    records: Vec<CveRecord>,
}

impl Default for CveDatabase {
    fn default() -> Self {
        CveDatabase::new()
    }
}

impl CveDatabase {
    /// Build the built-in database (49 records).
    pub fn new() -> Self {
        CveDatabase {
            records: build_records(),
        }
    }

    /// All records.
    pub fn records(&self) -> &[CveRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty (never true for the built-in database).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Look up a CVE by identifier.
    pub fn by_id(&self, id: &str) -> Option<&CveRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// The CVEs that can be exploited purely through API specifications — the
    /// ones eligible for the attack catalog.
    pub fn api_triggerable(&self) -> Vec<&CveRecord> {
        self.records
            .iter()
            .filter(|r| r.is_api_triggerable())
            .collect()
    }

    /// Records affecting a given component.
    pub fn by_component(&self, component: Component) -> Vec<&CveRecord> {
        self.records
            .iter()
            .filter(|r| r.component == component)
            .collect()
    }

    /// Records grouped per component, in taxonomy order.
    pub fn component_histogram(&self) -> Vec<(Component, usize)> {
        Component::ALL
            .iter()
            .map(|c| (*c, self.by_component(*c).len()))
            .collect()
    }
}

fn pod_kinds() -> Vec<ResourceKind> {
    vec![
        ResourceKind::Pod,
        ResourceKind::Deployment,
        ResourceKind::StatefulSet,
        ResourceKind::Job,
        ResourceKind::CronJob,
    ]
}

fn record(id: &str, year: u16, cvss: f64, component: Component, summary: &str) -> CveRecord {
    CveRecord {
        id: id.to_owned(),
        year,
        cvss,
        component,
        summary: summary.to_owned(),
        triggers: Vec::new(),
        applicable_kinds: Vec::new(),
    }
}

fn with_pod_trigger(mut rec: CveRecord, triggers: Vec<FieldCondition>) -> CveRecord {
    rec.triggers = triggers;
    rec.applicable_kinds = pod_kinds();
    rec
}

fn build_records() -> Vec<CveRecord> {
    let mut records = Vec::with_capacity(49);

    // --- The eight CVEs of the attack catalog (Table II), with precise
    // trigger conditions. -----------------------------------------------
    records.push(with_pod_trigger(
        record(
            "CVE-2020-15257",
            2020,
            5.2,
            Component::Networking,
            "containerd-shim API exposed to host-network containers; activating hostNetwork grants access",
        ),
        vec![FieldCondition::pod_field_equals("hostNetwork", true)],
    ));
    {
        let mut rec = record(
            "CVE-2020-8554",
            2020,
            6.3,
            Component::Networking,
            "man-in-the-middle via LoadBalancer or ExternalIPs on Services",
        );
        rec.triggers = vec![FieldCondition {
            field: FieldRef::resource("spec.externalIPs"),
            check: FieldCheck::Present,
        }];
        rec.applicable_kinds = vec![ResourceKind::Service];
        records.push(rec);
    }
    records.push(with_pod_trigger(
        record(
            "CVE-2023-3676",
            2023,
            8.8,
            Component::Kubelet,
            "command injection on Windows nodes via volume subPath in volumeMounts",
        ),
        vec![
            FieldCondition::pod_field_present("containers[].volumeMounts[].subPath"),
            FieldCondition::pod_field_present("volumes[].subPath"),
        ],
    ));
    records.push(with_pod_trigger(
        record(
            "CVE-2017-1002101",
            2017,
            8.8,
            Component::Storage,
            "subPath volume mounts allow access to files outside the volume (symlink walk to host filesystem)",
        ),
        vec![
            FieldCondition::pod_field_present("containers[].volumeMounts[].subPath"),
            FieldCondition::pod_field_present("initContainers[].volumeMounts[].subPath"),
        ],
    ));
    records.push(with_pod_trigger(
        record(
            "CVE-2019-11253",
            2019,
            7.5,
            Component::ApiServer,
            "YAML/JSON parsing DoS (billion laughs) via deeply nested payloads in resource limits",
        ),
        vec![FieldCondition {
            field: FieldRef::pod_spec("containers[].resources.limits"),
            check: FieldCheck::DeeperThan(8),
        }],
    ));
    records.push(with_pod_trigger(
        record(
            "CVE-2021-25741",
            2021,
            8.1,
            Component::Storage,
            "symlink exchange on subPath allows host filesystem access via crafted container commands",
        ),
        vec![FieldCondition::pod_field_present("containers[].command")],
    ));
    records.push(with_pod_trigger(
        record(
            "CVE-2023-2431",
            2023,
            5.0,
            Component::SecurityFeatures,
            "seccomp profile enforcement bypass through localhostProfile with an empty profile name",
        ),
        vec![FieldCondition::pod_field_present(
            "containers[].securityContext.seccompProfile.localhostProfile",
        )],
    ));
    records.push(with_pod_trigger(
        record(
            "CVE-2021-21334",
            2021,
            6.3,
            Component::Kubelet,
            "containerd leaks environment variables across containers; privileged containers widen impact",
        ),
        vec![FieldCondition::pod_field_equals(
            "containers[].securityContext.privileged",
            true,
        )],
    ));

    // --- Remaining CVEs from the official feed (component mapping only);
    // these are not reachable purely through specification fields in our
    // threat model, or require environments outside the testbed. ----------
    let rest: [(&str, u16, f64, Component, &str); 41] = [
        (
            "CVE-2016-7075",
            2016,
            8.5,
            Component::ApiServer,
            "API server does not validate client certificates in proxy TLS connections",
        ),
        (
            "CVE-2017-1000056",
            2017,
            6.5,
            Component::AdmissionControllers,
            "PodSecurityPolicy admission admits pods that should be rejected",
        ),
        (
            "CVE-2017-1002100",
            2017,
            4.0,
            Component::CloudProvider,
            "Azure PV permissions allow read by other tenants",
        ),
        (
            "CVE-2017-1002102",
            2017,
            5.5,
            Component::Storage,
            "containers using secret/configMap/projected volumes can delete host files",
        ),
        (
            "CVE-2018-1002100",
            2018,
            5.5,
            Component::Kubectl,
            "kubectl cp path traversal writes outside destination",
        ),
        (
            "CVE-2018-1002101",
            2018,
            7.5,
            Component::Storage,
            "mount command injection on Windows vSphere volumes",
        ),
        (
            "CVE-2018-1002105",
            2018,
            9.8,
            Component::ApiServer,
            "proxy request handling allows privilege escalation through upgraded connections",
        ),
        (
            "CVE-2019-1002100",
            2019,
            6.5,
            Component::ApiServer,
            "json-patch requests cause excessive API server resource usage",
        ),
        (
            "CVE-2019-1002101",
            2019,
            5.5,
            Component::Kubectl,
            "kubectl cp symlink handling writes arbitrary local files",
        ),
        (
            "CVE-2019-9946",
            2019,
            7.5,
            Component::Networking,
            "CNI portmap plugin inserts rules before KUBE-SERVICES bypassing policy",
        ),
        (
            "CVE-2019-11243",
            2019,
            5.3,
            Component::Kubectl,
            "rest.AnonymousClientConfig does not remove credentials",
        ),
        (
            "CVE-2019-11244",
            2019,
            3.3,
            Component::Kubectl,
            "kubectl creates world-writable cached schema files",
        ),
        (
            "CVE-2019-11245",
            2019,
            4.9,
            Component::Kubelet,
            "containers run as root despite runAsUser in non-root images on restart",
        ),
        (
            "CVE-2019-11246",
            2019,
            6.5,
            Component::Kubectl,
            "kubectl cp symlink directory traversal",
        ),
        (
            "CVE-2019-11247",
            2019,
            8.1,
            Component::ApiServer,
            "cluster-scoped CRD access through namespaced API routes",
        ),
        (
            "CVE-2019-11248",
            2019,
            8.2,
            Component::Kubelet,
            "debug/pprof exposed on healthz port",
        ),
        (
            "CVE-2019-11249",
            2019,
            6.5,
            Component::Kubectl,
            "kubectl cp incomplete fix allows file writes outside destination",
        ),
        (
            "CVE-2019-11250",
            2019,
            6.5,
            Component::ApiServer,
            "bearer tokens written to verbose logs",
        ),
        (
            "CVE-2019-11251",
            2019,
            5.7,
            Component::Kubectl,
            "kubectl cp symlink allows writing outside target directory",
        ),
        (
            "CVE-2019-11254",
            2019,
            6.5,
            Component::ApiServer,
            "YAML parsing CPU DoS in API server",
        ),
        (
            "CVE-2020-8551",
            2020,
            6.5,
            Component::Kubelet,
            "kubelet DoS via crafted node resource requests",
        ),
        (
            "CVE-2020-8552",
            2020,
            5.3,
            Component::ApiServer,
            "API server memory exhaustion via unauthenticated requests",
        ),
        (
            "CVE-2020-8555",
            2020,
            6.3,
            Component::CloudProvider,
            "SSRF via storage classes and cloud provider volume code",
        ),
        (
            "CVE-2020-8557",
            2020,
            5.5,
            Component::Kubelet,
            "pod /etc/hosts file not tracked against ephemeral storage quota",
        ),
        (
            "CVE-2020-8558",
            2020,
            8.8,
            Component::Networking,
            "kube-proxy exposes localhost-bound services to adjacent hosts",
        ),
        (
            "CVE-2020-8559",
            2020,
            6.4,
            Component::ApiServer,
            "privilege escalation from compromised node via upgraded redirects",
        ),
        (
            "CVE-2020-8561",
            2020,
            4.1,
            Component::AdmissionControllers,
            "webhook redirects leak API server logs content",
        ),
        (
            "CVE-2020-8562",
            2020,
            3.1,
            Component::ApiServer,
            "TOCTOU bypass of proxy IP restrictions",
        ),
        (
            "CVE-2020-8563",
            2020,
            5.5,
            Component::CloudProvider,
            "vSphere cloud provider logs secrets at high verbosity",
        ),
        (
            "CVE-2020-8564",
            2020,
            5.5,
            Component::Kubelet,
            "docker config secrets leaked in logs",
        ),
        (
            "CVE-2020-8565",
            2020,
            5.5,
            Component::ApiServer,
            "authorization tokens logged at verbosity >= 9",
        ),
        (
            "CVE-2020-8566",
            2020,
            5.5,
            Component::CloudProvider,
            "Ceph RBD admin secrets logged",
        ),
        (
            "CVE-2021-25735",
            2021,
            6.5,
            Component::AdmissionControllers,
            "node update validation bypass in admission",
        ),
        (
            "CVE-2021-25737",
            2021,
            2.7,
            Component::Networking,
            "EndpointSlice validation allows forwarding to localhost/link-local",
        ),
        (
            "CVE-2021-25740",
            2021,
            3.1,
            Component::Networking,
            "Endpoint restriction bypass forwards traffic across namespaces",
        ),
        (
            "CVE-2021-25742",
            2021,
            7.1,
            Component::Networking,
            "ingress-nginx custom snippets allow secret exfiltration",
        ),
        (
            "CVE-2022-3162",
            2022,
            6.5,
            Component::ApiServer,
            "path traversal for cluster-scoped custom resources",
        ),
        (
            "CVE-2022-3294",
            2022,
            8.8,
            Component::ApiServer,
            "node address validation bypass enables API server MITM",
        ),
        (
            "CVE-2023-2727",
            2023,
            6.5,
            Component::AdmissionControllers,
            "ImagePolicyWebhook bypass via ephemeral containers",
        ),
        (
            "CVE-2023-2728",
            2023,
            6.5,
            Component::AdmissionControllers,
            "ServiceAccount admission plugin bypass via ephemeral containers",
        ),
        (
            "CVE-2023-5528",
            2023,
            8.8,
            Component::Storage,
            "command injection through in-tree Windows storage plugin",
        ),
    ];
    for (id, year, cvss, component, summary) in rest {
        records.push(record(id, year, cvss, component, summary));
    }

    records
}

/// The identifiers of the eight catalog CVEs (E1–E8 of Table II), in catalog
/// order.
pub const CATALOG_CVE_IDS: [&str; 8] = [
    "CVE-2020-15257",
    "CVE-2020-8554",
    "CVE-2023-3676",
    "CVE-2017-1002101",
    "CVE-2019-11253",
    "CVE-2021-25741",
    "CVE-2023-2431",
    "CVE-2021-21334",
];

/// Convenience helper: the [`Value`] used to represent "any value" in
/// documentation examples.
pub fn any_marker() -> Value {
    Value::Str("<any>".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::K8sObject;

    #[test]
    fn database_has_forty_nine_records() {
        let db = CveDatabase::new();
        assert_eq!(db.len(), 49);
    }

    #[test]
    fn catalog_cves_are_api_triggerable() {
        let db = CveDatabase::new();
        for id in CATALOG_CVE_IDS {
            let rec = db.by_id(id).unwrap_or_else(|| panic!("missing {id}"));
            assert!(
                rec.is_api_triggerable(),
                "{id} must have trigger conditions"
            );
        }
        assert_eq!(db.api_triggerable().len(), 8);
    }

    #[test]
    fn ids_are_unique() {
        let db = CveDatabase::new();
        let mut ids: Vec<_> = db.records().iter().map(|r| r.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), db.len());
    }

    #[test]
    fn severity_bands_follow_cvss() {
        assert_eq!(Severity::from_cvss(9.8), Severity::Critical);
        assert_eq!(Severity::from_cvss(8.8), Severity::High);
        assert_eq!(Severity::from_cvss(5.0), Severity::Medium);
        assert_eq!(Severity::from_cvss(2.6), Severity::Low);
        let db = CveDatabase::new();
        assert_eq!(
            db.by_id("CVE-2018-1002105").unwrap().severity(),
            Severity::Critical
        );
    }

    #[test]
    fn subpath_exploit_triggers_cve_2017_1002101() {
        let manifest = r#"apiVersion: v1
kind: Pod
metadata:
  name: attack
spec:
  containers:
    - name: c
      image: nginx
      volumeMounts:
        - mountPath: /test
          name: v
          subPath: symlink-door
  volumes:
    - name: v
      emptyDir: {}
"#;
        let obj = K8sObject::from_yaml(manifest).unwrap();
        let db = CveDatabase::new();
        assert!(db.by_id("CVE-2017-1002101").unwrap().is_triggered_by(&obj));
        // A pod without subPath does not trigger it.
        let benign = K8sObject::from_yaml(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: ok\nspec:\n  containers:\n    - name: c\n      image: nginx\n",
        )
        .unwrap();
        assert!(!db
            .by_id("CVE-2017-1002101")
            .unwrap()
            .is_triggered_by(&benign));
    }

    #[test]
    fn external_ips_exploit_only_applies_to_services() {
        let db = CveDatabase::new();
        let svc = K8sObject::from_yaml(
            "apiVersion: v1\nkind: Service\nmetadata:\n  name: s\nspec:\n  externalIPs:\n    - 203.0.113.9\n",
        )
        .unwrap();
        assert!(db.by_id("CVE-2020-8554").unwrap().is_triggered_by(&svc));
        let pod = K8sObject::from_yaml(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: p\nspec:\n  containers:\n    - name: c\n      image: nginx\n",
        )
        .unwrap();
        assert!(!db.by_id("CVE-2020-8554").unwrap().is_triggered_by(&pod));
    }

    #[test]
    fn component_histogram_accounts_for_all_records() {
        let db = CveDatabase::new();
        let total: usize = db.component_histogram().iter().map(|(_, n)| n).sum();
        assert_eq!(total, db.len());
        // Storage and API server are among the most affected components.
        assert!(db.by_component(Component::ApiServer).len() >= 5);
        assert!(db.by_component(Component::Storage).len() >= 4);
    }

    #[test]
    fn deeply_nested_limits_trigger_cve_2019_11253() {
        let db = CveDatabase::new();
        let mut nested = String::from("apiVersion: v1\nkind: Pod\nmetadata:\n  name: p\nspec:\n  containers:\n    - name: c\n      image: nginx\n      resources:\n        limits:\n");
        let mut indent = "          ".to_owned();
        for _ in 0..12 {
            nested.push_str(&format!("{indent}a:\n"));
            indent.push_str("  ");
        }
        nested.push_str(&format!("{indent}b: overflow\n"));
        let bomb = K8sObject::from_yaml(&nested).unwrap();
        assert!(db.by_id("CVE-2019-11253").unwrap().is_triggered_by(&bomb));
        let with_limits = K8sObject::from_yaml(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: p\nspec:\n  containers:\n    - name: c\n      image: nginx\n      resources:\n        limits:\n          cpu: 100m\n",
        )
        .unwrap();
        assert!(!db
            .by_id("CVE-2019-11253")
            .unwrap()
            .is_triggered_by(&with_limits));
    }
}
