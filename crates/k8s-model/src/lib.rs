//! # k8s-model — Kubernetes object model for the KubeFence reproduction
//!
//! This crate provides the Kubernetes-side vocabulary shared by the whole
//! workspace:
//!
//! * [`ResourceKind`] — the API resource types (endpoints) considered by the
//!   paper's evaluation (Figure 9 / Table I), with their API groups, plural
//!   names and supported verbs;
//! * [`K8sObject`] / [`ObjectMeta`] — a thin typed view over a
//!   [`kf_yaml::Value`] manifest;
//! * [`schema`] — the **field-schema catalog**: for every resource kind, the
//!   tree of configurable specification fields, used to quantify the attack
//!   surface (the paper counts 4,882 configurable fields over 20 endpoints);
//! * [`cve`] — the K8s CVE database (49 CVEs, July 2016 – December 2023) with
//!   the affected component and, where applicable, the specification fields
//!   that trigger the vulnerable code;
//! * [`Component`] — the component taxonomy used to group CVEs.
//!
//! ```
//! use k8s_model::{ResourceKind, schema::catalog};
//!
//! let catalog = catalog();
//! let pod_fields = catalog.fields_for(ResourceKind::Pod).unwrap().field_count();
//! assert!(pod_fields > 100, "Pod exposes a large configurable surface");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
pub mod condition;
pub mod cve;
mod error;
mod gvk;
mod kinds;
mod meta;
mod object;
pub mod schema;

pub use component::Component;
pub use condition::{FieldCheck, FieldCondition, FieldRef, FieldScope};
pub use error::Error;
pub use gvk::{GroupVersionKind, Verb};
pub use kinds::ResourceKind;
pub use meta::ObjectMeta;
pub use object::K8sObject;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
