//! Typed view over a Kubernetes manifest.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use kf_yaml::{Path, Value};

use crate::{Error, GroupVersionKind, ObjectMeta, ResourceKind, Result};

/// A Kubernetes object: a manifest (`kind`, `apiVersion`, `metadata`, `spec`,
/// …) plus typed accessors for the pieces the rest of the system needs.
///
/// The raw document is kept intact — KubeFence validation operates on the full
/// request body, so nothing may be lost in translation. The body is held as a
/// **shared handle** ([`Arc<Value>`]): admission, the object store, audit
/// events and read responses all hold the same parsed tree, and cloning an
/// object never deep-copies the document. Mutation is copy-on-write —
/// [`K8sObject::body_mut`] splits off a private copy only when the tree is
/// actually shared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct K8sObject {
    kind: ResourceKind,
    metadata: ObjectMeta,
    body: Arc<Value>,
}

impl K8sObject {
    /// Interpret a parsed manifest as a Kubernetes object.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MissingField`] if `kind` or `metadata.name` is absent
    /// and [`Error::UnknownKind`] if the kind is not one of the twenty
    /// endpoints modelled by this reproduction.
    pub fn from_value(body: Value) -> Result<Self> {
        Self::from_shared(Arc::new(body))
    }

    /// [`K8sObject::from_value`] over an already-shared tree: the zero-copy
    /// admission entry point. The object takes a handle to `body` — callers
    /// that keep their own handle (audit logs, request replay pools) observe
    /// the identical allocation, and nothing is deep-cloned.
    ///
    /// # Errors
    ///
    /// Exactly those of [`K8sObject::from_value`].
    pub fn from_shared(body: Arc<Value>) -> Result<Self> {
        // Mirrors `peek_kind`, but keeps the metadata it builds — admission
        // runs this once per accepted request, so the envelope is walked
        // exactly once.
        let kind_text = body
            .get("kind")
            .and_then(Value::as_str)
            .ok_or(Error::MissingField {
                field: "kind".into(),
            })?;
        let kind = ResourceKind::parse(kind_text).ok_or_else(|| Error::UnknownKind {
            kind: kind_text.to_owned(),
        })?;
        let metadata = ObjectMeta::from_value(body.get("metadata"));
        if metadata.name.is_empty() {
            return Err(Error::MissingField {
                field: "metadata.name".into(),
            });
        }
        Ok(K8sObject {
            kind,
            metadata,
            body,
        })
    }

    /// The checks of [`K8sObject::from_value`] without taking ownership of
    /// the body: returns the resource kind if the manifest is a recognizable
    /// Kubernetes object. This is the enforcement hot path's validity probe —
    /// it never deep-clones the document.
    ///
    /// # Errors
    ///
    /// Exactly those of [`K8sObject::from_value`].
    pub fn peek_kind(body: &Value) -> Result<ResourceKind> {
        let kind_text = body
            .get("kind")
            .and_then(Value::as_str)
            .ok_or(Error::MissingField {
                field: "kind".into(),
            })?;
        let kind = ResourceKind::parse(kind_text).ok_or_else(|| Error::UnknownKind {
            kind: kind_text.to_owned(),
        })?;
        let metadata = ObjectMeta::from_value(body.get("metadata"));
        if metadata.name.is_empty() {
            return Err(Error::MissingField {
                field: "metadata.name".into(),
            });
        }
        Ok(kind)
    }

    /// Parse YAML text directly into an object.
    ///
    /// # Errors
    ///
    /// Propagates YAML parse failures as [`Error::InvalidField`] on the
    /// document root, and the same validation errors as
    /// [`K8sObject::from_value`].
    pub fn from_yaml(text: &str) -> Result<Self> {
        let value = kf_yaml::parse(text).map_err(|e| Error::InvalidField {
            field: "<document>".into(),
            message: e.to_string(),
        })?;
        K8sObject::from_value(value)
    }

    /// Build a minimal object of the given kind and name with an empty spec.
    pub fn minimal(kind: ResourceKind, name: &str, namespace: &str) -> Self {
        let mut body = Value::empty_map();
        let gvk = kind.gvk();
        body.set_path(
            &Path::parse("apiVersion").unwrap(),
            Value::from(gvk.api_version()),
        )
        .expect("fresh map");
        body.set_path(&Path::parse("kind").unwrap(), Value::from(kind.as_str()))
            .expect("fresh map");
        let meta = if kind.is_namespaced() {
            ObjectMeta::namespaced(name, namespace)
        } else {
            ObjectMeta::named(name)
        };
        body.set_path(&Path::parse("metadata").unwrap(), meta.to_value())
            .expect("fresh map");
        K8sObject {
            kind,
            metadata: meta,
            body: Arc::new(body),
        }
    }

    /// The resource kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The group/version/kind derived from the manifest's `apiVersion`.
    pub fn gvk(&self) -> GroupVersionKind {
        match self.body.get("apiVersion").and_then(Value::as_str) {
            Some(api_version) => {
                GroupVersionKind::from_api_version(api_version, self.kind.as_str())
            }
            None => self.kind.gvk(),
        }
    }

    /// The object metadata.
    pub fn metadata(&self) -> &ObjectMeta {
        &self.metadata
    }

    /// Object name.
    pub fn name(&self) -> &str {
        &self.metadata.name
    }

    /// Object namespace (empty for cluster-scoped objects; callers default it
    /// to `default` at admission time).
    pub fn namespace(&self) -> &str {
        &self.metadata.namespace
    }

    /// The full manifest body.
    pub fn body(&self) -> &Value {
        &self.body
    }

    /// The shared handle to the manifest body. Cloning the returned `Arc` is
    /// how the persistence plane threads one parsed tree from admission to
    /// the store, the audit log and read responses without copying it.
    pub fn shared_body(&self) -> &Arc<Value> {
        &self.body
    }

    /// Mutable access to the manifest body — **copy-on-write**: if the tree
    /// is shared (stored object, audit event, replay pool…), a private copy
    /// is split off first and other holders keep the original unchanged.
    /// Metadata accessors are refreshed lazily by
    /// [`K8sObject::sync_metadata`].
    pub fn body_mut(&mut self) -> &mut Value {
        Arc::make_mut(&mut self.body)
    }

    /// Re-read `metadata` from the body after direct mutation.
    pub fn sync_metadata(&mut self) {
        self.metadata = ObjectMeta::from_value(self.body.get("metadata"));
    }

    /// Consume the object and return the (shared) manifest body.
    pub fn into_body(self) -> Arc<Value> {
        self.body
    }

    /// A copy of this object whose body is a freshly allocated, unshared
    /// tree — the pre-zero-copy behaviour, used by the measurement baseline
    /// (`BaselineStore`) to reproduce the old per-request deep-clone cost.
    pub fn deep_clone(&self) -> Self {
        K8sObject {
            kind: self.kind,
            metadata: self.metadata.clone(),
            body: Arc::new((*self.body).clone()),
        }
    }

    /// The `spec` subtree, if present.
    pub fn spec(&self) -> Option<&Value> {
        self.body.get("spec")
    }

    /// Look up an arbitrary field by path on the manifest body.
    pub fn field(&self, path: &Path) -> Option<&Value> {
        self.body.get_path(path)
    }

    /// Set an arbitrary field by path on the manifest body.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidField`] if intermediate nodes have incompatible
    /// types.
    pub fn set_field(&mut self, path: &Path, value: Value) -> Result<()> {
        self.body_mut()
            .set_path(path, value)
            .map_err(|e| Error::InvalidField {
                field: path.to_string(),
                message: e.to_string(),
            })?;
        self.sync_metadata();
        Ok(())
    }

    /// The collapsed field paths (`spec.containers[].image` notation) present
    /// in the manifest — the unit of attack-surface accounting.
    pub fn field_paths(&self) -> Vec<String> {
        self.body.field_paths()
    }

    /// Serialize back to YAML.
    pub fn to_yaml(&self) -> String {
        kf_yaml::to_yaml(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEPLOYMENT: &str = r#"apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx
  namespace: web
spec:
  replicas: 2
  template:
    spec:
      containers:
        - name: nginx
          image: nginx:1.25
"#;

    #[test]
    fn parses_a_deployment_manifest() {
        let obj = K8sObject::from_yaml(DEPLOYMENT).unwrap();
        assert_eq!(obj.kind(), ResourceKind::Deployment);
        assert_eq!(obj.name(), "nginx");
        assert_eq!(obj.namespace(), "web");
        assert_eq!(obj.gvk().api_version(), "apps/v1");
        assert_eq!(
            obj.field(&Path::parse("spec.replicas").unwrap())
                .unwrap()
                .as_i64(),
            Some(2)
        );
    }

    #[test]
    fn missing_kind_is_an_error() {
        let err = K8sObject::from_yaml("metadata:\n  name: x\n").unwrap_err();
        assert!(matches!(err, Error::MissingField { .. }));
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let err = K8sObject::from_yaml("kind: Gateway\nmetadata:\n  name: x\n").unwrap_err();
        assert!(matches!(err, Error::UnknownKind { .. }));
    }

    #[test]
    fn missing_name_is_an_error() {
        let err = K8sObject::from_yaml("kind: Pod\nmetadata: {}\n").unwrap_err();
        assert!(matches!(err, Error::MissingField { .. }));
    }

    #[test]
    fn minimal_objects_have_api_version_and_metadata() {
        let obj = K8sObject::minimal(ResourceKind::Service, "svc", "default");
        assert_eq!(obj.kind(), ResourceKind::Service);
        assert_eq!(obj.body().get("apiVersion").unwrap().as_str(), Some("v1"));
        assert_eq!(obj.namespace(), "default");
        let cluster = K8sObject::minimal(ResourceKind::ClusterRole, "admin", "ignored");
        assert_eq!(cluster.namespace(), "");
    }

    #[test]
    fn set_field_updates_body_and_metadata() {
        let mut obj = K8sObject::from_yaml(DEPLOYMENT).unwrap();
        obj.set_field(
            &Path::parse("metadata.labels.app").unwrap(),
            Value::from("nginx"),
        )
        .unwrap();
        assert_eq!(
            obj.metadata().labels.get("app").map(String::as_str),
            Some("nginx")
        );
        obj.set_field(
            &Path::parse("spec.template.spec.hostNetwork").unwrap(),
            Value::Bool(true),
        )
        .unwrap();
        assert!(obj
            .field_paths()
            .contains(&"spec.template.spec.hostNetwork".to_string()));
    }

    #[test]
    fn from_shared_takes_a_handle_without_copying() {
        let tree = Arc::new(kf_yaml::parse(DEPLOYMENT).unwrap());
        let obj = K8sObject::from_shared(Arc::clone(&tree)).unwrap();
        assert!(
            Arc::ptr_eq(obj.shared_body(), &tree),
            "from_shared must keep the caller's allocation"
        );
        // Cloning the object shares the same tree.
        let copy = obj.clone();
        assert!(Arc::ptr_eq(copy.shared_body(), &tree));
        // into_body returns the very same handle.
        assert!(Arc::ptr_eq(&copy.into_body(), &tree));
    }

    #[test]
    fn body_mut_is_copy_on_write() {
        let tree = Arc::new(kf_yaml::parse(DEPLOYMENT).unwrap());
        let mut obj = K8sObject::from_shared(Arc::clone(&tree)).unwrap();
        obj.set_field(&Path::parse("spec.replicas").unwrap(), Value::Int(9))
            .unwrap();
        // The mutation split off a private copy…
        assert!(!Arc::ptr_eq(obj.shared_body(), &tree));
        assert_eq!(
            obj.field(&Path::parse("spec.replicas").unwrap())
                .unwrap()
                .as_i64(),
            Some(9)
        );
        // …and the original holders are untouched.
        assert_eq!(
            tree.get_path(&Path::parse("spec.replicas").unwrap())
                .unwrap()
                .as_i64(),
            Some(2)
        );
        // An unshared object mutates in place (no second allocation).
        let before = Arc::as_ptr(obj.shared_body());
        obj.set_field(&Path::parse("spec.replicas").unwrap(), Value::Int(4))
            .unwrap();
        assert_eq!(Arc::as_ptr(obj.shared_body()), before);
    }

    #[test]
    fn deep_clone_detaches_the_tree() {
        let obj = K8sObject::from_yaml(DEPLOYMENT).unwrap();
        let detached = obj.deep_clone();
        assert!(!Arc::ptr_eq(obj.shared_body(), detached.shared_body()));
        assert_eq!(obj.body(), detached.body());
    }

    #[test]
    fn yaml_roundtrip_preserves_structure() {
        let obj = K8sObject::from_yaml(DEPLOYMENT).unwrap();
        let reparsed = K8sObject::from_yaml(&obj.to_yaml()).unwrap();
        assert!(reparsed.body().loosely_equals(obj.body()));
    }
}
