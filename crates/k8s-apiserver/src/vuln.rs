//! CVE-trigger simulation.
//!
//! The real exploits in the paper's catalog are delivered purely as malicious
//! YAML specifications through the API. The simulated cluster therefore does
//! not need to reproduce the post-exploitation effects (host filesystem
//! access, privilege escalation, …); it only needs to know *whether the
//! vulnerable code path would have been exercised* by an accepted request.
//! That is what this oracle decides, using the trigger conditions recorded in
//! the CVE database.

use k8s_model::cve::{CveDatabase, CveRecord};
use k8s_model::K8sObject;

/// Decides which CVEs an accepted object specification would exercise.
#[derive(Debug, Clone, Default)]
pub struct VulnerabilityOracle {
    database: CveDatabase,
}

impl VulnerabilityOracle {
    /// An oracle over the built-in CVE database.
    pub fn new() -> Self {
        VulnerabilityOracle {
            database: CveDatabase::new(),
        }
    }

    /// The underlying CVE database.
    pub fn database(&self) -> &CveDatabase {
        &self.database
    }

    /// The CVEs whose vulnerable code would be exercised by this object.
    pub fn triggered_by(&self, object: &K8sObject) -> Vec<&CveRecord> {
        self.database
            .records()
            .iter()
            .filter(|record| record.is_triggered_by(object))
            .collect()
    }

    /// Whether the object triggers any CVE at all.
    pub fn is_dangerous(&self, object: &K8sObject) -> bool {
        !self.triggered_by(object).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privileged_pod_triggers_multiple_cves() {
        let oracle = VulnerabilityOracle::new();
        let object = K8sObject::from_yaml(
            r#"apiVersion: v1
kind: Pod
metadata:
  name: attack
spec:
  hostNetwork: true
  containers:
    - name: c
      image: nginx
      securityContext:
        privileged: true
"#,
        )
        .unwrap();
        let triggered: Vec<&str> = oracle
            .triggered_by(&object)
            .iter()
            .map(|r| r.id.as_str())
            .collect();
        assert!(triggered.contains(&"CVE-2020-15257"));
        assert!(triggered.contains(&"CVE-2021-21334"));
    }

    #[test]
    fn hardened_pod_triggers_nothing() {
        let oracle = VulnerabilityOracle::new();
        let object = K8sObject::from_yaml(
            r#"apiVersion: v1
kind: Pod
metadata:
  name: safe
spec:
  containers:
    - name: c
      image: nginx
      resources:
        limits:
          cpu: 100m
          memory: 128Mi
      securityContext:
        runAsNonRoot: true
        privileged: false
"#,
        )
        .unwrap();
        assert!(!oracle.is_dangerous(&object));
    }

    #[test]
    fn configmaps_never_trigger_pod_cves() {
        let oracle = VulnerabilityOracle::new();
        let object = K8sObject::from_yaml(
            "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: cfg\ndata:\n  subPath: tricky\n",
        )
        .unwrap();
        assert!(!oracle.is_dangerous(&object));
    }
}
