//! The revision-indexed watch plane: bounded, namespace-sharded per-kind
//! event journals.
//!
//! Every store write publishes a [`WatchEvent`] into the journal of the
//! written kind, keyed by the store's global revision counter. The journal is
//! the source of truth for incremental reads: a client that knows revision
//! `R` asks for "everything after `R`" and receives exactly the writes it
//! missed, in revision order — no list, no snapshot, no polling the whole
//! collection.
//!
//! Since the write-path scale-out each per-kind journal is **sub-sharded by
//! namespace hash** ([`DEFAULT_JOURNAL_SHARDS`] sub-shards per kind, each
//! behind its own lock): same-kind writers in different namespaces no longer
//! serialize on one journal mutex, and a namespace-scoped subscriber reads
//! exactly its own sub-shard instead of filtering the whole kind's delta
//! suffix linearly. Publication is **batched**: events are fully staged
//! (strings, `Arc` clone) before any journal lock is taken, and multi-write
//! operations enter each touched sub-shard's critical section **once** for
//! the whole batch ([`KindJournals::publish_batch`]), amortizing the lock.
//! Revision allocation stays inside the journal critical section, so each
//! sub-shard remains a gapless-by-construction revision sequence.
//!
//! Two disciplines matter here, both inherited from the zero-copy
//! persistence plane:
//!
//! * **Zero copy** — a published event holds the *same* `Arc<Value>` the
//!   store holds for the object; delivering an event to any number of
//!   subscribers never copies a document tree. (The deep-clone
//!   [`crate::BaselineStore`] copies the tree out per event per call, which
//!   is exactly the per-subscriber cost the journal design avoids.)
//! * **Bounded memory** — each sub-shard retains at most `capacity` events.
//!   Older events are compacted away; a cursor that predates the compaction
//!   horizon of **any sub-shard it needs** gets [`WatchError::Gone`] and
//!   must re-list, exactly like a Kubernetes client receiving HTTP 410 from
//!   a compacted etcd. A namespace-scoped cursor needs only its own
//!   sub-shard, so foreign-namespace churn can no longer force a spurious
//!   re-list.
//!
//! Ordering correctness: a revision is **allocated and published under its
//! sub-shard's lock**, so every sub-shard is a strictly increasing revision
//! sequence with no gap that could be filled later; revisions are globally
//! totally ordered (one atomic counter), so a k-way **merge-on-read by
//! revision** over the sub-shards reconstructs the per-kind order exactly —
//! the merge is correct by construction. See `docs/watch-plane.md` for the
//! full argument.

use std::collections::VecDeque;
use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use k8s_model::ResourceKind;
use kf_yaml::Value;

/// What happened to the watched object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// The object was created (or appeared in an initial listing).
    Added,
    /// The object was replaced by an update/upsert.
    Modified,
    /// The object was deleted; the event carries its last stored state.
    Deleted,
    /// A progress marker carrying only a revision, so idle watchers can
    /// advance their cursor without receiving object payloads.
    Bookmark,
}

impl WatchEventKind {
    /// The wire name of the event type (`ADDED`, `MODIFIED`, `DELETED`,
    /// `BOOKMARK`), matching the Kubernetes watch stream convention.
    pub fn as_str(&self) -> &'static str {
        match self {
            WatchEventKind::Added => "ADDED",
            WatchEventKind::Modified => "MODIFIED",
            WatchEventKind::Deleted => "DELETED",
            WatchEventKind::Bookmark => "BOOKMARK",
        }
    }
}

impl fmt::Display for WatchEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One incremental change to a watched collection.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// What happened.
    pub kind: WatchEventKind,
    /// The global store revision assigned to the write (for bookmarks: the
    /// cursor the client should resume from).
    pub revision: u64,
    /// Namespace of the affected object (empty for cluster-scoped kinds and
    /// bookmarks).
    pub namespace: String,
    /// Name of the affected object (empty for bookmarks).
    pub name: String,
    /// The object as stored at this revision (for `Deleted`: its last stored
    /// state). On the zero-copy plane this is **the** stored tree — the same
    /// `Arc<Value>` the store and every read share. `None` for bookmarks.
    pub object: Option<Arc<Value>>,
}

impl WatchEvent {
    /// A bookmark event: no object, just a safe resume revision.
    pub fn bookmark(revision: u64) -> Self {
        WatchEvent {
            kind: WatchEventKind::Bookmark,
            revision,
            namespace: String::new(),
            name: String::new(),
            object: None,
        }
    }

    /// Whether this event carries an object payload (everything but
    /// bookmarks).
    pub fn has_object(&self) -> bool {
        self.object.is_some()
    }
}

/// One delivered batch of journal events plus the safe resume cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchDelta {
    /// The matching events after the requested cursor, in revision order.
    pub events: Vec<WatchEvent>,
    /// The global revision counter at delivery time (never below the
    /// requested cursor), read while the scanned sub-shards are locked so
    /// no matching event `<=` it can be published afterwards. Resuming from
    /// here is lossless: every revision between the last delivered event
    /// and this value either failed the namespace filter or belongs to
    /// another kind or sub-shard — which is what lets a quiet-namespace
    /// watcher on a busy kind ride bookmarks past foreign churn instead of
    /// falling behind the compaction horizon.
    pub resume: u64,
}

/// Why an incremental read could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchError {
    /// The requested cursor predates the compaction horizon of a journal
    /// sub-shard the read needs: some events after it have been dropped, so
    /// the only consistent recovery is a fresh list (initial watch) and a
    /// new cursor. `compacted_through` is the highest revision that is no
    /// longer replayable.
    Gone {
        /// Highest revision dropped by compaction among the needed
        /// sub-shards; cursors `>=` this value are still servable.
        compacted_through: u64,
    },
}

impl fmt::Display for WatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchError::Gone { compacted_through } => write!(
                f,
                "watch cursor predates the compacted journal (compacted through revision \
                 {compacted_through}); re-list and resume"
            ),
        }
    }
}

/// Default per-sub-shard journal capacity: enough to absorb the bursts the
/// throughput drivers generate between reconcile ticks, small enough that a
/// store never holds more than a few thousand event envelopes per sub-shard
/// (the envelopes are handles — the trees they point at live in the store
/// anyway).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Default number of namespace sub-shards per kind journal. A small power of
/// two: enough to spread the operator workloads' namespaces so same-kind
/// writers in different namespaces do not serialize on one lock, cheap to
/// merge on an all-namespaces read.
pub const DEFAULT_JOURNAL_SHARDS: usize = 8;

/// The journal sub-shard a namespace's events land in (and the only
/// sub-shard a namespace-scoped subscriber ever reads). Exposed so tests can
/// construct namespaces that collide or diverge deliberately.
pub fn namespace_shard(namespace: &str, shard_count: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    namespace.hash(&mut hasher);
    (hasher.finish() as usize) % shard_count.max(1)
}

/// A fully-built event envelope waiting for its revision. Everything
/// allocation-heavy — the namespace/name strings and the `Arc` clone —
/// happens **before** any journal lock is taken, so the journal critical
/// section is down to revision allocation and two deque operations.
#[derive(Debug)]
pub(crate) struct StagedEvent {
    kind: ResourceKind,
    event: WatchEventKind,
    namespace: String,
    name: String,
    object: Arc<Value>,
}

impl StagedEvent {
    pub(crate) fn new(
        kind: ResourceKind,
        event: WatchEventKind,
        namespace: &str,
        name: &str,
        object: &Arc<Value>,
    ) -> Self {
        StagedEvent {
            kind,
            event,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            object: Arc::clone(object),
        }
    }

    fn into_event(self, revision: u64) -> WatchEvent {
        WatchEvent {
            kind: self.event,
            revision,
            namespace: self.namespace,
            name: self.name,
            object: Some(self.object),
        }
    }
}

/// One sub-shard's bounded event journal.
#[derive(Debug, Default)]
struct JournalInner {
    events: VecDeque<WatchEvent>,
    /// Highest revision dropped by compaction (0: nothing dropped yet).
    compacted_through: u64,
    /// Highest revision ever published to this sub-shard (0: none yet).
    last_revision: u64,
}

impl JournalInner {
    /// Index of the first retained event with revision strictly greater
    /// than `cursor`. The sub-shard is sorted by revision, so the resume
    /// point is binary-searched: an up-to-date subscriber pays for its
    /// deltas, not for the whole retained ring.
    fn suffix_start(&self, cursor: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.events.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.events[mid].revision <= cursor {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// The per-kind, namespace-sub-sharded journals behind a store:
/// `ResourceKind::COUNT * shard_count` bounded buffers, each guarded by its
/// own lock, so watch traffic on one kind never contends with writes to
/// another — and same-kind writes to different namespaces do not contend
/// either.
#[derive(Debug)]
pub(crate) struct KindJournals {
    /// Read-write locks, flat-indexed `kind.index() * shard_count +
    /// namespace_shard(ns)`: only publication mutates a sub-shard, so
    /// concurrent subscribers drain deltas in parallel and contend with
    /// writers only for the lock itself.
    shards: Vec<RwLock<JournalInner>>,
    shard_count: usize,
    capacity: usize,
}

impl KindJournals {
    pub(crate) fn new(capacity: usize, shard_count: usize) -> Self {
        assert!(capacity > 0, "journals need room for at least one event");
        assert!(shard_count > 0, "journals need at least one sub-shard");
        KindJournals {
            shards: (0..ResourceKind::COUNT * shard_count)
                .map(|_| RwLock::new(JournalInner::default()))
                .collect(),
            shard_count,
            capacity,
        }
    }

    fn shard_of(&self, kind: ResourceKind, namespace: &str) -> &RwLock<JournalInner> {
        &self.shards[kind.index() * self.shard_count + namespace_shard(namespace, self.shard_count)]
    }

    /// All sub-shards of one kind, in sub-shard order.
    fn kind_shards(&self, kind: ResourceKind) -> &[RwLock<JournalInner>] {
        let start = kind.index() * self.shard_count;
        &self.shards[start..start + self.shard_count]
    }

    /// Allocate the next global revision and append the staged event, all
    /// under the sub-shard's (already held) write lock. This is the linchpin
    /// of watch correctness: because allocation happens inside the critical
    /// section, each sub-shard is a gapless-by-construction revision
    /// sequence — no event with a smaller revision can appear after a larger
    /// one has been observed there.
    fn push_locked(
        inner: &mut JournalInner,
        capacity: usize,
        revision: &AtomicU64,
        staged: StagedEvent,
    ) -> u64 {
        let assigned = revision.fetch_add(1, Ordering::Relaxed) + 1;
        if inner.events.len() == capacity {
            let dropped = inner.events.pop_front().expect("capacity > 0");
            inner.compacted_through = dropped.revision;
        }
        inner.events.push_back(staged.into_event(assigned));
        inner.last_revision = assigned;
        assigned
    }

    /// Publish one staged event, allocating its revision inside its
    /// sub-shard's critical section.
    ///
    /// Must be called while holding the written object's store-shard lock
    /// (see the store write paths), so an initial-list scan that starts
    /// after a published revision is guaranteed to observe the map effect
    /// too.
    pub(crate) fn publish(&self, revision: &AtomicU64, staged: StagedEvent) -> u64 {
        let mut inner = self.shard_of(staged.kind, &staged.namespace).write();
        Self::push_locked(&mut inner, self.capacity, revision, staged)
    }

    /// Publish a batch of staged events, entering each touched sub-shard's
    /// critical section **once** for its whole group — the lock is paid per
    /// sub-shard, not per event. Returns the assigned revisions aligned to
    /// the input order. Events for the same object stay in input order (one
    /// object maps to one sub-shard); across sub-shards the revisions of a
    /// batch may interleave, which the total revision order absorbs.
    ///
    /// The same store-shard-lock contract as [`KindJournals::publish`]
    /// applies.
    pub(crate) fn publish_batch(&self, revision: &AtomicU64, staged: Vec<StagedEvent>) -> Vec<u64> {
        let mut assigned = vec![0u64; staged.len()];
        // Group input indices by sub-shard, preserving relative order.
        let mut groups: Vec<Vec<(usize, StagedEvent)>> = Vec::new();
        groups.resize_with(self.shard_count, Vec::new);
        let mut kind: Option<ResourceKind> = None;
        for (index, event) in staged.into_iter().enumerate() {
            // Batches may span kinds; re-bucket lazily per kind run. The
            // common callers (delete_collection, apply_batch groups) stay
            // single-kind, so this loop almost never flushes early.
            if kind.is_some_and(|k| k != event.kind) {
                self.flush_groups(revision, kind.expect("checked"), &mut groups, &mut assigned);
            }
            kind = Some(event.kind);
            groups[namespace_shard(&event.namespace, self.shard_count)].push((index, event));
        }
        if let Some(kind) = kind {
            self.flush_groups(revision, kind, &mut groups, &mut assigned);
        }
        assigned
    }

    fn flush_groups(
        &self,
        revision: &AtomicU64,
        kind: ResourceKind,
        groups: &mut [Vec<(usize, StagedEvent)>],
        assigned: &mut [u64],
    ) {
        let start = kind.index() * self.shard_count;
        for (shard, group) in groups.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            // One critical-section entry for the whole group.
            let mut inner = self.shards[start + shard].write();
            for (index, event) in group.drain(..) {
                assigned[index] = Self::push_locked(&mut inner, self.capacity, revision, event);
            }
        }
    }

    /// Every event of `kind` with revision strictly greater than `cursor`,
    /// restricted to `namespace` when non-empty, in revision order —
    /// together with the resume cursor ([`WatchDelta`]).
    ///
    /// A namespace-scoped read locks and scans **only its own sub-shard**
    /// (the fix for the old linear namespace filter over the whole delta
    /// suffix); an all-namespaces read locks every sub-shard of the kind at
    /// once and k-way-merges their suffixes by revision — correct by
    /// construction because revisions are globally totally ordered. The
    /// resume cursor is the global revision counter read while the scanned
    /// sub-shards are locked: any event published later (to any scanned
    /// sub-shard) must allocate a strictly larger revision.
    ///
    /// `copy` selects the delivery discipline: `false` hands out the
    /// journal's own handles (zero-copy), `true` deep-clones each tree
    /// (the baseline's per-subscriber copy).
    pub(crate) fn events_since(
        &self,
        revision: &AtomicU64,
        kind: ResourceKind,
        namespace: &str,
        cursor: u64,
        copy: bool,
    ) -> Result<WatchDelta, WatchError> {
        let deliver = |event: &WatchEvent| {
            if copy {
                WatchEvent {
                    object: event.object.as_ref().map(|tree| Arc::new((**tree).clone())),
                    ..event.clone()
                }
            } else {
                event.clone()
            }
        };
        if !namespace.is_empty() {
            // Namespace-scoped: exactly one sub-shard holds every event of
            // this namespace, so only it is locked, searched and filtered
            // (the filter now runs over same-sub-shard neighbours only).
            let inner = self.shard_of(kind, namespace).read();
            if cursor < inner.compacted_through {
                return Err(WatchError::Gone {
                    compacted_through: inner.compacted_through,
                });
            }
            let events = inner
                .events
                .range(inner.suffix_start(cursor)..)
                .filter(|event| event.namespace == namespace)
                .map(deliver)
                .collect();
            return Ok(WatchDelta {
                events,
                resume: cursor.max(revision.load(Ordering::Relaxed)),
            });
        }
        // All namespaces: hold every sub-shard's read lock at once (writers
        // only ever hold one sub-shard lock, so this cannot deadlock), then
        // merge the suffixes by revision.
        let guards: Vec<_> = self
            .kind_shards(kind)
            .iter()
            .map(|shard| shard.read())
            .collect();
        let mut compacted_through = 0;
        for guard in &guards {
            if cursor < guard.compacted_through {
                compacted_through = compacted_through.max(guard.compacted_through);
            }
        }
        if compacted_through > 0 {
            return Err(WatchError::Gone { compacted_through });
        }
        let mut heads: Vec<usize> = guards.iter().map(|g| g.suffix_start(cursor)).collect();
        let total: usize = guards
            .iter()
            .zip(&heads)
            .map(|(g, head)| g.events.len() - head)
            .sum();
        let mut events = Vec::with_capacity(total);
        // k-way merge by revision: k is the sub-shard count (small), each
        // suffix already sorted, so repeatedly taking the minimum head
        // reconstructs the total order exactly.
        while events.len() < total {
            let next = guards
                .iter()
                .zip(&heads)
                .enumerate()
                .filter_map(|(i, (g, &head))| g.events.get(head).map(|event| (i, event.revision)))
                .min_by_key(|&(_, revision)| revision)
                .map(|(i, _)| i)
                .expect("events remain below total");
            events.push(deliver(&guards[next].events[heads[next]]));
            heads[next] += 1;
        }
        Ok(WatchDelta {
            events,
            // Read while every sub-shard is locked, so no event of this
            // kind with a smaller revision can be published afterwards.
            resume: cursor.max(revision.load(Ordering::Relaxed)),
        })
    }

    /// The highest revision published to `kind`'s journal so far (0 when the
    /// kind has never been written) — the max over its sub-shards. Safe as
    /// an initial-list cursor: every event `≤` this value was fully
    /// published (and, per the [`KindJournals::publish`] contract, its store
    /// effect is visible to any scan that starts afterwards).
    pub(crate) fn watch_revision(&self, kind: ResourceKind) -> u64 {
        self.kind_shards(kind)
            .iter()
            .map(|shard| shard.read().last_revision)
            .max()
            .unwrap_or(0)
    }
}

/// A pull-style subscription over a store's watch journal: remembers the
/// kind, namespace and resume cursor, and advances the cursor past every
/// batch it delivers — the store-level API the informer pattern builds on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchSubscription {
    kind: ResourceKind,
    namespace: String,
    revision: u64,
}

impl WatchSubscription {
    /// Subscribe to `kind` (in `namespace`; every namespace when empty)
    /// starting after `revision`. Use `revision = 0` to replay the whole
    /// retained journal, or a revision obtained from a list to stream only
    /// what follows it.
    pub fn at(kind: ResourceKind, namespace: &str, revision: u64) -> Self {
        WatchSubscription {
            kind,
            namespace: namespace.to_owned(),
            revision,
        }
    }

    /// The current resume cursor.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Pull every event published since the last poll, advancing the cursor
    /// to the delta's resume point (lossless: skipped revisions failed the
    /// namespace filter or live in sub-shards this subscription does not
    /// need), so even an event-free poll keeps the cursor ahead of
    /// compaction. On [`WatchError::Gone`] the cursor is left untouched —
    /// the caller re-lists and builds a fresh subscription from the list's
    /// cursor.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] when the cursor predates the compaction horizon
    /// of a needed journal sub-shard.
    pub fn poll<S: crate::StoreBackend + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<Vec<WatchEvent>, WatchError> {
        let delta = store.events_since(self.kind, &self.namespace, self.revision)?;
        self.revision = delta.resume;
        Ok(delta.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(name: &str) -> Arc<Value> {
        Arc::new(kf_yaml::parse(&format!("kind: Pod\nmetadata:\n  name: {name}\n")).unwrap())
    }

    fn staged(event: WatchEventKind, ns: &str, name: &str, object: &Arc<Value>) -> StagedEvent {
        StagedEvent::new(ResourceKind::Pod, event, ns, name, object)
    }

    #[test]
    fn publish_assigns_strictly_increasing_revisions() {
        let journals = KindJournals::new(16, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let r1 = journals.publish(&counter, staged(WatchEventKind::Added, "ns", "a", &object));
        let r2 = journals.publish(
            &counter,
            staged(WatchEventKind::Modified, "ns", "a", &object),
        );
        assert!(r2 > r1);
        let delta = journals
            .events_since(&counter, ResourceKind::Pod, "ns", 0, false)
            .unwrap();
        assert_eq!(delta.events.len(), 2);
        assert_eq!(delta.events[0].revision, r1);
        assert_eq!(delta.events[1].revision, r2);
        assert_eq!(delta.resume, r2);
        assert_eq!(journals.watch_revision(ResourceKind::Pod), r2);
        assert_eq!(journals.watch_revision(ResourceKind::Service), 0);
    }

    #[test]
    fn events_share_the_published_tree_unless_copying() {
        let journals = KindJournals::new(16, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        journals.publish(&counter, staged(WatchEventKind::Added, "ns", "a", &object));
        let zero_copy = journals
            .events_since(&counter, ResourceKind::Pod, "ns", 0, false)
            .unwrap()
            .events;
        assert!(Arc::ptr_eq(zero_copy[0].object.as_ref().unwrap(), &object));
        let copied = journals
            .events_since(&counter, ResourceKind::Pod, "ns", 0, true)
            .unwrap()
            .events;
        assert!(!Arc::ptr_eq(copied[0].object.as_ref().unwrap(), &object));
        assert!(copied[0].object.as_ref().unwrap().loosely_equals(&object));
    }

    #[test]
    fn namespace_filter_and_cursor_respect_the_contract() {
        let journals = KindJournals::new(16, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let r1 = journals.publish(&counter, staged(WatchEventKind::Added, "ns1", "a", &object));
        journals.publish(&counter, staged(WatchEventKind::Added, "ns2", "b", &object));
        assert_eq!(
            journals
                .events_since(&counter, ResourceKind::Pod, "ns1", 0, false)
                .unwrap()
                .events
                .len(),
            1
        );
        assert_eq!(
            journals
                .events_since(&counter, ResourceKind::Pod, "", 0, false)
                .unwrap()
                .events
                .len(),
            2
        );
        assert_eq!(
            journals
                .events_since(&counter, ResourceKind::Pod, "", r1, false)
                .unwrap()
                .events
                .len(),
            1
        );
        // A namespace-filtered delta still resumes from the global counter.
        let ns1 = journals
            .events_since(&counter, ResourceKind::Pod, "ns1", r1, false)
            .unwrap();
        assert!(ns1.events.is_empty());
        assert_eq!(ns1.resume, journals.watch_revision(ResourceKind::Pod));
    }

    #[test]
    fn merged_reads_reconstruct_the_total_revision_order() {
        // Interleave writes across enough namespaces to populate several
        // sub-shards, then check the all-namespaces merge yields exactly
        // the allocation order.
        let journals = KindJournals::new(64, 4);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let mut expected = Vec::new();
        for round in 0..12 {
            let ns = format!("ns-{}", round % 5);
            expected.push((
                journals.publish(
                    &counter,
                    staged(WatchEventKind::Added, &ns, &format!("obj-{round}"), &object),
                ),
                ns,
            ));
        }
        let delta = journals
            .events_since(&counter, ResourceKind::Pod, "", 0, false)
            .unwrap();
        assert_eq!(
            delta
                .events
                .iter()
                .map(|e| (e.revision, e.namespace.clone()))
                .collect::<Vec<_>>(),
            expected
        );
        assert_eq!(delta.resume, 12);
        // Mid-stream cursors binary-search into every sub-shard.
        let suffix = journals
            .events_since(&counter, ResourceKind::Pod, "", 7, false)
            .unwrap();
        assert_eq!(
            suffix.events.iter().map(|e| e.revision).collect::<Vec<_>>(),
            (8..=12).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn publish_batch_enters_each_sub_shard_once_and_keeps_input_alignment() {
        let journals = KindJournals::new(16, 2);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let batch: Vec<StagedEvent> = (0..6)
            .map(|i| {
                staged(
                    WatchEventKind::Deleted,
                    &format!("ns-{}", i % 3),
                    &format!("obj-{i}"),
                    &object,
                )
            })
            .collect();
        let revisions = journals.publish_batch(&counter, batch);
        assert_eq!(revisions.len(), 6);
        // Every revision allocated exactly once.
        let mut sorted = revisions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=6).collect::<Vec<u64>>());
        // Same-namespace events keep their input order (they share a
        // sub-shard, so their revisions are assigned in batch order).
        assert!(revisions[0] < revisions[3], "ns-0 order preserved");
        assert!(revisions[1] < revisions[4], "ns-1 order preserved");
        // The merged read replays the whole batch in revision order.
        let delta = journals
            .events_since(&counter, ResourceKind::Pod, "", 0, false)
            .unwrap();
        assert_eq!(delta.events.len(), 6);
        assert!(delta
            .events
            .windows(2)
            .all(|w| w[0].revision < w[1].revision));
    }

    #[test]
    fn compaction_reports_gone_for_stale_cursors() {
        let journals = KindJournals::new(2, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        for i in 0..4 {
            journals.publish(
                &counter,
                staged(WatchEventKind::Modified, "ns", &format!("obj-{i}"), &object),
            );
        }
        // Revisions 1 and 2 were compacted away (one namespace, so one
        // sub-shard holds all four events).
        assert_eq!(
            journals.events_since(&counter, ResourceKind::Pod, "ns", 0, false),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        assert_eq!(
            journals.events_since(&counter, ResourceKind::Pod, "ns", 1, false),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        // The all-namespaces read needs that sub-shard too.
        assert_eq!(
            journals.events_since(&counter, ResourceKind::Pod, "", 1, false),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        // A cursor at the horizon is still servable.
        let delta = journals
            .events_since(&counter, ResourceKind::Pod, "ns", 2, false)
            .unwrap();
        assert_eq!(delta.events.len(), 2);
        assert_eq!(delta.events[0].revision, 3);
        assert_eq!(delta.resume, 4);
    }

    #[test]
    fn foreign_sub_shard_compaction_does_not_gone_a_namespace_cursor() {
        // Two namespaces in different sub-shards: churn one far past the
        // capacity; a cursor scoped to the quiet namespace stays servable,
        // while the all-namespaces cursor (which needs the churned
        // sub-shard) gets Gone.
        let shard_count = 4;
        let journals = KindJournals::new(2, shard_count);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let quiet = "quiet".to_owned();
        let busy = (0..64)
            .map(|i| format!("busy-{i}"))
            .find(|ns| namespace_shard(ns, shard_count) != namespace_shard(&quiet, shard_count))
            .expect("some namespace hashes elsewhere");
        journals.publish(
            &counter,
            staged(WatchEventKind::Added, &quiet, "q", &object),
        );
        for i in 0..6 {
            journals.publish(
                &counter,
                staged(WatchEventKind::Added, &busy, &format!("b-{i}"), &object),
            );
        }
        let quiet_delta = journals
            .events_since(&counter, ResourceKind::Pod, &quiet, 0, false)
            .unwrap();
        assert_eq!(quiet_delta.events.len(), 1);
        assert_eq!(quiet_delta.resume, 7);
        assert!(matches!(
            journals.events_since(&counter, ResourceKind::Pod, "", 0, false),
            Err(WatchError::Gone { .. })
        ));
    }

    #[test]
    fn namespace_shard_is_stable_and_bounded() {
        for shard_count in [1, 2, 8] {
            for ns in ["", "default", "prod", "a-rather-long-namespace-name"] {
                let shard = namespace_shard(ns, shard_count);
                assert!(shard < shard_count);
                assert_eq!(shard, namespace_shard(ns, shard_count));
            }
        }
    }

    #[test]
    fn bookmarks_carry_only_a_revision() {
        let bookmark = WatchEvent::bookmark(7);
        assert_eq!(bookmark.kind, WatchEventKind::Bookmark);
        assert_eq!(bookmark.revision, 7);
        assert!(!bookmark.has_object());
        assert_eq!(WatchEventKind::Bookmark.as_str(), "BOOKMARK");
        assert_eq!(WatchEventKind::Added.to_string(), "ADDED");
    }
}
