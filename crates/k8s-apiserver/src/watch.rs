//! The revision-indexed watch plane: bounded per-kind event journals.
//!
//! Every store write publishes a [`WatchEvent`] into the journal of the
//! written kind, keyed by the store's global revision counter. The journal is
//! the source of truth for incremental reads: a client that knows revision
//! `R` asks for "everything after `R`" and receives exactly the writes it
//! missed, in revision order — no list, no snapshot, no polling the whole
//! collection.
//!
//! Two disciplines matter here, both inherited from the zero-copy
//! persistence plane:
//!
//! * **Zero copy** — a published event holds the *same* `Arc<Value>` the
//!   store holds for the object; delivering an event to any number of
//!   subscribers never copies a document tree. (The deep-clone
//!   [`crate::BaselineStore`] copies the tree out per event per call, which
//!   is exactly the per-subscriber cost the journal design avoids.)
//! * **Bounded memory** — each kind's journal retains at most `capacity`
//!   events. Older events are compacted away; a cursor that predates the
//!   compaction horizon gets [`WatchError::Gone`] and must re-list, exactly
//!   like a Kubernetes client receiving HTTP 410 from a compacted etcd.
//!
//! Ordering correctness: a revision is **allocated and published under the
//! journal's lock**, so the journal of one kind is always a strictly
//! increasing revision sequence with no gap that could be filled later — a
//! reader that has seen revision `R` can never miss an event `≤ R` by
//! advancing its cursor. See `docs/watch-plane.md` for the full argument.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use k8s_model::ResourceKind;
use kf_yaml::Value;

/// What happened to the watched object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// The object was created (or appeared in an initial listing).
    Added,
    /// The object was replaced by an update/upsert.
    Modified,
    /// The object was deleted; the event carries its last stored state.
    Deleted,
    /// A progress marker carrying only a revision, so idle watchers can
    /// advance their cursor without receiving object payloads.
    Bookmark,
}

impl WatchEventKind {
    /// The wire name of the event type (`ADDED`, `MODIFIED`, `DELETED`,
    /// `BOOKMARK`), matching the Kubernetes watch stream convention.
    pub fn as_str(&self) -> &'static str {
        match self {
            WatchEventKind::Added => "ADDED",
            WatchEventKind::Modified => "MODIFIED",
            WatchEventKind::Deleted => "DELETED",
            WatchEventKind::Bookmark => "BOOKMARK",
        }
    }
}

impl fmt::Display for WatchEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One incremental change to a watched collection.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// What happened.
    pub kind: WatchEventKind,
    /// The global store revision assigned to the write (for bookmarks: the
    /// cursor the client should resume from).
    pub revision: u64,
    /// Namespace of the affected object (empty for cluster-scoped kinds and
    /// bookmarks).
    pub namespace: String,
    /// Name of the affected object (empty for bookmarks).
    pub name: String,
    /// The object as stored at this revision (for `Deleted`: its last stored
    /// state). On the zero-copy plane this is **the** stored tree — the same
    /// `Arc<Value>` the store and every read share. `None` for bookmarks.
    pub object: Option<Arc<Value>>,
}

impl WatchEvent {
    /// A bookmark event: no object, just a safe resume revision.
    pub fn bookmark(revision: u64) -> Self {
        WatchEvent {
            kind: WatchEventKind::Bookmark,
            revision,
            namespace: String::new(),
            name: String::new(),
            object: None,
        }
    }

    /// Whether this event carries an object payload (everything but
    /// bookmarks).
    pub fn has_object(&self) -> bool {
        self.object.is_some()
    }
}

/// One delivered batch of journal events plus the safe resume cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchDelta {
    /// The matching events after the requested cursor, in revision order.
    pub events: Vec<WatchEvent>,
    /// The journal's head revision at delivery time (never below the
    /// requested cursor). Resuming from here is lossless: every revision
    /// between the last delivered event and this value failed the
    /// namespace filter — which is what lets a quiet-namespace watcher on
    /// a busy kind ride bookmarks past foreign churn instead of falling
    /// behind the compaction horizon.
    pub resume: u64,
}

/// Why an incremental read could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchError {
    /// The requested cursor predates the journal's compaction horizon: some
    /// events after it have been dropped, so the only consistent recovery is
    /// a fresh list (initial watch) and a new cursor. `compacted_through` is
    /// the highest revision that is no longer replayable.
    Gone {
        /// Highest revision dropped by compaction; cursors `>=` this value
        /// are still servable.
        compacted_through: u64,
    },
}

impl fmt::Display for WatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchError::Gone { compacted_through } => write!(
                f,
                "watch cursor predates the compacted journal (compacted through revision \
                 {compacted_through}); re-list and resume"
            ),
        }
    }
}

/// Default per-kind journal capacity: enough to absorb the bursts the
/// throughput drivers generate between reconcile ticks, small enough that a
/// store never holds more than a few thousand event envelopes per kind (the
/// envelopes are handles — the trees they point at live in the store anyway).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// One kind's bounded event journal.
#[derive(Debug, Default)]
struct JournalInner {
    events: VecDeque<WatchEvent>,
    /// Highest revision dropped by compaction (0: nothing dropped yet).
    compacted_through: u64,
    /// Highest revision ever published to this journal (0: none yet).
    last_revision: u64,
}

/// The per-kind journals behind a store: one bounded buffer per
/// [`ResourceKind`], each guarded by its own lock so watch traffic on one
/// kind never contends with writes to another.
#[derive(Debug)]
pub(crate) struct KindJournals {
    /// Read-write locks: only [`KindJournals::publish`] mutates a journal,
    /// so concurrent subscribers drain deltas in parallel and contend with
    /// writers only for the lock itself.
    journals: Vec<RwLock<JournalInner>>,
    capacity: usize,
}

impl KindJournals {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journals need room for at least one event");
        KindJournals {
            journals: (0..ResourceKind::COUNT)
                .map(|_| RwLock::new(JournalInner::default()))
                .collect(),
            capacity,
        }
    }

    /// Allocate the next global revision **and** publish the event for it,
    /// atomically with respect to readers of this kind's journal. This is
    /// the linchpin of watch correctness: because allocation happens under
    /// the journal lock, the journal is a gapless-by-construction revision
    /// sequence — no event with a smaller revision can appear after a larger
    /// one has been observed.
    ///
    /// Must be called while holding the written object's shard lock (see the
    /// store write paths), so an initial-list scan that starts after a
    /// published revision is guaranteed to observe the map effect too.
    pub(crate) fn publish(
        &self,
        revision: &AtomicU64,
        kind: ResourceKind,
        event_kind: WatchEventKind,
        namespace: &str,
        name: &str,
        object: &Arc<Value>,
    ) -> u64 {
        let mut inner = self.journals[kind.index()].write();
        let assigned = revision.fetch_add(1, Ordering::Relaxed) + 1;
        if inner.events.len() == self.capacity {
            let dropped = inner.events.pop_front().expect("capacity > 0");
            inner.compacted_through = dropped.revision;
        }
        inner.events.push_back(WatchEvent {
            kind: event_kind,
            revision: assigned,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            object: Some(Arc::clone(object)),
        });
        inner.last_revision = assigned;
        assigned
    }

    /// Every event of `kind` with revision strictly greater than `cursor`,
    /// restricted to `namespace` when non-empty, in revision order —
    /// together with the journal-head resume cursor ([`WatchDelta`]).
    /// `copy` selects the delivery discipline: `false` hands out the
    /// journal's own handles (zero-copy), `true` deep-clones each tree
    /// (the baseline's per-subscriber copy).
    pub(crate) fn events_since(
        &self,
        kind: ResourceKind,
        namespace: &str,
        cursor: u64,
        copy: bool,
    ) -> Result<WatchDelta, WatchError> {
        let inner = self.journals[kind.index()].read();
        if cursor < inner.compacted_through {
            return Err(WatchError::Gone {
                compacted_through: inner.compacted_through,
            });
        }
        // The journal is sorted by revision: binary-search the resume point
        // so an up-to-date subscriber pays for its deltas, not for the whole
        // retained ring.
        let (mut lo, mut hi) = (0usize, inner.events.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if inner.events[mid].revision <= cursor {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let events = inner
            .events
            .range(lo..)
            .filter(|event| namespace.is_empty() || event.namespace == namespace)
            .map(|event| {
                if copy {
                    WatchEvent {
                        object: event.object.as_ref().map(|tree| Arc::new((**tree).clone())),
                        ..event.clone()
                    }
                } else {
                    event.clone()
                }
            })
            .collect();
        Ok(WatchDelta {
            events,
            // Read under the same lock as the scan, so no matching event
            // with a smaller revision can be published afterwards.
            resume: cursor.max(inner.last_revision),
        })
    }

    /// The highest revision published to `kind`'s journal so far (0 when the
    /// kind has never been written). Reading it under the journal lock makes
    /// it a safe initial-list cursor: every event `≤` this value was fully
    /// published (and, per the [`KindJournals::publish`] contract, its store
    /// effect is visible to any scan that starts afterwards).
    pub(crate) fn watch_revision(&self, kind: ResourceKind) -> u64 {
        self.journals[kind.index()].read().last_revision
    }
}

/// A pull-style subscription over a store's watch journal: remembers the
/// kind, namespace and resume cursor, and advances the cursor past every
/// batch it delivers — the store-level API the informer pattern builds on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchSubscription {
    kind: ResourceKind,
    namespace: String,
    revision: u64,
}

impl WatchSubscription {
    /// Subscribe to `kind` (in `namespace`; every namespace when empty)
    /// starting after `revision`. Use `revision = 0` to replay the whole
    /// retained journal, or a revision obtained from a list to stream only
    /// what follows it.
    pub fn at(kind: ResourceKind, namespace: &str, revision: u64) -> Self {
        WatchSubscription {
            kind,
            namespace: namespace.to_owned(),
            revision,
        }
    }

    /// The current resume cursor.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Pull every event published since the last poll, advancing the cursor
    /// to the journal head (lossless: skipped revisions failed the
    /// namespace filter), so even an event-free poll keeps the cursor
    /// ahead of compaction. On [`WatchError::Gone`] the cursor is left
    /// untouched — the caller re-lists and builds a fresh subscription
    /// from the list's cursor.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] when the cursor predates the journal's
    /// compaction horizon.
    pub fn poll<S: crate::StoreBackend + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<Vec<WatchEvent>, WatchError> {
        let delta = store.events_since(self.kind, &self.namespace, self.revision)?;
        self.revision = delta.resume;
        Ok(delta.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(name: &str) -> Arc<Value> {
        Arc::new(kf_yaml::parse(&format!("kind: Pod\nmetadata:\n  name: {name}\n")).unwrap())
    }

    #[test]
    fn publish_assigns_strictly_increasing_revisions() {
        let journals = KindJournals::new(16);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let r1 = journals.publish(
            &counter,
            ResourceKind::Pod,
            WatchEventKind::Added,
            "ns",
            "a",
            &object,
        );
        let r2 = journals.publish(
            &counter,
            ResourceKind::Pod,
            WatchEventKind::Modified,
            "ns",
            "a",
            &object,
        );
        assert!(r2 > r1);
        let delta = journals
            .events_since(ResourceKind::Pod, "ns", 0, false)
            .unwrap();
        assert_eq!(delta.events.len(), 2);
        assert_eq!(delta.events[0].revision, r1);
        assert_eq!(delta.events[1].revision, r2);
        assert_eq!(delta.resume, r2);
        assert_eq!(journals.watch_revision(ResourceKind::Pod), r2);
        assert_eq!(journals.watch_revision(ResourceKind::Service), 0);
    }

    #[test]
    fn events_share_the_published_tree_unless_copying() {
        let journals = KindJournals::new(16);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        journals.publish(
            &counter,
            ResourceKind::Pod,
            WatchEventKind::Added,
            "ns",
            "a",
            &object,
        );
        let zero_copy = journals
            .events_since(ResourceKind::Pod, "ns", 0, false)
            .unwrap()
            .events;
        assert!(Arc::ptr_eq(zero_copy[0].object.as_ref().unwrap(), &object));
        let copied = journals
            .events_since(ResourceKind::Pod, "ns", 0, true)
            .unwrap()
            .events;
        assert!(!Arc::ptr_eq(copied[0].object.as_ref().unwrap(), &object));
        assert!(copied[0].object.as_ref().unwrap().loosely_equals(&object));
    }

    #[test]
    fn namespace_filter_and_cursor_respect_the_contract() {
        let journals = KindJournals::new(16);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let r1 = journals.publish(
            &counter,
            ResourceKind::Pod,
            WatchEventKind::Added,
            "ns1",
            "a",
            &object,
        );
        journals.publish(
            &counter,
            ResourceKind::Pod,
            WatchEventKind::Added,
            "ns2",
            "b",
            &object,
        );
        assert_eq!(
            journals
                .events_since(ResourceKind::Pod, "ns1", 0, false)
                .unwrap()
                .events
                .len(),
            1
        );
        assert_eq!(
            journals
                .events_since(ResourceKind::Pod, "", 0, false)
                .unwrap()
                .events
                .len(),
            2
        );
        assert_eq!(
            journals
                .events_since(ResourceKind::Pod, "", r1, false)
                .unwrap()
                .events
                .len(),
            1
        );
        // A namespace-filtered delta still resumes from the journal head.
        let ns1 = journals
            .events_since(ResourceKind::Pod, "ns1", r1, false)
            .unwrap();
        assert!(ns1.events.is_empty());
        assert_eq!(ns1.resume, journals.watch_revision(ResourceKind::Pod));
    }

    #[test]
    fn compaction_reports_gone_for_stale_cursors() {
        let journals = KindJournals::new(2);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        for i in 0..4 {
            journals.publish(
                &counter,
                ResourceKind::Pod,
                WatchEventKind::Modified,
                "ns",
                &format!("obj-{i}"),
                &object,
            );
        }
        // Revisions 1 and 2 were compacted away.
        assert_eq!(
            journals.events_since(ResourceKind::Pod, "ns", 0, false),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        assert_eq!(
            journals.events_since(ResourceKind::Pod, "ns", 1, false),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        // A cursor at the horizon is still servable.
        let delta = journals
            .events_since(ResourceKind::Pod, "ns", 2, false)
            .unwrap();
        assert_eq!(delta.events.len(), 2);
        assert_eq!(delta.events[0].revision, 3);
        assert_eq!(delta.resume, 4);
    }

    #[test]
    fn bookmarks_carry_only_a_revision() {
        let bookmark = WatchEvent::bookmark(7);
        assert_eq!(bookmark.kind, WatchEventKind::Bookmark);
        assert_eq!(bookmark.revision, 7);
        assert!(!bookmark.has_object());
        assert_eq!(WatchEventKind::Bookmark.as_str(), "BOOKMARK");
        assert_eq!(WatchEventKind::Added.to_string(), "ADDED");
    }
}
