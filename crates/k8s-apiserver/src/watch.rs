//! The revision-indexed watch plane: bounded, namespace-sharded per-kind
//! event journals.
//!
//! Every store write publishes a [`WatchEvent`] into the journal of the
//! written kind, keyed by the store's global revision counter. The journal is
//! the source of truth for incremental reads: a client that knows revision
//! `R` asks for "everything after `R`" and receives exactly the writes it
//! missed, in revision order — no list, no snapshot, no polling the whole
//! collection.
//!
//! Since the write-path scale-out each per-kind journal is **sub-sharded by
//! namespace hash** ([`DEFAULT_JOURNAL_SHARDS`] sub-shards per kind, each
//! behind its own lock): same-kind writers in different namespaces no longer
//! serialize on one journal mutex, and a namespace-scoped subscriber reads
//! exactly its own sub-shard instead of filtering the whole kind's delta
//! suffix linearly. Publication is **batched**: events are fully staged
//! (strings, `Arc` clone) before any journal lock is taken, and multi-write
//! operations enter each touched sub-shard's critical section **once** for
//! the whole batch ([`KindJournals::publish_batch`]), amortizing the lock.
//! Revision allocation stays inside the journal critical section, so each
//! sub-shard remains a gapless-by-construction revision sequence.
//!
//! Two disciplines matter here, both inherited from the zero-copy
//! persistence plane:
//!
//! * **Zero copy** — a published event holds the *same* `Arc<Value>` the
//!   store holds for the object; delivering an event to any number of
//!   subscribers never copies a document tree. (The deep-clone
//!   [`crate::BaselineStore`] copies the tree out per event per call, which
//!   is exactly the per-subscriber cost the journal design avoids.)
//! * **Bounded memory** — each sub-shard retains at most `capacity` events.
//!   Older events are compacted away; a cursor that predates the compaction
//!   horizon of **any sub-shard it needs** gets [`WatchError::Gone`] and
//!   must re-list, exactly like a Kubernetes client receiving HTTP 410 from
//!   a compacted etcd. A namespace-scoped cursor needs only its own
//!   sub-shard, so foreign-namespace churn can no longer force a spurious
//!   re-list.
//!
//! Ordering correctness: a revision is **allocated and published under its
//! sub-shard's lock**, so every sub-shard is a strictly increasing revision
//! sequence with no gap that could be filled later; revisions are globally
//! totally ordered (one atomic counter), so a k-way **merge-on-read by
//! revision** over the sub-shards reconstructs the per-kind order exactly —
//! the merge is correct by construction. See `docs/watch-plane.md` for the
//! full argument.
//!
//! On top of the pull journals sits the **push-notify fabric**:
//!
//! * Every sub-shard (and every kind, for all-namespaces waiters) carries a
//!   [`WakeSignal`] — a generation counter plus condvar bumped inside the
//!   publication critical section — so a pull subscriber can *block* in
//!   [`WatchSubscription::recv_timeout`] instead of burning poll round-trips
//!   while idle. The wait protocol (read generation, poll, wait past the
//!   read generation) cannot lose a wakeup: any publication after the
//!   generation read bumps it and ends the wait.
//! * [`KindJournals::subscribe`] attaches a [`WatchSubscriber`] — a
//!   per-subscriber **bounded delivery queue** fanned out to inside the same
//!   critical section. Bursty same-object writes **coalesce** (last write
//!   wins, delivery order preserved); a consumer that falls more than its
//!   queue bound behind is **evicted** and observes [`WatchError::Gone`],
//!   funneling into the exact re-list recovery path compaction already
//!   exercises. A [`WatchDispatcher`] ready-list lets a handful of collector
//!   threads service tens of thousands of subscriptions without a blocked
//!   thread per watcher.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
// The push fabric uses `std::sync` primitives directly: the repo's
// parking_lot shim has no Condvar, and a Condvar must pair with the mutex
// type it waits on.
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use k8s_model::ResourceKind;
use kf_yaml::Value;

/// What happened to the watched object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchEventKind {
    /// The object was created (or appeared in an initial listing).
    Added,
    /// The object was replaced by an update/upsert.
    Modified,
    /// The object was deleted; the event carries its last stored state.
    Deleted,
    /// A progress marker carrying only a revision, so idle watchers can
    /// advance their cursor without receiving object payloads.
    Bookmark,
}

impl WatchEventKind {
    /// The wire name of the event type (`ADDED`, `MODIFIED`, `DELETED`,
    /// `BOOKMARK`), matching the Kubernetes watch stream convention.
    pub fn as_str(&self) -> &'static str {
        match self {
            WatchEventKind::Added => "ADDED",
            WatchEventKind::Modified => "MODIFIED",
            WatchEventKind::Deleted => "DELETED",
            WatchEventKind::Bookmark => "BOOKMARK",
        }
    }
}

impl fmt::Display for WatchEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One incremental change to a watched collection.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchEvent {
    /// What happened.
    pub kind: WatchEventKind,
    /// The global store revision assigned to the write (for bookmarks: the
    /// cursor the client should resume from).
    pub revision: u64,
    /// Namespace of the affected object (empty for cluster-scoped kinds and
    /// bookmarks).
    pub namespace: String,
    /// Name of the affected object (empty for bookmarks).
    pub name: String,
    /// The object as stored at this revision (for `Deleted`: its last stored
    /// state). On the zero-copy plane this is **the** stored tree — the same
    /// `Arc<Value>` the store and every read share. `None` for bookmarks.
    pub object: Option<Arc<Value>>,
}

impl WatchEvent {
    /// A bookmark event: no object, just a safe resume revision.
    pub fn bookmark(revision: u64) -> Self {
        WatchEvent {
            kind: WatchEventKind::Bookmark,
            revision,
            namespace: String::new(),
            name: String::new(),
            object: None,
        }
    }

    /// Whether this event carries an object payload (everything but
    /// bookmarks).
    pub fn has_object(&self) -> bool {
        self.object.is_some()
    }
}

/// One delivered batch of journal events plus the safe resume cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchDelta {
    /// The matching events after the requested cursor, in revision order.
    pub events: Vec<WatchEvent>,
    /// The global revision counter at delivery time (never below the
    /// requested cursor), read while the scanned sub-shards are locked so
    /// no matching event `<=` it can be published afterwards. Resuming from
    /// here is lossless: every revision between the last delivered event
    /// and this value either failed the namespace filter or belongs to
    /// another kind or sub-shard — which is what lets a quiet-namespace
    /// watcher on a busy kind ride bookmarks past foreign churn instead of
    /// falling behind the compaction horizon.
    pub resume: u64,
}

/// Why an incremental read could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchError {
    /// The requested cursor predates the compaction horizon of a journal
    /// sub-shard the read needs: some events after it have been dropped, so
    /// the only consistent recovery is a fresh list (initial watch) and a
    /// new cursor. `compacted_through` is the highest revision that is no
    /// longer replayable.
    Gone {
        /// Highest revision dropped by compaction among the needed
        /// sub-shards; cursors `>=` this value are still servable.
        compacted_through: u64,
    },
}

impl fmt::Display for WatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchError::Gone { compacted_through } => write!(
                f,
                "watch cursor predates the compacted journal (compacted through revision \
                 {compacted_through}); re-list and resume"
            ),
        }
    }
}

/// Default per-sub-shard journal capacity: enough to absorb the bursts the
/// throughput drivers generate between reconcile ticks, small enough that a
/// store never holds more than a few thousand event envelopes per sub-shard
/// (the envelopes are handles — the trees they point at live in the store
/// anyway).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Default number of namespace sub-shards per kind journal. A small power of
/// two: enough to spread the operator workloads' namespaces so same-kind
/// writers in different namespaces do not serialize on one lock, cheap to
/// merge on an all-namespaces read.
pub const DEFAULT_JOURNAL_SHARDS: usize = 8;

/// The journal sub-shard a namespace's events land in (and the only
/// sub-shard a namespace-scoped subscriber ever reads). Exposed so tests can
/// construct namespaces that collide or diverge deliberately.
pub fn namespace_shard(namespace: &str, shard_count: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    namespace.hash(&mut hasher);
    (hasher.finish() as usize) % shard_count.max(1)
}

/// Default bound on a push subscriber's delivery queue. Coalescing keeps the
/// live entry count at or below the working set of distinct objects churning
/// in the subscription's scope, so this bound is hit only by a consumer that
/// is genuinely not draining — which is exactly when eviction (→ re-list)
/// beats unbounded buffering.
pub const DEFAULT_SUBSCRIBER_QUEUE_CAPACITY: usize = 256;

/// Recover a poisoned std mutex guard: the shim crates already run
/// poison-recovering locks everywhere else, and a panicking publisher leaves
/// the queue/signal state consistent (every transition completes under one
/// lock hold).
fn recover<'a, T>(
    result: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug, Default)]
struct SignalState {
    /// Bumped once per publication (or per batch flush) to the signalled
    /// scope. Waiters compare against a generation they read *before*
    /// polling, so a bump between their read and their wait ends the wait
    /// immediately — the no-lost-wakeup argument in one sentence.
    generation: u64,
    /// How many threads are blocked in [`WakeSignal::wait_past`] right now.
    /// Publication skips the condvar broadcast entirely when nobody waits,
    /// keeping the idle-subscriber cost off the write path.
    waiters: usize,
}

/// A per-scope wakeup primitive: generation counter + condvar. One lives on
/// every journal sub-shard (namespace-scoped waiters) and one on every kind
/// (all-namespaces waiters, which cannot block on several sub-shard condvars
/// at once).
#[derive(Debug, Default)]
pub(crate) struct WakeSignal {
    state: StdMutex<SignalState>,
    cond: Condvar,
}

impl WakeSignal {
    /// Announce that new events may be visible: bump the generation and wake
    /// every blocked waiter. Called inside the publication critical section;
    /// with zero waiters this is one uncontended lock round-trip.
    fn notify(&self) {
        let mut state = recover(self.state.lock());
        state.generation = state.generation.wrapping_add(1);
        if state.waiters > 0 {
            self.cond.notify_all();
        }
    }

    /// The current generation. Read this **before** polling the journal:
    /// waiting past the returned value then cannot miss a publication that
    /// raced the poll.
    pub(crate) fn generation(&self) -> u64 {
        recover(self.state.lock()).generation
    }

    /// Block until the generation moves past `seen` or `timeout` elapses,
    /// returning the generation observed on exit.
    pub(crate) fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut state = recover(self.state.lock());
        while state.generation == seen {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            state.waiters += 1;
            let (guard, _) = self
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
            state.waiters -= 1;
        }
        state.generation
    }
}

/// The ready-list shared by a [`WatchDispatcher`] and the subscribers
/// registered with it: tokens of subscriptions that transitioned from empty
/// to non-empty (or got evicted) and have not been drained since.
#[derive(Debug, Default)]
struct ReadyList {
    queue: StdMutex<VecDeque<usize>>,
    cond: Condvar,
}

impl ReadyList {
    fn push(&self, token: usize) {
        recover(self.queue.lock()).push_back(token);
        self.cond.notify_one();
    }

    fn pop(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut queue = recover(self.queue.lock());
        loop {
            if let Some(token) = queue.pop_front() {
                return Some(token);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cond
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue = guard;
        }
    }
}

/// An epoll-style readiness multiplexer over push subscriptions: register
/// each [`WatchSubscriber`] under a caller-chosen token, then have a small
/// pool of collector threads loop on [`WatchDispatcher::next_ready`] and
/// drain whichever subscription became ready. This is what lets 10k idle
/// informers cost zero threads and zero polls — a subscription only ever
/// surfaces here when its queue went non-empty or it was evicted.
#[derive(Debug, Default)]
pub struct WatchDispatcher {
    ready: Arc<ReadyList>,
}

impl WatchDispatcher {
    /// An empty dispatcher: register subscriptions, then collect readiness.
    pub fn new() -> Self {
        WatchDispatcher::default()
    }

    /// Arm readiness notification for `subscriber` under `token`. If the
    /// queue already holds events (or the subscriber is already evicted) the
    /// token is surfaced immediately, so registration after a burst cannot
    /// strand the backlog.
    pub fn register(&self, subscriber: &WatchSubscriber, token: usize) {
        let mut state = recover(subscriber.core.state.lock());
        state.waker = Some((Arc::clone(&self.ready), token));
        if (state.live > 0 || state.evicted.is_some()) && !state.ready_armed {
            state.ready_armed = true;
            self.ready.push(token);
        }
    }

    /// Block up to `timeout` for the next ready token. `None` on timeout.
    /// After draining the returned subscription (`try_recv`), its next
    /// empty→non-empty transition re-surfaces it.
    pub fn next_ready(&self, timeout: Duration) -> Option<usize> {
        self.ready.pop(timeout)
    }
}

#[derive(Debug, Default)]
struct SubscriberState {
    /// The delivery queue, in per-sub-shard revision order. `None` slots are
    /// tombstones left by coalescing: when a newer event for the same object
    /// arrives, the stale slot is tombstoned and the newest appended at the
    /// tail — last write wins *and* the queue stays revision-sorted.
    slots: VecDeque<Option<WatchEvent>>,
    /// Sequence number of `slots[0]`; `index` maps object keys to absolute
    /// sequences so a coalesce hit finds its stale slot in O(1).
    base_seq: u64,
    /// Live (non-tombstone) entries — the value the queue bound applies to.
    live: usize,
    index: HashMap<(String, String), u64>,
    /// Set when the subscriber fell behind its bound and was evicted; holds
    /// the last revision fanned out before eviction. Drains return
    /// [`WatchError::Gone`] from then on.
    evicted: Option<u64>,
    /// Highest revision offered to this subscriber (starts at the subscribe
    /// cursor) — the resume point a drained-and-idle consumer has reached.
    resume: u64,
    /// The receiving handle was dropped; publication prunes us on sight.
    closed: bool,
    waker: Option<(Arc<ReadyList>, usize)>,
    /// A ready token is outstanding: set on surface, cleared on drain, so a
    /// burst of offers costs one token, not one per event.
    ready_armed: bool,
    /// Delivery counters (drained events / coalesced replacements), for
    /// benches and tests.
    delivered: u64,
    coalesced: u64,
}

/// The shared half of one push subscription: the hub fans events in under
/// the publication critical section, the [`WatchSubscriber`] handle drains
/// them out.
#[derive(Debug)]
struct SubscriberCore {
    /// Namespace filter (empty: all namespaces of the kind).
    namespace: String,
    /// Bound on live queue entries before the slow consumer is evicted.
    capacity: usize,
    /// Deep-clone each offered tree (the baseline store's per-subscriber
    /// copy discipline) instead of sharing the journal's `Arc`.
    copy: bool,
    state: StdMutex<SubscriberState>,
    cond: Condvar,
}

impl SubscriberCore {
    fn new(namespace: &str, cursor: u64, capacity: usize, copy: bool) -> Self {
        SubscriberCore {
            namespace: namespace.to_owned(),
            capacity: capacity.max(1),
            copy,
            state: StdMutex::new(SubscriberState {
                resume: cursor,
                ..SubscriberState::default()
            }),
            cond: Condvar::new(),
        }
    }

    /// Surface readiness: wake a blocked `recv` and (once per drain cycle)
    /// push our token onto the dispatcher's ready-list.
    fn wake(&self, state: &mut SubscriberState) {
        self.cond.notify_all();
        if let Some((ready, token)) = &state.waker {
            if !state.ready_armed {
                state.ready_armed = true;
                ready.push(*token);
            }
        }
    }

    /// Fan one published event into the queue. Returns `false` when the
    /// receiving handle is gone and the hub should prune this subscriber.
    /// Runs inside the publication critical section, so delivery order per
    /// sub-shard is exactly publication order.
    fn offer(&self, event: &WatchEvent) -> bool {
        if !self.namespace.is_empty() && event.namespace != self.namespace {
            return true;
        }
        let mut state = recover(self.state.lock());
        if state.closed {
            return false;
        }
        if state.evicted.is_some() {
            // Already evicted; stay registered (the handle still needs to
            // observe Gone) but drop the event — the re-list will cover it.
            return true;
        }
        state.resume = state.resume.max(event.revision);
        let key = (event.namespace.clone(), event.name.clone());
        let was_idle = state.live == 0;
        if let Some(&seq) = state.index.get(&key) {
            // Coalesce: tombstone the stale slot, append the newest at the
            // tail. The consumer sees one event — the latest — for this
            // object, still in revision order relative to everything else.
            let slot = (seq - state.base_seq) as usize;
            state.slots[slot] = None;
            state.live -= 1;
            state.coalesced += 1;
        } else if state.live == self.capacity {
            // Slow consumer: the queue bound is the contract. Drop the
            // backlog, record the horizon, and let the drain surface Gone —
            // the same re-list recovery compaction already exercises.
            let horizon = state.resume;
            state.evicted = Some(horizon);
            state.slots.clear();
            state.index.clear();
            state.live = 0;
            self.wake(&mut state);
            return true;
        }
        let delivered = if self.copy {
            WatchEvent {
                object: event.object.as_ref().map(|tree| Arc::new((**tree).clone())),
                ..event.clone()
            }
        } else {
            event.clone()
        };
        let seq = state.base_seq + state.slots.len() as u64;
        state.index.insert(key, seq);
        state.slots.push_back(Some(delivered));
        state.live += 1;
        // Bound the tombstone overhead: when dead slots dominate, rebuild
        // the queue densely so memory tracks `live`, not burst history.
        if state.slots.len() > state.live.max(self.capacity).saturating_mul(2) {
            Self::compact(&mut state);
        }
        if was_idle {
            self.wake(&mut state);
        }
        true
    }

    /// Drop tombstones and renumber. O(live) and amortized free: it runs at
    /// most once per `capacity` tombstoned offers.
    fn compact(state: &mut SubscriberState) {
        let dense: VecDeque<Option<WatchEvent>> = state
            .slots
            .drain(..)
            .filter(|slot| slot.is_some())
            .collect();
        state.slots = dense;
        state.base_seq = 0;
        state.index.clear();
        for (slot, event) in state.slots.iter().enumerate() {
            let event = event.as_ref().expect("dense after compaction");
            state
                .index
                .insert((event.namespace.clone(), event.name.clone()), slot as u64);
        }
    }

    /// Take everything queued (possibly empty), or `Gone` after eviction.
    fn drain(&self) -> Result<Vec<WatchEvent>, WatchError> {
        let mut state = recover(self.state.lock());
        Self::drain_locked(&mut state)
    }

    fn drain_locked(state: &mut SubscriberState) -> Result<Vec<WatchEvent>, WatchError> {
        state.ready_armed = false;
        if let Some(compacted_through) = state.evicted {
            return Err(WatchError::Gone { compacted_through });
        }
        let drained = state.slots.len() as u64;
        let events: Vec<WatchEvent> = state.slots.drain(..).flatten().collect();
        state.base_seq += drained;
        state.index.clear();
        state.live = 0;
        state.delivered += events.len() as u64;
        Ok(events)
    }

    fn close(&self) {
        recover(self.state.lock()).closed = true;
    }
}

/// The receiving handle of one push subscription, returned by
/// `StoreBackend::subscribe`. Events published after the subscribe cursor
/// are fanned into its bounded queue inside the publication critical
/// section; the consumer blocks in [`WatchSubscriber::recv_timeout`] (or
/// multiplexes through a [`WatchDispatcher`]) instead of polling.
///
/// Dropping the handle detaches the subscription: the hub prunes it on the
/// next fan-out that touches it.
#[derive(Debug)]
pub struct WatchSubscriber {
    core: Arc<SubscriberCore>,
    kind: ResourceKind,
}

impl WatchSubscriber {
    /// The subscribed kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The namespace filter (empty: all namespaces).
    pub fn namespace(&self) -> &str {
        &self.core.namespace
    }

    /// Highest revision offered so far (starts at the subscribe cursor).
    /// Diagnostic: after `Gone` the only consistent recovery is a re-list,
    /// not a resume from here.
    pub fn resume(&self) -> u64 {
        recover(self.core.state.lock()).resume
    }

    /// Whether the subscription was evicted as a slow consumer.
    pub fn is_evicted(&self) -> bool {
        recover(self.core.state.lock()).evicted.is_some()
    }

    /// How many events offers replaced via same-object coalescing.
    pub fn coalesced(&self) -> u64 {
        recover(self.core.state.lock()).coalesced
    }

    /// How many events drains have handed out.
    pub fn delivered(&self) -> u64 {
        recover(self.core.state.lock()).delivered
    }

    /// Everything queued right now, without blocking (possibly empty).
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] once the subscription has been evicted as a slow
    /// consumer; re-list and subscribe afresh.
    pub fn try_recv(&self) -> Result<Vec<WatchEvent>, WatchError> {
        self.core.drain()
    }

    /// Block until events arrive (or eviction), up to `timeout`; an empty
    /// batch means the timeout elapsed with nothing published.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] once the subscription has been evicted.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<WatchEvent>, WatchError> {
        let deadline = Instant::now() + timeout;
        let mut state = recover(self.core.state.lock());
        loop {
            if state.evicted.is_some() || state.live > 0 {
                return SubscriberCore::drain_locked(&mut state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(Vec::new());
            }
            let (guard, _) = self
                .core
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
        }
    }

    /// Block until events arrive or the subscription is evicted.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] once the subscription has been evicted.
    pub fn recv(&self) -> Result<Vec<WatchEvent>, WatchError> {
        loop {
            let batch = self.recv_timeout(Duration::from_secs(60))?;
            if !batch.is_empty() {
                return Ok(batch);
            }
        }
    }
}

impl Drop for WatchSubscriber {
    fn drop(&mut self) {
        self.core.close();
    }
}

/// A fully-built event envelope waiting for its revision. Everything
/// allocation-heavy — the namespace/name strings and the `Arc` clone —
/// happens **before** any journal lock is taken, so the journal critical
/// section is down to revision allocation and two deque operations.
#[derive(Debug)]
pub(crate) struct StagedEvent {
    kind: ResourceKind,
    event: WatchEventKind,
    namespace: String,
    name: String,
    object: Arc<Value>,
}

impl StagedEvent {
    pub(crate) fn new(
        kind: ResourceKind,
        event: WatchEventKind,
        namespace: &str,
        name: &str,
        object: &Arc<Value>,
    ) -> Self {
        StagedEvent {
            kind,
            event,
            namespace: namespace.to_owned(),
            name: name.to_owned(),
            object: Arc::clone(object),
        }
    }

    fn into_event(self, revision: u64) -> WatchEvent {
        WatchEvent {
            kind: self.event,
            revision,
            namespace: self.namespace,
            name: self.name,
            object: Some(self.object),
        }
    }
}

/// One sub-shard's bounded event journal.
#[derive(Debug, Default)]
struct JournalInner {
    events: VecDeque<WatchEvent>,
    /// Highest revision dropped by compaction (0: nothing dropped yet).
    compacted_through: u64,
    /// Highest revision ever published to this sub-shard (0: none yet).
    last_revision: u64,
}

impl JournalInner {
    /// Index of the first retained event with revision strictly greater
    /// than `cursor`. The sub-shard is sorted by revision, so the resume
    /// point is binary-searched: an up-to-date subscriber pays for its
    /// deltas, not for the whole retained ring.
    fn suffix_start(&self, cursor: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.events.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.events[mid].revision <= cursor {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// The per-kind, namespace-sub-sharded journals behind a store:
/// `ResourceKind::COUNT * shard_count` bounded buffers, each guarded by its
/// own lock, so watch traffic on one kind never contends with writes to
/// another — and same-kind writes to different namespaces do not contend
/// either.
#[derive(Debug)]
pub(crate) struct KindJournals {
    /// Read-write locks, flat-indexed `kind.index() * shard_count +
    /// namespace_shard(ns)`: only publication mutates a sub-shard, so
    /// concurrent subscribers drain deltas in parallel and contend with
    /// writers only for the lock itself.
    shards: Vec<RwLock<JournalInner>>,
    /// Push subscribers attached per sub-shard (same flat indexing).
    /// Publication fans each event into these queues inside the sub-shard's
    /// critical section; registration happens under the sub-shard's *read*
    /// lock, which excludes publication, so no event can slip between a
    /// subscriber's backfill and its attachment.
    subscribers: Vec<StdMutex<Vec<Arc<SubscriberCore>>>>,
    /// One wake signal per sub-shard (same flat indexing) for
    /// namespace-scoped blocking waiters…
    signals: Vec<WakeSignal>,
    /// …and one per kind for all-namespaces waiters, which cannot block on
    /// several sub-shard condvars at once.
    kind_signals: Vec<WakeSignal>,
    shard_count: usize,
    capacity: usize,
}

impl KindJournals {
    pub(crate) fn new(capacity: usize, shard_count: usize) -> Self {
        assert!(capacity > 0, "journals need room for at least one event");
        assert!(shard_count > 0, "journals need at least one sub-shard");
        KindJournals {
            shards: (0..ResourceKind::COUNT * shard_count)
                .map(|_| RwLock::new(JournalInner::default()))
                .collect(),
            subscribers: (0..ResourceKind::COUNT * shard_count)
                .map(|_| StdMutex::new(Vec::new()))
                .collect(),
            signals: (0..ResourceKind::COUNT * shard_count)
                .map(|_| WakeSignal::default())
                .collect(),
            kind_signals: (0..ResourceKind::COUNT)
                .map(|_| WakeSignal::default())
                .collect(),
            shard_count,
            capacity,
        }
    }

    fn shard_index(&self, kind: ResourceKind, namespace: &str) -> usize {
        kind.index() * self.shard_count + namespace_shard(namespace, self.shard_count)
    }

    fn shard_of(&self, kind: ResourceKind, namespace: &str) -> &RwLock<JournalInner> {
        &self.shards[self.shard_index(kind, namespace)]
    }

    /// The wake signal a blocking waiter on `(kind, namespace)` parks on:
    /// the sub-shard's own signal when namespace-scoped, the kind-wide
    /// aggregate otherwise.
    pub(crate) fn signal_of(&self, kind: ResourceKind, namespace: &str) -> &WakeSignal {
        if namespace.is_empty() {
            &self.kind_signals[kind.index()]
        } else {
            &self.signals[self.shard_index(kind, namespace)]
        }
    }

    /// Fan one freshly published event into every push subscriber attached
    /// to its sub-shard, pruning subscribers whose handles were dropped.
    /// Runs inside the sub-shard's publication critical section, so each
    /// queue receives its sub-shard's events in exact publication order.
    fn fan_out(&self, shard_index: usize, event: &WatchEvent) {
        let mut list = recover(self.subscribers[shard_index].lock());
        if list.is_empty() {
            return;
        }
        list.retain(|subscriber| subscriber.offer(event));
    }

    /// All sub-shards of one kind, in sub-shard order.
    fn kind_shards(&self, kind: ResourceKind) -> &[RwLock<JournalInner>] {
        let start = kind.index() * self.shard_count;
        &self.shards[start..start + self.shard_count]
    }

    /// Allocate the next global revision, fan the event into the sub-shard's
    /// push subscribers, and append it to the journal — all under the
    /// sub-shard's (already held) write lock. This is the linchpin of watch
    /// correctness: because allocation happens inside the critical section,
    /// each sub-shard is a gapless-by-construction revision sequence — no
    /// event with a smaller revision can appear after a larger one has been
    /// observed there — and every push queue receives its sub-shard's events
    /// in that same order.
    fn push_locked(
        &self,
        inner: &mut JournalInner,
        shard_index: usize,
        revision: &AtomicU64,
        staged: StagedEvent,
    ) -> u64 {
        // `AcqRel` (not `Relaxed`) so every allocation continues the
        // counter's release sequence: a thread that acquire-loads the
        // counter afterwards (the checkpoint horizon read) observes
        // everything sequenced before *any* allocation at or below the
        // loaded value — which is what makes the store's dirty-shard flags
        // (set before allocating) reliable under an incremental checkpoint.
        let assigned = revision.fetch_add(1, Ordering::AcqRel) + 1;
        let event = staged.into_event(assigned);
        self.fan_out(shard_index, &event);
        if inner.events.len() == self.capacity {
            let dropped = inner.events.pop_front().expect("capacity > 0");
            inner.compacted_through = dropped.revision;
        }
        inner.events.push_back(event);
        inner.last_revision = assigned;
        assigned
    }

    /// Publish one staged event, allocating its revision inside its
    /// sub-shard's critical section, then signal blocked waiters (sub-shard
    /// and kind scope) before the lock drops — so a waiter woken by the bump
    /// either sees the event in a queue already or finds it in the journal
    /// on its re-poll.
    ///
    /// Must be called while holding the written object's store-shard lock
    /// (see the store write paths), so an initial-list scan that starts
    /// after a published revision is guaranteed to observe the map effect
    /// too.
    pub(crate) fn publish(&self, revision: &AtomicU64, staged: StagedEvent) -> u64 {
        let kind = staged.kind;
        let shard_index = self.shard_index(kind, &staged.namespace);
        let mut inner = self.shards[shard_index].write();
        let assigned = self.push_locked(&mut inner, shard_index, revision, staged);
        self.signals[shard_index].notify();
        self.kind_signals[kind.index()].notify();
        assigned
    }

    /// Publish a batch of staged events, entering each touched sub-shard's
    /// critical section **once** for its whole group — the lock is paid per
    /// sub-shard, not per event. Returns the assigned revisions aligned to
    /// the input order. Events for the same object stay in input order (one
    /// object maps to one sub-shard); across sub-shards the revisions of a
    /// batch may interleave, which the total revision order absorbs.
    ///
    /// The same store-shard-lock contract as [`KindJournals::publish`]
    /// applies.
    pub(crate) fn publish_batch(&self, revision: &AtomicU64, staged: Vec<StagedEvent>) -> Vec<u64> {
        let mut assigned = vec![0u64; staged.len()];
        // Group input indices by sub-shard, preserving relative order.
        let mut groups: Vec<Vec<(usize, StagedEvent)>> = Vec::new();
        groups.resize_with(self.shard_count, Vec::new);
        let mut kind: Option<ResourceKind> = None;
        for (index, event) in staged.into_iter().enumerate() {
            // Batches may span kinds; re-bucket lazily per kind run. The
            // common callers (delete_collection, apply_batch groups) stay
            // single-kind, so this loop almost never flushes early.
            if kind.is_some_and(|k| k != event.kind) {
                self.flush_groups(revision, kind.expect("checked"), &mut groups, &mut assigned);
            }
            kind = Some(event.kind);
            groups[namespace_shard(&event.namespace, self.shard_count)].push((index, event));
        }
        if let Some(kind) = kind {
            self.flush_groups(revision, kind, &mut groups, &mut assigned);
        }
        assigned
    }

    fn flush_groups(
        &self,
        revision: &AtomicU64,
        kind: ResourceKind,
        groups: &mut [Vec<(usize, StagedEvent)>],
        assigned: &mut [u64],
    ) {
        let start = kind.index() * self.shard_count;
        for (shard, group) in groups.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            // One critical-section entry for the whole group — and one wake
            // signal bump per touched sub-shard, not per event: waiters
            // re-poll once and collect the whole batch.
            let mut inner = self.shards[start + shard].write();
            for (index, event) in group.drain(..) {
                assigned[index] = self.push_locked(&mut inner, start + shard, revision, event);
            }
            self.signals[start + shard].notify();
            self.kind_signals[kind.index()].notify();
        }
    }

    /// Every event of `kind` with revision strictly greater than `cursor`,
    /// restricted to `namespace` when non-empty, in revision order —
    /// together with the resume cursor ([`WatchDelta`]).
    ///
    /// A namespace-scoped read locks and scans **only its own sub-shard**
    /// (the fix for the old linear namespace filter over the whole delta
    /// suffix); an all-namespaces read locks every sub-shard of the kind at
    /// once and k-way-merges their suffixes by revision — correct by
    /// construction because revisions are globally totally ordered. The
    /// resume cursor is the global revision counter read while the scanned
    /// sub-shards are locked: any event published later (to any scanned
    /// sub-shard) must allocate a strictly larger revision.
    ///
    /// `copy` selects the delivery discipline: `false` hands out the
    /// journal's own handles (zero-copy), `true` deep-clones each tree
    /// (the baseline's per-subscriber copy).
    pub(crate) fn events_since(
        &self,
        revision: &AtomicU64,
        kind: ResourceKind,
        namespace: &str,
        cursor: u64,
        copy: bool,
    ) -> Result<WatchDelta, WatchError> {
        let deliver = |event: &WatchEvent| {
            if copy {
                WatchEvent {
                    object: event.object.as_ref().map(|tree| Arc::new((**tree).clone())),
                    ..event.clone()
                }
            } else {
                event.clone()
            }
        };
        if !namespace.is_empty() {
            // Namespace-scoped: exactly one sub-shard holds every event of
            // this namespace, so only it is locked, searched and filtered
            // (the filter now runs over same-sub-shard neighbours only).
            let inner = self.shard_of(kind, namespace).read();
            if cursor < inner.compacted_through {
                return Err(WatchError::Gone {
                    compacted_through: inner.compacted_through,
                });
            }
            let events = inner
                .events
                .range(inner.suffix_start(cursor)..)
                .filter(|event| event.namespace == namespace)
                .map(deliver)
                .collect();
            return Ok(WatchDelta {
                events,
                resume: cursor.max(revision.load(Ordering::Relaxed)),
            });
        }
        // All namespaces: hold every sub-shard's read lock at once (writers
        // only ever hold one sub-shard lock, so this cannot deadlock), then
        // merge the suffixes by revision.
        let guards: Vec<_> = self
            .kind_shards(kind)
            .iter()
            .map(|shard| shard.read())
            .collect();
        let mut compacted_through = 0;
        for guard in &guards {
            if cursor < guard.compacted_through {
                compacted_through = compacted_through.max(guard.compacted_through);
            }
        }
        if compacted_through > 0 {
            return Err(WatchError::Gone { compacted_through });
        }
        let mut heads: Vec<usize> = guards.iter().map(|g| g.suffix_start(cursor)).collect();
        let total: usize = guards
            .iter()
            .zip(&heads)
            .map(|(g, head)| g.events.len() - head)
            .sum();
        let mut events = Vec::with_capacity(total);
        // k-way merge by revision: k is the sub-shard count (small), each
        // suffix already sorted, so repeatedly taking the minimum head
        // reconstructs the total order exactly.
        while events.len() < total {
            let next = guards
                .iter()
                .zip(&heads)
                .enumerate()
                .filter_map(|(i, (g, &head))| g.events.get(head).map(|event| (i, event.revision)))
                .min_by_key(|&(_, revision)| revision)
                .map(|(i, _)| i)
                .expect("events remain below total");
            events.push(deliver(&guards[next].events[heads[next]]));
            heads[next] += 1;
        }
        Ok(WatchDelta {
            events,
            // Read while every sub-shard is locked, so no event of this
            // kind with a smaller revision can be published afterwards.
            resume: cursor.max(revision.load(Ordering::Relaxed)),
        })
    }

    /// Seal every sub-shard's compaction horizon at `revision` — the boot
    /// half of the persistence plane's recovery contract. The journals hold
    /// no pre-crash events (they are in-memory), so a cursor **below** the
    /// recovered revision must take the standard `410 Gone` → re-list
    /// recovery instead of silently skipping the history it missed, while a
    /// cursor **at** the horizon resumes streaming seamlessly; raising
    /// `last_revision` keeps [`KindJournals::watch_revision`] a safe
    /// initial-list cursor on kinds that have not been written since boot.
    pub(crate) fn restore_horizon(&self, revision: u64) {
        if revision == 0 {
            return;
        }
        for shard in &self.shards {
            let mut inner = shard.write();
            inner.compacted_through = inner.compacted_through.max(revision);
            inner.last_revision = inner.last_revision.max(revision);
        }
    }

    /// The highest revision published to `kind`'s journal so far (0 when the
    /// kind has never been written) — the max over its sub-shards. Safe as
    /// an initial-list cursor: every event `≤` this value was fully
    /// published (and, per the [`KindJournals::publish`] contract, its store
    /// effect is visible to any scan that starts afterwards).
    pub(crate) fn watch_revision(&self, kind: ResourceKind) -> u64 {
        self.kind_shards(kind)
            .iter()
            .map(|shard| shard.read().last_revision)
            .max()
            .unwrap_or(0)
    }

    /// Attach a push subscriber for `kind` (scoped to `namespace` when
    /// non-empty) resuming after `cursor`. Per needed sub-shard, the journal
    /// suffix since the cursor is **backfilled into the queue while the
    /// sub-shard's read lock is held** and the subscriber is appended to the
    /// fan-out list before that lock drops; publication needs the write
    /// lock, so no event can land between backfill and attachment — the
    /// queue sees every post-cursor event of the sub-shard exactly once.
    ///
    /// `copy` selects the per-subscriber delivery discipline (deep clone for
    /// the baseline store, shared handles for the zero-copy store).
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] when `cursor` predates the compaction horizon of
    /// a needed sub-shard (same contract as [`KindJournals::events_since`]).
    /// A backfill larger than `capacity` evicts the nascent subscription the
    /// same way live slowness would, so the first drain reports `Gone`.
    pub(crate) fn subscribe(
        &self,
        kind: ResourceKind,
        namespace: &str,
        cursor: u64,
        capacity: usize,
        copy: bool,
    ) -> Result<WatchSubscriber, WatchError> {
        let core = Arc::new(SubscriberCore::new(namespace, cursor, capacity, copy));
        let start = kind.index() * self.shard_count;
        let indices: Vec<usize> = if namespace.is_empty() {
            (start..start + self.shard_count).collect()
        } else {
            vec![self.shard_index(kind, namespace)]
        };
        for index in indices {
            let inner = self.shards[index].read();
            if cursor < inner.compacted_through {
                // Partially attached sub-shards prune on the next fan-out.
                core.close();
                return Err(WatchError::Gone {
                    compacted_through: inner.compacted_through,
                });
            }
            for event in inner.events.range(inner.suffix_start(cursor)..) {
                core.offer(event);
            }
            recover(self.subscribers[index].lock()).push(Arc::clone(&core));
        }
        Ok(WatchSubscriber { core, kind })
    }
}

/// A pull-style subscription over a store's watch journal: remembers the
/// kind, namespace and resume cursor, and advances the cursor past every
/// batch it delivers — the store-level API the informer pattern builds on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchSubscription {
    kind: ResourceKind,
    namespace: String,
    revision: u64,
}

impl WatchSubscription {
    /// Subscribe to `kind` (in `namespace`; every namespace when empty)
    /// starting after `revision`. Use `revision = 0` to replay the whole
    /// retained journal, or a revision obtained from a list to stream only
    /// what follows it.
    pub fn at(kind: ResourceKind, namespace: &str, revision: u64) -> Self {
        WatchSubscription {
            kind,
            namespace: namespace.to_owned(),
            revision,
        }
    }

    /// The current resume cursor.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Pull every event published since the last poll, advancing the cursor
    /// to the delta's resume point (lossless: skipped revisions failed the
    /// namespace filter or live in sub-shards this subscription does not
    /// need), so even an event-free poll keeps the cursor ahead of
    /// compaction. On [`WatchError::Gone`] the cursor is left untouched —
    /// the caller re-lists and builds a fresh subscription from the list's
    /// cursor.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] when the cursor predates the compaction horizon
    /// of a needed journal sub-shard.
    pub fn poll<S: crate::StoreBackend + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<Vec<WatchEvent>, WatchError> {
        let delta = store.events_since(self.kind, &self.namespace, self.revision)?;
        self.revision = delta.resume;
        Ok(delta.events)
    }

    /// Like [`WatchSubscription::poll`], but **blocks on the journal's wake
    /// signal** instead of returning an empty batch: the cursor advances and
    /// events are returned as soon as something is published, or an empty
    /// batch is returned once `timeout` elapses.
    ///
    /// No wakeup can be lost: the signal generation is read *before* each
    /// poll, and publication bumps it inside the critical section — so a
    /// publish racing the poll either lands in the polled delta or moves the
    /// generation past the value this waiter sleeps on.
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] when the cursor predates the compaction horizon
    /// of a needed journal sub-shard.
    pub fn recv_timeout<S: crate::StoreBackend + ?Sized>(
        &mut self,
        store: &S,
        timeout: Duration,
    ) -> Result<Vec<WatchEvent>, WatchError> {
        let deadline = Instant::now() + timeout;
        loop {
            let seen = store.watch_generation(self.kind, &self.namespace);
            let events = self.poll(store)?;
            if !events.is_empty() {
                return Ok(events);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(Vec::new());
            }
            store.wait_for_watch(self.kind, &self.namespace, seen, deadline - now);
        }
    }

    /// Block until events are published (or the cursor goes stale).
    ///
    /// # Errors
    ///
    /// [`WatchError::Gone`] when the cursor predates the compaction horizon
    /// of a needed journal sub-shard.
    pub fn recv<S: crate::StoreBackend + ?Sized>(
        &mut self,
        store: &S,
    ) -> Result<Vec<WatchEvent>, WatchError> {
        loop {
            let events = self.recv_timeout(store, Duration::from_secs(60))?;
            if !events.is_empty() {
                return Ok(events);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(name: &str) -> Arc<Value> {
        Arc::new(kf_yaml::parse(&format!("kind: Pod\nmetadata:\n  name: {name}\n")).unwrap())
    }

    fn staged(event: WatchEventKind, ns: &str, name: &str, object: &Arc<Value>) -> StagedEvent {
        StagedEvent::new(ResourceKind::Pod, event, ns, name, object)
    }

    #[test]
    fn publish_assigns_strictly_increasing_revisions() {
        let journals = KindJournals::new(16, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let r1 = journals.publish(&counter, staged(WatchEventKind::Added, "ns", "a", &object));
        let r2 = journals.publish(
            &counter,
            staged(WatchEventKind::Modified, "ns", "a", &object),
        );
        assert!(r2 > r1);
        let delta = journals
            .events_since(&counter, ResourceKind::Pod, "ns", 0, false)
            .unwrap();
        assert_eq!(delta.events.len(), 2);
        assert_eq!(delta.events[0].revision, r1);
        assert_eq!(delta.events[1].revision, r2);
        assert_eq!(delta.resume, r2);
        assert_eq!(journals.watch_revision(ResourceKind::Pod), r2);
        assert_eq!(journals.watch_revision(ResourceKind::Service), 0);
    }

    #[test]
    fn events_share_the_published_tree_unless_copying() {
        let journals = KindJournals::new(16, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        journals.publish(&counter, staged(WatchEventKind::Added, "ns", "a", &object));
        let zero_copy = journals
            .events_since(&counter, ResourceKind::Pod, "ns", 0, false)
            .unwrap()
            .events;
        assert!(Arc::ptr_eq(zero_copy[0].object.as_ref().unwrap(), &object));
        let copied = journals
            .events_since(&counter, ResourceKind::Pod, "ns", 0, true)
            .unwrap()
            .events;
        assert!(!Arc::ptr_eq(copied[0].object.as_ref().unwrap(), &object));
        assert!(copied[0].object.as_ref().unwrap().loosely_equals(&object));
    }

    #[test]
    fn namespace_filter_and_cursor_respect_the_contract() {
        let journals = KindJournals::new(16, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let r1 = journals.publish(&counter, staged(WatchEventKind::Added, "ns1", "a", &object));
        journals.publish(&counter, staged(WatchEventKind::Added, "ns2", "b", &object));
        assert_eq!(
            journals
                .events_since(&counter, ResourceKind::Pod, "ns1", 0, false)
                .unwrap()
                .events
                .len(),
            1
        );
        assert_eq!(
            journals
                .events_since(&counter, ResourceKind::Pod, "", 0, false)
                .unwrap()
                .events
                .len(),
            2
        );
        assert_eq!(
            journals
                .events_since(&counter, ResourceKind::Pod, "", r1, false)
                .unwrap()
                .events
                .len(),
            1
        );
        // A namespace-filtered delta still resumes from the global counter.
        let ns1 = journals
            .events_since(&counter, ResourceKind::Pod, "ns1", r1, false)
            .unwrap();
        assert!(ns1.events.is_empty());
        assert_eq!(ns1.resume, journals.watch_revision(ResourceKind::Pod));
    }

    #[test]
    fn merged_reads_reconstruct_the_total_revision_order() {
        // Interleave writes across enough namespaces to populate several
        // sub-shards, then check the all-namespaces merge yields exactly
        // the allocation order.
        let journals = KindJournals::new(64, 4);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let mut expected = Vec::new();
        for round in 0..12 {
            let ns = format!("ns-{}", round % 5);
            expected.push((
                journals.publish(
                    &counter,
                    staged(WatchEventKind::Added, &ns, &format!("obj-{round}"), &object),
                ),
                ns,
            ));
        }
        let delta = journals
            .events_since(&counter, ResourceKind::Pod, "", 0, false)
            .unwrap();
        assert_eq!(
            delta
                .events
                .iter()
                .map(|e| (e.revision, e.namespace.clone()))
                .collect::<Vec<_>>(),
            expected
        );
        assert_eq!(delta.resume, 12);
        // Mid-stream cursors binary-search into every sub-shard.
        let suffix = journals
            .events_since(&counter, ResourceKind::Pod, "", 7, false)
            .unwrap();
        assert_eq!(
            suffix.events.iter().map(|e| e.revision).collect::<Vec<_>>(),
            (8..=12).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn publish_batch_enters_each_sub_shard_once_and_keeps_input_alignment() {
        let journals = KindJournals::new(16, 2);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let batch: Vec<StagedEvent> = (0..6)
            .map(|i| {
                staged(
                    WatchEventKind::Deleted,
                    &format!("ns-{}", i % 3),
                    &format!("obj-{i}"),
                    &object,
                )
            })
            .collect();
        let revisions = journals.publish_batch(&counter, batch);
        assert_eq!(revisions.len(), 6);
        // Every revision allocated exactly once.
        let mut sorted = revisions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=6).collect::<Vec<u64>>());
        // Same-namespace events keep their input order (they share a
        // sub-shard, so their revisions are assigned in batch order).
        assert!(revisions[0] < revisions[3], "ns-0 order preserved");
        assert!(revisions[1] < revisions[4], "ns-1 order preserved");
        // The merged read replays the whole batch in revision order.
        let delta = journals
            .events_since(&counter, ResourceKind::Pod, "", 0, false)
            .unwrap();
        assert_eq!(delta.events.len(), 6);
        assert!(delta
            .events
            .windows(2)
            .all(|w| w[0].revision < w[1].revision));
    }

    #[test]
    fn compaction_reports_gone_for_stale_cursors() {
        let journals = KindJournals::new(2, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        for i in 0..4 {
            journals.publish(
                &counter,
                staged(WatchEventKind::Modified, "ns", &format!("obj-{i}"), &object),
            );
        }
        // Revisions 1 and 2 were compacted away (one namespace, so one
        // sub-shard holds all four events).
        assert_eq!(
            journals.events_since(&counter, ResourceKind::Pod, "ns", 0, false),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        assert_eq!(
            journals.events_since(&counter, ResourceKind::Pod, "ns", 1, false),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        // The all-namespaces read needs that sub-shard too.
        assert_eq!(
            journals.events_since(&counter, ResourceKind::Pod, "", 1, false),
            Err(WatchError::Gone {
                compacted_through: 2
            })
        );
        // A cursor at the horizon is still servable.
        let delta = journals
            .events_since(&counter, ResourceKind::Pod, "ns", 2, false)
            .unwrap();
        assert_eq!(delta.events.len(), 2);
        assert_eq!(delta.events[0].revision, 3);
        assert_eq!(delta.resume, 4);
    }

    #[test]
    fn foreign_sub_shard_compaction_does_not_gone_a_namespace_cursor() {
        // Two namespaces in different sub-shards: churn one far past the
        // capacity; a cursor scoped to the quiet namespace stays servable,
        // while the all-namespaces cursor (which needs the churned
        // sub-shard) gets Gone.
        let shard_count = 4;
        let journals = KindJournals::new(2, shard_count);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let quiet = "quiet".to_owned();
        let busy = (0..64)
            .map(|i| format!("busy-{i}"))
            .find(|ns| namespace_shard(ns, shard_count) != namespace_shard(&quiet, shard_count))
            .expect("some namespace hashes elsewhere");
        journals.publish(
            &counter,
            staged(WatchEventKind::Added, &quiet, "q", &object),
        );
        for i in 0..6 {
            journals.publish(
                &counter,
                staged(WatchEventKind::Added, &busy, &format!("b-{i}"), &object),
            );
        }
        let quiet_delta = journals
            .events_since(&counter, ResourceKind::Pod, &quiet, 0, false)
            .unwrap();
        assert_eq!(quiet_delta.events.len(), 1);
        assert_eq!(quiet_delta.resume, 7);
        assert!(matches!(
            journals.events_since(&counter, ResourceKind::Pod, "", 0, false),
            Err(WatchError::Gone { .. })
        ));
    }

    #[test]
    fn namespace_shard_is_stable_and_bounded() {
        for shard_count in [1, 2, 8] {
            for ns in ["", "default", "prod", "a-rather-long-namespace-name"] {
                let shard = namespace_shard(ns, shard_count);
                assert!(shard < shard_count);
                assert_eq!(shard, namespace_shard(ns, shard_count));
            }
        }
    }

    #[test]
    fn push_subscribers_receive_backfill_then_live_events_in_order() {
        let journals = KindJournals::new(64, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        journals.publish(&counter, staged(WatchEventKind::Added, "ns", "a", &object));
        let sub = journals
            .subscribe(ResourceKind::Pod, "ns", 0, 16, false)
            .unwrap();
        journals.publish(&counter, staged(WatchEventKind::Added, "ns", "b", &object));
        let events = sub.try_recv().unwrap();
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert!(events.windows(2).all(|w| w[0].revision < w[1].revision));
        assert_eq!(sub.resume(), 2);
        assert_eq!(sub.delivered(), 2);
        // Zero-copy discipline: the queued event shares the published tree.
        assert!(Arc::ptr_eq(events[0].object.as_ref().unwrap(), &object));
        // Nothing further queued.
        assert!(sub.try_recv().unwrap().is_empty());
    }

    #[test]
    fn push_subscribers_respect_the_namespace_filter_and_copy_discipline() {
        let journals = KindJournals::new(64, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let scoped = journals
            .subscribe(ResourceKind::Pod, "ns1", 0, 16, false)
            .unwrap();
        let copying = journals
            .subscribe(ResourceKind::Pod, "", 0, 16, true)
            .unwrap();
        journals.publish(&counter, staged(WatchEventKind::Added, "ns1", "a", &object));
        journals.publish(&counter, staged(WatchEventKind::Added, "ns2", "b", &object));
        let scoped_events = scoped.try_recv().unwrap();
        assert_eq!(scoped_events.len(), 1);
        assert_eq!(scoped_events[0].name, "a");
        let copied = copying.try_recv().unwrap();
        assert_eq!(copied.len(), 2);
        assert!(!Arc::ptr_eq(copied[0].object.as_ref().unwrap(), &object));
        assert!(copied[0].object.as_ref().unwrap().loosely_equals(&object));
    }

    #[test]
    fn coalescing_keeps_the_last_write_and_the_delivery_order() {
        let journals = KindJournals::new(64, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let sub = journals
            .subscribe(ResourceKind::Pod, "ns", 0, 16, false)
            .unwrap();
        let stale = tree("hot-old");
        let other = tree("other");
        let newest = tree("hot-new");
        journals.publish(&counter, staged(WatchEventKind::Added, "ns", "hot", &stale));
        journals.publish(
            &counter,
            staged(WatchEventKind::Added, "ns", "other", &other),
        );
        let r3 = journals.publish(
            &counter,
            staged(WatchEventKind::Modified, "ns", "hot", &newest),
        );
        let events = sub.try_recv().unwrap();
        // The stale "hot" event was coalesced away: one event per object,
        // the hot object's being the newest write, still revision-sorted.
        assert_eq!(
            events
                .iter()
                .map(|e| (e.name.as_str(), e.revision))
                .collect::<Vec<_>>(),
            [("other", 2), ("hot", r3)]
        );
        assert!(Arc::ptr_eq(events[1].object.as_ref().unwrap(), &newest));
        assert_eq!(sub.coalesced(), 1);
    }

    #[test]
    fn slow_consumers_are_evicted_and_observe_gone() {
        let journals = KindJournals::new(64, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let sub = journals
            .subscribe(ResourceKind::Pod, "ns", 0, 2, false)
            .unwrap();
        // Three distinct objects against a queue bound of two: the third
        // offer cannot coalesce, so the subscriber is evicted.
        for name in ["a", "b", "c"] {
            journals.publish(&counter, staged(WatchEventKind::Added, "ns", name, &object));
        }
        assert!(sub.is_evicted());
        assert!(matches!(sub.try_recv(), Err(WatchError::Gone { .. })));
        // Still Gone on the next drain; later publishes stay ignored.
        journals.publish(&counter, staged(WatchEventKind::Added, "ns", "d", &object));
        assert!(matches!(
            sub.recv_timeout(Duration::from_millis(5)),
            Err(WatchError::Gone { .. })
        ));
    }

    #[test]
    fn a_backfill_wider_than_the_queue_bound_evicts_like_live_slowness() {
        let journals = KindJournals::new(64, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        for i in 0..5 {
            journals.publish(
                &counter,
                staged(WatchEventKind::Added, "ns", &format!("obj-{i}"), &object),
            );
        }
        let sub = journals
            .subscribe(ResourceKind::Pod, "ns", 0, 2, false)
            .unwrap();
        assert!(matches!(sub.try_recv(), Err(WatchError::Gone { .. })));
    }

    #[test]
    fn subscribe_reports_gone_for_compacted_cursors() {
        let journals = KindJournals::new(2, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        for i in 0..4 {
            journals.publish(
                &counter,
                staged(WatchEventKind::Added, "ns", &format!("obj-{i}"), &object),
            );
        }
        assert_eq!(
            journals
                .subscribe(ResourceKind::Pod, "ns", 0, 16, false)
                .err(),
            Some(WatchError::Gone {
                compacted_through: 2
            })
        );
        // A cursor at the horizon attaches fine.
        assert!(journals
            .subscribe(ResourceKind::Pod, "ns", 2, 16, false)
            .is_ok());
    }

    #[test]
    fn recv_timeout_blocks_until_publication_wakes_it() {
        let journals = Arc::new(KindJournals::new(64, DEFAULT_JOURNAL_SHARDS));
        let counter = Arc::new(AtomicU64::new(0));
        let sub = journals
            .subscribe(ResourceKind::Pod, "ns", 0, 16, false)
            .unwrap();
        let publisher = {
            let journals = Arc::clone(&journals);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                journals.publish(
                    &counter,
                    staged(WatchEventKind::Added, "ns", "late", &tree("late")),
                );
            })
        };
        let started = Instant::now();
        let events = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        publisher.join().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "late");
        // Woken by the publication, not the five-second deadline.
        assert!(started.elapsed() < Duration::from_secs(4));
    }

    #[test]
    fn dispatcher_surfaces_readiness_once_per_drain_cycle() {
        let journals = KindJournals::new(64, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let dispatcher = WatchDispatcher::new();
        let quiet = journals
            .subscribe(ResourceKind::Pod, "quiet-ns", 0, 16, false)
            .unwrap();
        let busy = journals
            .subscribe(ResourceKind::Pod, "busy-ns", 0, 16, false)
            .unwrap();
        dispatcher.register(&quiet, 0);
        dispatcher.register(&busy, 1);
        // Nothing published: no readiness.
        assert_eq!(dispatcher.next_ready(Duration::from_millis(5)), None);
        // A burst surfaces the busy subscription exactly once.
        for name in ["a", "b", "c"] {
            journals.publish(
                &counter,
                staged(WatchEventKind::Added, "busy-ns", name, &object),
            );
        }
        assert_eq!(dispatcher.next_ready(Duration::from_millis(100)), Some(1));
        assert_eq!(dispatcher.next_ready(Duration::from_millis(5)), None);
        assert_eq!(busy.try_recv().unwrap().len(), 3);
        // Drained: the next event re-arms readiness.
        journals.publish(
            &counter,
            staged(WatchEventKind::Added, "busy-ns", "d", &object),
        );
        assert_eq!(dispatcher.next_ready(Duration::from_millis(100)), Some(1));
        assert!(!quiet.is_evicted());
    }

    #[test]
    fn registering_with_a_backlog_surfaces_immediately() {
        let journals = KindJournals::new(64, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let sub = journals
            .subscribe(ResourceKind::Pod, "ns", 0, 16, false)
            .unwrap();
        journals.publish(&counter, staged(WatchEventKind::Added, "ns", "a", &object));
        let dispatcher = WatchDispatcher::new();
        dispatcher.register(&sub, 7);
        assert_eq!(dispatcher.next_ready(Duration::from_millis(5)), Some(7));
    }

    #[test]
    fn dropped_subscribers_are_pruned_from_the_fan_out() {
        let journals = KindJournals::new(64, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let object = tree("a");
        let shard_index = journals.shard_index(ResourceKind::Pod, "ns");
        let sub = journals
            .subscribe(ResourceKind::Pod, "ns", 0, 16, false)
            .unwrap();
        assert_eq!(recover(journals.subscribers[shard_index].lock()).len(), 1);
        drop(sub);
        journals.publish(&counter, staged(WatchEventKind::Added, "ns", "a", &object));
        assert!(recover(journals.subscribers[shard_index].lock()).is_empty());
    }

    #[test]
    fn tombstone_compaction_keeps_queue_memory_bounded_by_live_entries() {
        let journals = KindJournals::new(4096, DEFAULT_JOURNAL_SHARDS);
        let counter = AtomicU64::new(0);
        let sub = journals
            .subscribe(ResourceKind::Pod, "ns", 0, 4, false)
            .unwrap();
        // Hammer two objects far past the bound: coalescing tombstones every
        // stale slot, and periodic compaction keeps the deque near `live`.
        let object = tree("hot");
        for i in 0..200 {
            let name = if i % 2 == 0 { "x" } else { "y" };
            journals.publish(
                &counter,
                staged(WatchEventKind::Modified, "ns", name, &object),
            );
        }
        {
            let state = recover(sub.core.state.lock());
            assert_eq!(state.live, 2);
            assert!(
                state.slots.len() <= 8,
                "tombstones bounded, got {}",
                state.slots.len()
            );
        }
        let events = sub.try_recv().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(sub.coalesced(), 198);
        assert!(!sub.is_evicted());
    }

    #[test]
    fn bookmarks_carry_only_a_revision() {
        let bookmark = WatchEvent::bookmark(7);
        assert_eq!(bookmark.kind, WatchEventKind::Bookmark);
        assert_eq!(bookmark.revision, 7);
        assert!(!bookmark.has_object());
        assert_eq!(WatchEventKind::Bookmark.as_str(), "BOOKMARK");
        assert_eq!(WatchEventKind::Added.to_string(), "ADDED");
    }
}
